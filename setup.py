"""Setup shim.

The execution environment has no network and no `wheel` package, so PEP
660 editable installs (`pip install -e .` with build isolation) cannot
build. This shim lets `pip install -e . --no-build-isolation` fall back to
the legacy `setup.py develop` path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
