"""Quickstart: cloak one user's location without exposing anyone's.

Builds a small synthetic population, constructs the weighted proximity
graph from (simulated) radio signal strengths, and serves a cloaking
request through the full two-phase pipeline of the paper:

1. proximity minimum k-clustering (distributed t-connectivity), then
2. secure progressive bounding (nobody reveals a coordinate; everyone
   only answers yes/no to hypothesised bounds).

Run:  python examples/quickstart.py
"""

from repro import (
    CloakingEngine,
    POIDatabase,
    SimulationConfig,
    california_like_poi,
    build_wpg,
)
from repro.server.costs import total_request_cost


def main() -> None:
    # A 5,000-user town; delta is scaled so densities match Table I.
    config = SimulationConfig(
        user_count=5_000,
        delta=2e-3 * (104_770 / 5_000) ** 0.5,
        max_peers=10,
        k=10,
    )
    users = california_like_poi(config.user_count, seed=42)
    print(f"population: {len(users)} users")

    graph = build_wpg(users, config.delta, config.max_peers)
    print(
        f"proximity graph: {graph.edge_count} edges, "
        f"avg degree {2 * graph.edge_count / graph.vertex_count:.1f}"
    )

    engine = CloakingEngine(users, graph, config, mode="distributed",
                            policy="secure")
    host = 42
    result = engine.request(host)

    region = result.region
    print(f"\nhost user {host} at {users[host].as_tuple()}")
    print(f"cloaked region: [{region.rect.x_min:.4f}, {region.rect.x_max:.4f}]"
          f" x [{region.rect.y_min:.4f}, {region.rect.y_max:.4f}]")
    print(f"anonymity: {region.anonymity} users share this region "
          f"(k = {config.k})")
    print(f"area: {region.area:.2e} (unit square)")
    print(f"phase-1 messages (clustering): {result.clustering_messages}")
    print(f"phase-2 messages (bounding):   {result.bounding_messages}")

    # Sanity: the region really covers every member, and every member
    # reuses the identical region (reciprocity).
    assert all(region.rect.contains(users[m]) for m in result.cluster.members)
    member = next(iter(result.cluster.members - {host}))
    assert engine.request(member).region.rect == region.rect
    print(f"\nmember {member} reuses the same region at zero cost — "
          "an eavesdropper cannot tell who asked")

    # What the service request would cost the host.
    db = POIDatabase(users)
    cost = total_request_cost(
        db, region.rect, result.clustering_messages,
        result.bounding_messages, config,
    )
    print(f"end-to-end request cost: {cost:.0f} message units "
          f"({db.count_in_region(region.rect)} POIs shipped)")


if __name__ == "__main__":
    main()
