"""Concurrent cloaking requests without deadlock (paper Section VII).

"A single user can only join one cluster but can participate [in] the
clustering process of multiple host users; our protocols must prevent
deadlocks while making the best clustering decision."

This example fires a batch of simultaneous host requests at one shared
registry.  Each host proposes a cluster against the same snapshot, then
races to lock its members (ordered acquisition — provably deadlock-free);
losers recompute against the winner's commit and retry.  At the end,
nobody is in two clusters and every host either has a cluster or a clean
error.

Run:  python examples/concurrent_requests.py
"""

from repro import SimulationConfig, build_wpg, california_like_poi
from repro.clustering.distributed import DistributedClustering
from repro.experiments.workloads import sample_hosts
from repro.network.concurrency import run_concurrent_requests


def main() -> None:
    config = SimulationConfig(
        user_count=3_000,
        delta=2e-3 * (104_770 / 3_000) ** 0.5,
        max_peers=10,
        k=8,
    )
    users = california_like_poi(config.user_count, seed=3)
    graph = build_wpg(users, config.delta, config.max_peers)
    clustering = DistributedClustering(graph, config.k)

    # Deliberately include *neighbouring* hosts so proposals collide:
    # take a base host's whole would-be cluster as simultaneous hosts.
    probe = DistributedClustering(graph, config.k)
    base = probe.request(sample_hosts(graph, config.k, 1, seed=2)[0])
    colliders = sorted(base.members)[: config.k]
    spread = sample_hosts(graph, config.k, 12, seed=8)
    batch = colliders + [h for h in spread if h not in colliders]
    print(f"{len(batch)} hosts request cloaking simultaneously "
          f"({len(colliders)} of them are mutual neighbours)\n")

    outcomes = run_concurrent_requests(clustering, batch)

    served = restarted = failed = cached = 0
    for outcome in outcomes:
        if outcome.result is None:
            failed += 1
            print(f"  host {outcome.host:>5}: FAILED ({outcome.error})")
            continue
        served += 1
        if outcome.result.from_cache:
            cached += 1
        if outcome.restarts:
            restarted += 1
        tag = "cache" if outcome.result.from_cache else "fresh"
        waits = f", waited on {outcome.waited_on}" if outcome.waited_on else ""
        print(
            f"  host {outcome.host:>5}: cluster of "
            f"{outcome.result.size:>2} [{tag}]"
            f"{', restarted ' + str(outcome.restarts) + 'x' if outcome.restarts else ''}"
            f"{waits}"
        )

    print(f"\nserved {served}/{len(batch)} "
          f"({cached} from a neighbour's cluster, {restarted} after restart, "
          f"{failed} failed)")

    # The global invariant survived the race:
    clustering.registry.check_reciprocity()
    print("reciprocity check passed: no user belongs to two clusters")


if __name__ == "__main__":
    main()
