"""How long does a cloaked region stay valid once users move?

The paper cloaks a static snapshot; real users walk.  This example
cloaks a workload at t = 0, advances a random-waypoint population at
three speed profiles, and reports the decay of:

* member coverage — the fraction of cluster members still inside their
  region (a member outside gets wrong service results *and* stops being
  hidden by the region);
* fully-valid regions — regions still containing all of their members;
* surviving k-anonymity — regions still containing at least k members.

The half-life of these curves is the re-cloaking cadence a deployment
needs.

Run:  python examples/mobility_lifetime.py
"""

from repro import SimulationConfig, california_like_poi
from repro.mobility.lifetime import run_region_lifetime


def main() -> None:
    users = 6_000
    config = SimulationConfig(
        user_count=users,
        delta=2e-3 * (104_770 / users) ** 0.5,
        max_peers=10,
        k=10,
    )
    dataset = california_like_poi(users, seed=37)

    for label, speed in (("pedestrian", 0.002), ("cyclist", 0.006),
                         ("vehicle", 0.02)):
        result = run_region_lifetime(
            dataset,
            config,
            requests=80,
            steps=8,
            dt=1.0,
            max_speed=speed,
        )
        print(f"--- max speed {speed} per tick ({label}) ---")
        print(result.format())
        # When does full validity drop below one half?
        half_life = next(
            (t for t, v in zip(result.times, result.regions_fully_valid)
             if v < 0.5),
            None,
        )
        if half_life is not None:
            print(f"=> re-cloak roughly every {half_life:g} ticks\n")
        else:
            print("=> regions outlive the simulated horizon\n")


if __name__ == "__main__":
    main()
