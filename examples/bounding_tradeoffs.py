"""The bounding-policy trade-off and the privacy-loss extension.

Progressive bounding trades verification traffic against bound tightness
(Section V): fine steps cost many round trips but ship few extra POIs;
coarse steps converge fast but over-fetch.  The paper's secure policy
picks the increment minimising the expected total (Equation 5).

This example also demonstrates the paper's *future work* item: every
agreement pins a user's coordinate into the (last disagreed, first
agreed] interval, and a privacy floor keeps that interval from getting
too narrow.

Run:  python examples/bounding_tradeoffs.py
"""

import statistics

from repro import SimulationConfig, build_wpg, california_like_poi
from repro.bounding.boxing import optimal_bounding_box, secure_bounding_box
from repro.bounding.presets import paper_policy
from repro.bounding.privacy import PrivacyFloorPolicy, privacy_loss_metric
from repro.clustering.distributed import DistributedClustering
from repro.experiments.workloads import sample_hosts
from repro.server.poidb import POIDatabase


def main() -> None:
    config = SimulationConfig(
        user_count=8_000,
        delta=2e-3 * (104_770 / 8_000) ** 0.5,
        max_peers=10,
        k=10,
    )
    users = california_like_poi(config.user_count, seed=12)
    graph = build_wpg(users, config.delta, config.max_peers)
    db = POIDatabase(users)

    # Form 40 clusters with the paper's phase 1.
    clustering = DistributedClustering(graph, config.k)
    clusters = []
    for host in sample_hosts(graph, config.k, 80, seed=4):
        result = clustering.request(host)
        if not result.from_cache:
            clusters.append(sorted(result.members))
    print(f"{len(clusters)} clusters formed; comparing bounding policies\n")

    header = f"{'policy':<14} {'msgs':>6} {'POIs':>6} {'POIs/OPT':>9}"
    print(header)
    print("-" * len(header))
    opt_pois = []
    for members in clusters:
        points = [users[i] for i in members]
        opt_pois.append(db.count_in_region(optimal_bounding_box(points)))
    for name in ("linear", "exponential", "secure"):
        messages, pois, ratios = [], [], []
        for members, opt in zip(clusters, opt_pois):
            points = [users[i] for i in members]
            size = len(points)
            outcome = secure_bounding_box(
                points, 0, lambda: paper_policy(name, size, config)
            )
            messages.append(outcome.messages)
            count = db.count_in_region(outcome.region)
            pois.append(count)
            ratios.append(count / opt)
        print(
            f"{name:<14} {statistics.mean(messages):>6.1f} "
            f"{statistics.mean(pois):>6.1f} {statistics.mean(ratios):>9.2f}"
        )
    print(
        f"{'optimal (OPT)':<14} {statistics.mean(len(c) for c in clusters):>6.1f} "
        f"{statistics.mean(opt_pois):>6.1f} {1.0:>9.2f}"
    )

    # --- privacy loss ------------------------------------------------------
    members = clusters[0]
    points = [users[i] for i in members]
    size = len(points)

    plain = secure_bounding_box(
        points, 0, lambda: paper_policy("secure", size, config)
    )
    floored = secure_bounding_box(
        points,
        0,
        lambda: PrivacyFloorPolicy(
            paper_policy("secure", size, config), floor=2e-3
        ),
    )
    plain_loss = privacy_loss_metric(list(plain.directions.values()))
    floored_loss = privacy_loss_metric(list(floored.directions.values()))
    print("\nprivacy loss (per-user agreement-interval widths)")
    print(f"  secure:        min width {plain_loss.min_width:.2e} "
          f"-> worst leak {plain_loss.worst_bits:.1f} bits")
    print(f"  secure+floor:  min width {floored_loss.min_width:.2e} "
          f"-> worst leak {floored_loss.worst_bits:.1f} bits")
    print(f"  price paid: region grows "
          f"{plain.region.area:.2e} -> {floored.region.area:.2e}")


if __name__ == "__main__":
    main()
