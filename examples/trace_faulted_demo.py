"""End-to-end request tracing under injected faults.

Serves a batch of cloaking requests over a lossy network with one
crashed peer, with the flight recorder installed: every message, retry,
crash eviction and protocol abort is stamped with the trace id of the
request that caused it.  The script asserts complete attribution (no
unattributed wire traffic, no orphan events), exports the ``trace/v1``
JSONL file, and prints the trace ids so the CLI can render them::

    python examples/trace_faulted_demo.py trace.jsonl
    python -m repro.obs.trace trace.jsonl
    python -m repro.obs.trace trace.jsonl --slowest

Run:  python examples/trace_faulted_demo.py [out.jsonl]
"""

import sys

from repro import obs
from repro.cloaking.p2p_engine import P2PCloakingSession
from repro.config import SimulationConfig
from repro.datasets import uniform_points
from repro.graph.build import build_wpg
from repro.network.failures import FailurePlan
from repro.network.reliability import ProtocolAbort, ReliabilityPolicy
from repro.network.simulator import PeerNetwork
from repro.obs import trace

CRASHED_PEER = 7


def main(out_path: str = "trace.jsonl") -> None:
    obs.enable()
    recorder = trace.install_recorder()

    config = SimulationConfig(
        user_count=80, delta=0.12, max_peers=8, k=4, request_count=12
    )
    dataset = uniform_points(config.user_count, seed=3)
    graph = build_wpg(dataset, config.delta, config.max_peers)
    network = PeerNetwork(
        failure_plan=FailurePlan(
            drop_probability=0.08, crashed=frozenset({CRASHED_PEER}), seed=11
        )
    )
    session = P2PCloakingSession.bootstrapped(
        dataset,
        graph,
        config,
        network=network,
        reliability=ReliabilityPolicy(
            max_attempts=4, crash_after=2, max_reforms=3
        ),
    )

    served: list[int] = []
    aborted: list[tuple[int, str]] = []
    for host in range(config.request_count):
        if host == CRASHED_PEER:
            continue
        try:
            session.request(host)
            served.append(host)
        except ProtocolAbort as exc:
            aborted.append((host, exc.reason))

    stats = session.network.stats
    events = recorder.events()
    kinds: dict[str, int] = {}
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1

    # Complete attribution, or the demo (and the CI step running it) fails.
    assert stats.unattributed == 0, "a message crossed the wire untraced"
    assert all(e.trace_id is not None for e in events), "orphan event"
    assert kinds["message"] == stats.sent
    assert kinds.get("retry", 0) == session.transport.retries
    assert session.transport.retries > 0, "fault plan injected no retries"
    assert aborted, "fault plan caused no abort; demo expects one"
    assert kinds.get("abort", 0) == len(aborted)

    path = trace.export_jsonl(out_path)
    trace.uninstall_recorder()
    obs.disable()

    print(f"served {len(served)} request(s), {len(aborted)} abort(s)")
    print(
        f"{stats.sent} messages ({stats.dropped} dropped, "
        f"{session.transport.retries} retries), all attributed"
    )
    for host, reason in aborted:
        abort_event = next(
            e for e in events if e.kind == "abort" and e.fields.get("host") == host
        )
        print(f"aborted request: host {host} -> {reason} (trace #{abort_event.trace_id})")
    print(f"trace file: {path}")
    print(f"inspect with: python -m repro.obs.trace {path} --slowest")


if __name__ == "__main__":
    main(*sys.argv[1:2])
