"""Message-level peer-to-peer cloaking, with and without packet loss.

The quickstart drives the *analytic* pipeline; this example runs the same
algorithms as actual network protocols: every adjacency list crosses the
simulated radio network as a message, every bound verification is a
round trip, and the network can drop packets or lose peers entirely.

Demonstrates:
* that the wire protocol computes exactly the analytic cluster,
* message accounting per protocol step,
* robustness under 20% packet loss (with retries), and
* clean failure when a needed peer has crashed.

Run:  python examples/p2p_cloaking.py
"""

from repro import SimulationConfig, build_wpg, california_like_poi
from repro.bounding.p2p import p2p_upper_bound
from repro.bounding.presets import paper_policy
from repro.clustering.distributed import DistributedClustering
from repro.clustering.protocol import P2PClusteringProtocol
from repro.errors import ProtocolError
from repro.experiments.workloads import sample_hosts
from repro.network import FailurePlan, PeerNetwork, populate_network


def main() -> None:
    config = SimulationConfig(
        user_count=2_000,
        delta=2e-3 * (104_770 / 2_000) ** 0.5,
        max_peers=10,
        k=8,
    )
    users = california_like_poi(config.user_count, seed=7)
    graph = build_wpg(users, config.delta, config.max_peers)
    # Pick a host whose WPG component can support k-anonymity at all.
    host = sample_hosts(graph, config.k, 1, seed=1)[0]

    # --- a clean network -------------------------------------------------
    net = PeerNetwork()
    populate_network(net, graph, list(users.points))
    protocol = P2PClusteringProtocol(net, graph, config.k)
    report = protocol.request(host)
    analytic = DistributedClustering(graph, config.k).request(host)
    assert report.result.members == analytic.members
    print("phase 1 over the wire")
    print(f"  cluster: {sorted(report.result.members)}")
    print(f"  adjacency fetches: {report.adjacency_fetches} "
          f"(= analytic involved users: {analytic.involved})")
    print(f"  messages on the wire: {report.messages_sent}")

    # Phase 2: bound the x-axis maximum among the cluster over the wire.
    members = sorted(report.result.members)
    policy = paper_policy("secure", len(members), config)
    bound = p2p_upper_bound(
        net, host, members, axis=0, sign=1.0,
        start=users[host].x, policy=policy,
    )
    true_max = max(users[m].x for m in members)
    print("\nphase 2 over the wire (x-axis upper bound)")
    print(f"  bound {bound.outcome.bound:.5f} covers true max {true_max:.5f}")
    print(f"  iterations: {bound.outcome.iterations}, "
          f"verification messages: {bound.outcome.messages}")
    print("  nobody transmitted a coordinate — only yes/no answers")

    # --- 20% packet loss --------------------------------------------------
    lossy = PeerNetwork(FailurePlan(drop_probability=0.2, seed=99))
    populate_network(lossy, graph, list(users.points))
    lossy_protocol = P2PClusteringProtocol(lossy, graph, config.k, retries=20)
    lossy_report = lossy_protocol.request(host)
    assert lossy_report.result.members == analytic.members
    print("\nwith 20% packet loss (retries enabled)")
    print(f"  same cluster recovered; {lossy_report.messages_dropped} "
          f"messages were lost and retransmitted")

    # --- a crashed peer ---------------------------------------------------
    victim = next(iter(analytic.members - {host}))
    dead = PeerNetwork(FailurePlan(crashed=[victim]))
    populate_network(dead, graph, list(users.points))
    dead_protocol = P2PClusteringProtocol(dead, graph, config.k)
    try:
        dead_protocol.request(host)
    except ProtocolError as exc:
        print(f"\nwith peer {victim} crashed: request aborts cleanly")
        print(f"  ProtocolError: {exc}")
        print(f"  registry untouched: "
              f"{dead_protocol.registry.assigned_count} users assigned")


if __name__ == "__main__":
    main()
