"""The dispatcher: admission control, routing, and the churn barrier.

:class:`CloakingService` forks one worker process per shard (each
inheriting the pre-fork engine build copy-on-write — replicas start
bit-identical for free), keeps a socketpair to each, and routes every
cloak request to the shard owning the requester's WPG component.  One
reader thread per worker resolves in-flight futures by frame id, so any
number of caller threads can have requests outstanding on all shards at
once.

Admission is a bounded counter, not a hidden queue: when
``queue_capacity`` requests are in flight the next one is rejected with
a typed :class:`~repro.errors.ServiceOverload` — *never* silently
dropped, never an unbounded pile-up.  Backpressure is the caller's
signal to slow down.

Churn is a fleet-wide barrier, because a move batch can merge WPG
components that different workers own — and a post-merge request needs
the registrations *both* precursors made.  The barrier's order is the
correctness argument:

1. close the admission gate, drain in-flight requests to zero;
2. ``drain_state``: collect every worker's new clusters and cached
   regions since the last sync;
3. ``merge_state``: broadcast each worker the others' deltas (adopted
   via ``engine.adopt_cluster`` / ``adopt_region``);
4. ``churn``: broadcast the full move batch, with each shard's
   halo-refresh list (border users whose visibility changed);
5. apply the same moves to the dispatcher's routing mirror;
6. recompute component → shard routing, send ``own`` deltas;
7. reopen the gate.

Steps 2-3 run at the only moments component structure can change, so
between barriers every component's state lives wholly on its one owner —
which is why per-request answers are bit-identical to a single engine.
"""

from __future__ import annotations

import itertools
import multiprocessing
import socket
import threading
from concurrent.futures import Future
from typing import Iterable, Optional, Sequence

from repro import errors as _errors
from repro import obs
from repro.errors import ReproError, ServiceError, ServiceOverload
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.network.frames import (
    DEFAULT_MAX_FRAME,
    read_frame,
    send_frame,
    stamp_trace,
)
from repro.obs import names as metric
from repro.obs import trace as _trace
from repro.service.shards import ShardMap, halo_moves, ownership_delta, route_users
from repro.service.spec import ServiceSpec, build_engine
from repro.service.worker import worker_main


def _raise_remote(error: dict) -> None:
    """Re-raise a wire error dict as its typed local exception."""
    name = error.get("type", "ServiceError")
    message = error.get("message", "remote error")
    cls = getattr(_errors, name, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = ServiceError
        message = f"{name}: {message}"
    raise cls(message)


class _WorkerLink:
    """The dispatcher's end of one worker: socket, process, pending futures."""

    def __init__(self, shard: int, sock: socket.socket, process) -> None:
        self.shard = shard
        self.sock = sock
        self.process = process
        self.pending: dict[int, Future] = {}
        self.lock = threading.Lock()  # serialises writers on this socket
        self.alive = True


class CloakingService:
    """A sharded, multi-process cloaking service (context manager).

    ``request``/``request_many``/``apply_moves`` are the serving API and
    answer exactly what a single-process engine on the same world would;
    the rest is introspection for the differential harness, the soak
    test and the benchmark.
    """

    def __init__(self, spec: ServiceSpec, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self._spec = spec
        self._max_frame = max_frame
        self._closed = False
        if spec.obs:
            obs.enable()
        # The routing mirror doubles as the pre-fork replica build: every
        # worker inherits this exact engine copy-on-write.
        self._mirror = build_engine(spec)
        self._map = ShardMap(spec.shards, spec.delta)
        self._table = route_users(
            self._mirror.graph, self._mirror.dataset.points, self._map
        )
        self._clusters: set[frozenset[int]] = set()
        self._regions: dict[frozenset[int], tuple[Rect, int]] = {}
        # Admission state: a bounded in-flight counter plus the churn gate.
        self._admission = threading.Condition()
        self._in_flight = 0
        self._gate_closed = False
        self._frame_ids = itertools.count(1)
        self._id_lock = threading.Lock()
        self._links = self._spawn_workers()
        self._readers = [
            threading.Thread(
                target=self._reader, args=(link,), daemon=True,
                name=f"service-reader-{link.shard}",
            )
            for link in self._links
        ]
        for reader in self._readers:
            reader.start()

    # -- lifecycle ---------------------------------------------------------------

    def _spawn_workers(self) -> list[_WorkerLink]:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX hosts
            raise ServiceError(
                "the sharded service needs the 'fork' start method so "
                "workers can inherit the pre-fork engine build"
            ) from exc
        pairs = [socket.socketpair() for _ in range(self._spec.shards)]
        owned: list[list[int]] = [[] for _ in range(self._spec.shards)]
        for user, shard in enumerate(self._table):
            owned[shard].append(user)
        links: list[_WorkerLink] = []
        for shard, (parent_end, child_end) in enumerate(pairs):
            close_first = [p for p, _ in pairs] + [
                c for other, (_, c) in enumerate(pairs) if other != shard
            ]
            process = ctx.Process(
                target=worker_main,
                args=(
                    child_end,
                    close_first,
                    shard,
                    self._mirror,
                    self._map,
                    owned[shard],
                    self._spec.obs,
                    self._max_frame,
                ),
                name=f"cloak-shard-{shard}",
                daemon=True,
            )
            process.start()
            links.append(_WorkerLink(shard, parent_end, process))
        for _, child_end in pairs:
            child_end.close()
        return links

    def __enter__(self) -> "CloakingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Drain in-flight requests, shut every worker down, reap them."""
        if self._closed:
            return
        self._closed = True
        with self._admission:
            self._gate_closed = True
            self._admission.wait_for(lambda: self._in_flight == 0, timeout=30.0)
            self._admission.notify_all()  # wake gated waiters into the typed error
        for link in self._links:
            if not link.alive:
                continue
            try:
                future = self._submit(link, {"op": "shutdown"})
                future.result(timeout=10.0)
            except Exception:
                pass  # shutting down anyway; reap below
            try:
                link.sock.close()
            except OSError:
                pass
        for reader in self._readers:
            reader.join(timeout=5.0)
        for link in self._links:
            link.process.join(timeout=10.0)
            if link.process.is_alive():  # pragma: no cover - hung worker
                link.process.terminate()
                link.process.join(timeout=5.0)

    # -- the wire ----------------------------------------------------------------

    def _reader(self, link: _WorkerLink) -> None:
        """Resolve this worker's replies to their futures, until EOF."""
        while True:
            try:
                frame = read_frame(link.sock, self._max_frame)
            except (ReproError, OSError):
                break
            if frame is None:
                break
            future = link.pending.pop(frame.get("id"), None)
            if future is not None and not future.cancelled():
                future.set_result(frame)
        link.alive = False
        death = ServiceError(f"shard {link.shard} worker died mid-request")
        for future in list(link.pending.values()):
            if not future.done():
                future.set_exception(death)
        link.pending.clear()

    def _submit(self, link: _WorkerLink, payload: dict) -> Future:
        """Send one frame, return the Future its reply will resolve."""
        if not link.alive:
            raise ServiceError(f"shard {link.shard} worker is not running")
        with self._id_lock:
            payload["id"] = next(self._frame_ids)
        stamp_trace(payload)
        future: Future = Future()
        link.pending[payload["id"]] = future
        with link.lock:
            try:
                send_frame(link.sock, payload, self._max_frame)
            except OSError as exc:
                link.pending.pop(payload["id"], None)
                raise ServiceError(
                    f"shard {link.shard} worker is unreachable: {exc}"
                ) from exc
        if obs.enabled():
            obs.inc(metric.SERVICE_FRAMES_SENT)
        return future

    def _call(self, shard: int, payload: dict, timeout: float = 120.0) -> dict:
        """Round-trip one op; typed re-raise on an error reply."""
        reply = self._submit(self._links[shard], payload).result(timeout=timeout)
        if reply.get("status") != "ok":
            _raise_remote(reply.get("error", {}))
        return reply

    def _broadcast(self, payloads: Sequence[dict], timeout: float = 120.0) -> list[dict]:
        """One op per worker, concurrently; gather all replies in shard order."""
        futures = [
            self._submit(link, payload)
            for link, payload in zip(self._links, payloads)
        ]
        replies = []
        for future in futures:
            reply = future.result(timeout=timeout)
            if reply.get("status") != "ok":
                _raise_remote(reply.get("error", {}))
            replies.append(reply)
        return replies

    # -- admission -----------------------------------------------------------------

    def _admit(self, slots: int = 1) -> None:
        """Take admission slots or raise :class:`ServiceOverload` (typed,
        immediate — the bounded queue never silently drops).  Blocks only
        while the churn barrier holds the gate."""
        with self._admission:
            self._admission.wait_for(lambda: not self._gate_closed or self._closed)
            if self._closed:
                raise ServiceError("service is closed")
            if self._in_flight + slots > self._spec.queue_capacity:
                if obs.enabled():
                    obs.inc(metric.SERVICE_OVERLOADS)
                raise ServiceOverload(
                    f"admission queue full: {self._in_flight} in flight, "
                    f"capacity {self._spec.queue_capacity} — retry later"
                )
            self._in_flight += slots

    def _release(self, slots: int = 1) -> None:
        with self._admission:
            self._in_flight -= slots
            self._admission.notify_all()

    # -- the serving API -------------------------------------------------------------

    @property
    def spec(self) -> ServiceSpec:
        """The spec this service was built from."""
        return self._spec

    @property
    def shard_map(self) -> ShardMap:
        """The slab plan (tests probe halo geometry through it)."""
        return self._map

    def shard_of(self, host: int) -> int:
        """The shard currently owning ``host`` (component anchor routing)."""
        self._check_host(host)
        return self._table[host]

    def _check_host(self, host: int) -> None:
        if not isinstance(host, int) or isinstance(host, bool):
            raise ServiceError(f"host must be an int, got {host!r}")
        if not 0 <= host < len(self._table):
            raise ServiceError(
                f"unknown host {host} (population is {len(self._table)})"
            )

    def request(self, host: int) -> dict:
        """One cloak request; the canonical outcome dict of
        :func:`repro.service.worker.outcome_of` (cloaking failures come
        back as ``ok: false`` outcomes, not exceptions)."""
        self._check_host(host)
        self._admit()
        try:
            with _trace.request_scope(), obs.span(metric.SPAN_SERVICE_REQUEST):
                if obs.enabled():
                    obs.inc(metric.SERVICE_REQUESTS)
                reply = self._call(
                    self._table[host], {"op": "request", "host": host}
                )
            return reply["outcome"]
        finally:
            self._release()

    def request_many(self, hosts: Sequence[int]) -> list[dict]:
        """A batch of requests, scatter-gathered by owning shard.

        Per-shard arrival order preserves the batch order, and the reply
        is reassembled in the caller's order — exactly the sequential
        semantics of looping :meth:`request`.
        """
        hosts = list(hosts)
        for host in hosts:
            self._check_host(host)
        if not hosts:
            return []
        by_shard: dict[int, list[tuple[int, int]]] = {}
        for position, host in enumerate(hosts):
            by_shard.setdefault(self._table[host], []).append((position, host))
        self._admit(len(by_shard))
        try:
            with _trace.request_scope(), obs.span(metric.SPAN_SERVICE_REQUEST):
                if obs.enabled():
                    obs.inc(metric.SERVICE_REQUESTS, len(hosts))
                futures = {
                    shard: self._submit(
                        self._links[shard],
                        {"op": "request_many", "hosts": [h for _, h in pairs]},
                    )
                    for shard, pairs in by_shard.items()
                }
            answers: list[Optional[dict]] = [None] * len(hosts)
            for shard, pairs in by_shard.items():
                reply = futures[shard].result(timeout=120.0)
                if reply.get("status") != "ok":
                    _raise_remote(reply.get("error", {}))
                for (position, _), outcome in zip(pairs, reply["outcomes"]):
                    answers[position] = outcome
            return answers  # type: ignore[return-value]
        finally:
            self._release(len(by_shard))

    def stall(self, shard: int, seconds: float) -> Future:
        """Hold ``shard`` busy (diagnostic, admission-counted).

        The protocol tests use this to fill the bounded queue
        deterministically; the returned future resolves when the worker
        wakes up.  The admission slot is released on completion.
        """
        if not 0 <= shard < self._spec.shards:
            raise ServiceError(f"no shard {shard}")
        self._admit()
        try:
            future = self._submit(
                self._links[shard], {"op": "stall", "seconds": float(seconds)}
            )
        except BaseException:
            self._release()
            raise
        future.add_done_callback(lambda _f: self._release())
        return future

    # -- the churn barrier -------------------------------------------------------------

    def apply_moves(self, moves: Sequence) -> dict:
        """Run one churn tick through the full barrier (see module doc).

        ``moves`` entries are ``(user, x, y)`` or ``(user, Point)``.
        Returns a summary dict: per-shard halo-refresh counts, the number
        of users rerouted to a different owner, and the state-sync sizes.
        """
        batch: list[tuple[int, Point]] = []
        for entry in moves:
            if len(entry) == 2:
                user, point = entry
                batch.append((int(user), point))
            else:
                user, x, y = entry
                batch.append((int(user), Point(float(x), float(y))))
        with self._admission:
            self._gate_closed = True
            drained = self._admission.wait_for(
                lambda: self._in_flight == 0, timeout=120.0
            )
            if not drained:  # pragma: no cover - pathological stall
                self._gate_closed = False
                self._admission.notify_all()
                raise ServiceError("churn barrier timed out draining in-flight work")
        try:
            with _trace.request_scope(), obs.span(metric.SPAN_SERVICE_CHURN):
                summary = self._barrier(batch)
            if obs.enabled():
                obs.inc(metric.SERVICE_CHURN_TICKS)
            return summary
        finally:
            with self._admission:
                self._gate_closed = False
                self._admission.notify_all()

    def _barrier(self, batch: list[tuple[int, Point]]) -> dict:
        synced = self._sync_state_locked()
        # Halo lists must read pre-move positions; snapshot them now.
        points = self._mirror.dataset.points
        old_x = {user: points[user].x for user, _ in batch}
        wire_moves = [[user, point.x, point.y] for user, point in batch]
        move_triples = [(user, point.x, point.y) for user, point in batch]
        halo_lists = [
            halo_moves(move_triples, old_x, self._map, shard)
            for shard in range(self._spec.shards)
        ]
        self._broadcast(
            [
                {"op": "churn", "moves": wire_moves, "halo": halo_lists[shard]}
                for shard in range(self._spec.shards)
            ]
        )
        self._mirror.apply_moves(batch)
        old_table = self._table
        # self._clusters is complete here: _sync_state_locked ran first,
        # and no requests slip in while the gate is closed.
        self._table = route_users(
            self._mirror.graph,
            self._mirror.dataset.points,
            self._map,
            groups=self._clusters,
        )
        delta = ownership_delta(old_table, self._table)
        if delta:
            self._broadcast_some(
                {
                    shard: {"op": "own", "grant": gained, "revoke": lost}
                    for shard, (gained, lost) in delta.items()
                }
            )
        rerouted = sum(len(gained) for gained, _ in delta.values())
        halo_total = sum(len(lst) for lst in halo_lists)
        if obs.enabled():
            if halo_total:
                obs.inc(metric.SERVICE_HALO_REFRESHES, halo_total)
            if rerouted:
                obs.inc(metric.SERVICE_REROUTED_USERS, rerouted)
        return {
            "moved": len(batch),
            "halo_refreshes": [len(lst) for lst in halo_lists],
            "rerouted_users": rerouted,
            "synced_clusters": synced[0],
            "synced_regions": synced[1],
        }

    def _broadcast_some(self, payloads: dict[int, dict]) -> None:
        futures = {
            shard: self._submit(self._links[shard], payload)
            for shard, payload in payloads.items()
        }
        for shard, future in futures.items():
            reply = future.result(timeout=120.0)
            if reply.get("status") != "ok":
                _raise_remote(reply.get("error", {}))

    def _sync_state_locked(self) -> tuple[int, int]:
        """Steps 2-3: drain every worker's new state, cross-merge it.

        Assumes the gate is closed and in-flight is zero.  Also folds
        everything into the dispatcher's canonical cluster set / region
        map (what :meth:`registry_clusters` and :meth:`cached_regions`
        serve).  Returns (clusters, regions) counts drained this sync.
        """
        replies = self._broadcast(
            [{"op": "drain_state"} for _ in self._links]
        )
        per_worker = []
        live: set[frozenset[int]] = set()
        for reply in replies:
            clusters = [frozenset(members) for members in reply["clusters"]]
            regions = {
                frozenset(members): (Rect(*rect), int(anonymity))
                for members, rect, anonymity in reply["regions"]
            }
            per_worker.append((clusters, regions))
            self._clusters.update(clusters)
            self._regions.update(regions)
            live.update(frozenset(members) for members in reply["live_regions"])
        # Retire regions the fleet no longer caches (churn invalidation
        # runs identically on every replica); regions drained this very
        # sync are live on their maker by construction.
        self._regions = {
            members: value
            for members, value in self._regions.items()
            if members in live
        }
        payloads = []
        for shard in range(self._spec.shards):
            foreign_clusters: list[list[int]] = []
            foreign_regions: list[list] = []
            for other, (clusters, regions) in enumerate(per_worker):
                if other == shard:
                    continue
                foreign_clusters.extend(sorted(group) for group in clusters)
                foreign_regions.extend(
                    [
                        sorted(members),
                        [rect.x_min, rect.x_max, rect.y_min, rect.y_max],
                        anonymity,
                    ]
                    for members, (rect, anonymity) in regions.items()
                )
            payloads.append(
                {
                    "op": "merge_state",
                    "clusters": foreign_clusters,
                    "regions": foreign_regions,
                }
            )
        self._broadcast(payloads)
        return (
            sum(len(clusters) for clusters, _ in per_worker),
            sum(len(regions) for _, regions in per_worker),
        )

    def sync_state(self) -> tuple[int, int]:
        """Run the state-sync barrier alone (no moves); returns the
        (clusters, regions) counts drained.  The introspection methods
        call this so their answers include un-synced recent requests."""
        with self._admission:
            self._gate_closed = True
            self._admission.wait_for(lambda: self._in_flight == 0, timeout=120.0)
        try:
            return self._sync_state_locked()
        finally:
            with self._admission:
                self._gate_closed = False
                self._admission.notify_all()

    # -- introspection (the differential harness's hooks) -----------------------------

    def registry_clusters(self) -> set[frozenset[int]]:
        """The canonical merged registry: the *set* of clusters formed
        anywhere in the fleet.  Registration order differs legitimately
        between replicas (each worker hears about foreign clusters at
        sync points), so the set — not the sequence — is the equality
        surface the tests compare."""
        self.sync_state()
        return set(self._clusters)

    def cached_regions(self) -> dict[frozenset[int], tuple[Rect, int]]:
        """Merged region cache: members → (rect, anonymity).  Cache ids
        are process-local and deliberately absent."""
        self.sync_state()
        return dict(self._regions)

    def shard_graph_views(self) -> list[dict]:
        """Every worker's geometric view (edges, halo check) for the
        stitch test."""
        return [
            {k: reply[k] for k in ("edges", "geometric_owned", "halo_ok", "violations")}
            for reply in self._broadcast(
                [{"op": "graph_view"} for _ in self._links]
            )
        ]

    def worker_stats(self) -> list[dict]:
        """Per-worker serving stats (busy seconds, op counts)."""
        replies = self._broadcast([{"op": "stats"} for _ in self._links])
        keys = (
            "shard", "owned", "busy_cpu", "busy_wall", "ops",
            "halo_refreshes", "clusters", "regions",
        )
        return [{k: reply[k] for k in keys} for reply in replies]

    def reset_worker_stats(self) -> None:
        """Zero every worker's busy meters (benchmark phase boundaries)."""
        self._broadcast([{"op": "reset_stats"} for _ in self._links])

    def obs_snapshot(self) -> Optional[dict]:
        """The fleet-wide observability snapshot: every worker's
        process-local snapshot merged with the dispatcher's own
        (:func:`repro.obs.merge_snapshots`)."""
        replies = self._broadcast([{"op": "snapshot"} for _ in self._links])
        snapshots = [reply["snapshot"] for reply in replies if reply["snapshot"]]
        if obs.enabled():
            snapshots.append(obs.snapshot())
        if not snapshots:
            return None
        return obs.merge_snapshots(snapshots)
