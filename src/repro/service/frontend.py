"""The async front door: a TCP server bridging frames to the dispatcher.

``python -m repro.service`` serves the same length-prefixed JSON frames
the dispatcher speaks internally, over TCP.  The asyncio loop only
parses and validates; every real operation hops to a worker thread
(``run_in_executor``) so a slow cloak request never blocks accepting
connections — backpressure is the dispatcher's admission counter, which
surfaces here as a typed ``ServiceOverload`` error frame.

Client-facing robustness differs from the worker loop in one deliberate
way: an *oversized* length declaration on a client connection gets a
typed error frame and then the connection is closed.  A worker resyncs
(its peer is the dispatcher, which is trusted to have actually sent the
declared bytes); an arbitrary TCP client claiming a 4 GiB frame may
never send them, and a reader that waits to resync can be held hostage.
Malformed JSON bodies are fully consumed, so those get an error reply
and the connection keeps serving.
"""

from __future__ import annotations

import asyncio
import json
import struct
import threading
from typing import Optional

from repro.errors import ReproError, WireFormatError
from repro.network.frames import DEFAULT_MAX_FRAME, decode_payload
from repro.service.dispatcher import CloakingService

_LENGTH = struct.Struct(">I")

#: Ops a TCP client may invoke, mapped to dispatcher calls below.
CLIENT_OPS = ("ping", "request", "request_many", "churn", "stats", "spec")


async def read_client_body(
    reader: asyncio.StreamReader, max_bytes: int = DEFAULT_MAX_FRAME
) -> Optional[bytes]:
    """Read one raw frame body off an asyncio stream.

    Returns None on clean EOF.  Raises :class:`WireFormatError` only for
    *framing* failures (oversized declaration — raised before the body
    is awaited — or a connection dying mid-frame), after which the
    stream has no recovery point.  Whether the returned bytes parse is
    the caller's separate concern: a bad body is fully consumed, so the
    connection can keep serving after a typed error reply.
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireFormatError("connection closed inside a frame header") from exc
    (length,) = _LENGTH.unpack(header)
    if length > max_bytes:
        raise WireFormatError(
            f"frame declares {length} bytes, cap is {max_bytes}"
        )
    try:
        return await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise WireFormatError("connection closed inside a frame body") from exc


def encode_client_frame(payload: dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _LENGTH.pack(len(body)) + body


def _error_frame(exc: Exception) -> bytes:
    return encode_client_frame(
        {
            "id": None,
            "status": "error",
            "error": {"type": type(exc).__name__, "message": str(exc)},
        }
    )


class ServiceFrontend:
    """One TCP endpoint in front of a :class:`CloakingService`."""

    def __init__(
        self,
        service: CloakingService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._max_frame = max_frame
        self._server: Optional[asyncio.base_events.Server] = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — valid after :meth:`start`."""
        if self._server is None:
            raise WireFormatError("frontend is not started")
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- per-connection loop -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    raw = await read_client_body(reader, self._max_frame)
                except WireFormatError as exc:
                    # Oversized or mid-frame death: no resync point on an
                    # untrusted stream — answer typed, then hang up.
                    writer.write(_error_frame(exc))
                    await writer.drain()
                    return
                if raw is None:
                    return
                try:
                    frame = decode_payload(raw)
                except WireFormatError as exc:
                    # The bad body was fully consumed; the stream is
                    # still framed — reply typed and keep serving.
                    writer.write(_error_frame(exc))
                    await writer.drain()
                    continue
                reply = await self._serve_frame(frame)
                writer.write(encode_client_frame(reply))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _serve_frame(self, frame: dict) -> dict:
        frame_id = frame.get("id")
        try:
            body = await self._dispatch(frame)
            return {"id": frame_id, "status": "ok", **body}
        except ReproError as exc:
            return {
                "id": frame_id,
                "status": "error",
                "error": {"type": type(exc).__name__, "message": str(exc)},
            }

    async def _dispatch(self, frame: dict) -> dict:
        op = frame.get("op")
        if op not in CLIENT_OPS:
            raise WireFormatError(
                f"unknown client op {op!r} (supported: {', '.join(CLIENT_OPS)})"
            )
        loop = asyncio.get_running_loop()
        service = self._service
        if op == "ping":
            return {"shards": service.spec.shards}
        if op == "spec":
            return {"spec": service.spec.to_dict()}
        if op == "request":
            host = frame.get("host")
            outcome = await loop.run_in_executor(None, service.request, host)
            return {"outcome": outcome}
        if op == "request_many":
            hosts = frame.get("hosts")
            if not isinstance(hosts, list):
                raise WireFormatError("op 'request_many' needs a 'hosts' list")
            outcomes = await loop.run_in_executor(None, service.request_many, hosts)
            return {"outcomes": outcomes}
        if op == "churn":
            moves = frame.get("moves")
            if not isinstance(moves, list):
                raise WireFormatError("op 'churn' needs a 'moves' list")
            summary = await loop.run_in_executor(None, service.apply_moves, moves)
            return {"summary": summary}
        return {"stats": await loop.run_in_executor(None, service.worker_stats)}


class BackgroundFrontend:
    """A frontend on its own event-loop thread — what the tests use.

    ``with BackgroundFrontend(service) as (host, port): ...`` gives a
    live TCP endpoint without the test owning an event loop.
    """

    def __init__(self, service: CloakingService, host: str = "127.0.0.1") -> None:
        self._frontend = ServiceFrontend(service, host=host, port=0)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._address: Optional[tuple[str, int]] = None

    def __enter__(self) -> tuple[str, int]:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="service-frontend", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):  # pragma: no cover
            raise WireFormatError("frontend failed to start")
        assert self._address is not None
        return self._address

    def _run(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)

        async def boot() -> None:
            self._address = await self._frontend.start()
            self._started.set()

        self._loop.run_until_complete(boot())
        self._loop.run_forever()
        self._loop.run_until_complete(self._frontend.stop())
        pending = asyncio.all_tasks(self._loop)
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self._loop.close()

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
