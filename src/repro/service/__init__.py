"""repro.service — the sharded multi-core cloaking service runtime.

A production-shaped front for :class:`~repro.cloaking.engine.CloakingEngine`:
a dispatcher process routes cloak requests over a length-prefixed JSON
wire protocol to shard worker processes, each owning a contiguous slab
of grid-tile columns plus a δ-halo of border users.  Churn ticks run as
fleet-wide barriers; the differential harness in
``tests/test_service_equivalence.py`` and the ``service-shard-equal``
fuzz invariant prove the shard count is *unobservable* — the service
answers bit-identically to a single-process engine on the same world.

Quick start::

    from repro.service import CloakingService, ServiceSpec

    spec = ServiceSpec.synthetic(users=10_000, seed=7, shards=4)
    with CloakingService(spec) as service:
        outcome = service.request(42)          # one cloak request
        outcomes = service.request_many([1, 2, 3])
        service.apply_moves([(5, 0.25, 0.75)])  # churn barrier

Or as a daemon: ``python -m repro.service --users 10000 --shards 4``.
"""

from repro.service.dispatcher import CloakingService
from repro.service.shards import ShardMap, route_users
from repro.service.spec import ServiceSpec, build_engine, spec_from_world
from repro.service.worker import outcome_of, outcomes_of

__all__ = [
    "CloakingService",
    "ServiceSpec",
    "ShardMap",
    "build_engine",
    "outcome_of",
    "outcomes_of",
    "route_users",
    "spec_from_world",
]
