"""Spatial shard plan: tile-column slabs, δ-halos, component routing.

The unit square is cut into grid tiles of width δ (the same tiling the
churn runtime's :class:`~repro.spatial.grid.GridIndex` uses); each shard
owns a contiguous run of tile *columns* — a vertical slab.  Because a
WPG edge never spans more than δ, every edge incident to a user inside
a slab has its other endpoint inside the slab **or** in the slab's
δ-halo (the one-tile band on each side).  That locality gives each
shard a well-defined view: the users it geometrically owns, the border
users it must be able to see read-only, and the owned-incident edge set
whose union over all shards stitches back into the full graph
(``tests/test_service_soak.py`` checks both properties).

Request *routing*, however, follows WPG components, not raw geometry:
the outcome of a cloak request depends on earlier registrations and
cached regions anywhere in the requester's connected component (and
nowhere else), so all requests of one component must serialise on one
worker.  A component is anchored at its minimum-id member; the shard
whose slab contains the anchor's position owns every user of that
component.  Components are intra-slab in the common case (they chain
through ≤ δ edges), so anchoring keeps routing aligned with geometry
while staying correct when a component straddles a boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ServiceError
from repro.graph.wpg import WeightedProximityGraph


@dataclass(frozen=True)
class ShardMap:
    """The static slab plan: ``shards`` contiguous runs of δ-columns."""

    shards: int
    delta: float
    columns: int = field(init=False)
    columns_per_shard: int = field(init=False)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ServiceError(f"shards must be >= 1, got {self.shards}")
        if not (0.0 < self.delta <= 1.0):
            raise ServiceError(f"delta must be in (0, 1], got {self.delta}")
        columns = max(1, math.ceil(1.0 / self.delta - 1e-9))
        object.__setattr__(self, "columns", columns)
        object.__setattr__(
            self, "columns_per_shard", max(1, math.ceil(columns / self.shards))
        )

    def column_of(self, x: float) -> int:
        """The tile column containing ``x`` (clamped to the unit square)."""
        if x <= 0.0:
            return 0
        return min(int(x / self.delta), self.columns - 1)

    def shard_of(self, x: float) -> int:
        """The shard whose slab contains ``x``."""
        return min(self.column_of(x) // self.columns_per_shard, self.shards - 1)

    def slab(self, shard: int) -> tuple[float, float]:
        """The x-interval ``[lo, hi)`` of ``shard``'s tile columns.

        The last shard's slab extends to the right edge of the unit
        square (and absorbs any trailing columns when ``columns`` does
        not divide evenly).
        """
        if not 0 <= shard < self.shards:
            raise ServiceError(f"no shard {shard} in a {self.shards}-shard map")
        lo = min(shard * self.columns_per_shard * self.delta, 1.0)
        if shard == self.shards - 1:
            return lo, 1.0
        hi = min((shard + 1) * self.columns_per_shard * self.delta, 1.0)
        return lo, hi

    def in_slab(self, shard: int, x: float) -> bool:
        """Is ``x`` geometrically owned by ``shard``?"""
        lo, hi = self.slab(shard)
        if shard == self.shards - 1:
            return lo <= x <= hi
        return lo <= x < hi

    def in_halo(self, shard: int, x: float) -> bool:
        """Is ``x`` in ``shard``'s δ-halo (border band, not owned)?"""
        if self.in_slab(shard, x):
            return False
        lo, hi = self.slab(shard)
        return (lo - self.delta) <= x < (hi + self.delta)

    def touches(self, shard: int, x: float) -> bool:
        """Owned or halo: does ``shard`` need to see a user at ``x``?"""
        return self.in_slab(shard, x) or self.in_halo(shard, x)


def route_users(
    graph: WeightedProximityGraph,
    positions: Sequence,
    shard_map: ShardMap,
    groups: Iterable[Iterable[int]] = (),
) -> list[int]:
    """The routing table: user id → owning shard, by routing-group anchor.

    A routing group is a connected component of the WPG *unioned with
    every registered cluster's member set* (``groups``).  The WPG edges
    capture where new clustering state can form; the cluster sets
    capture where state already lives — a cluster's cached region is
    shared by all its members permanently (reciprocity), and churn can
    *split* the WPG component a cluster formed in, stranding members on
    the far side of a cut.  Folding the cluster sets in keeps every
    request's full dependency footprint on one worker, which is what the
    differential harness's bit-identity rests on.

    ``positions`` is indexable by user id and yields objects with an
    ``x`` attribute (dataset points); each group maps to the shard whose
    slab contains the position of the group's minimum-id member.
    """
    count = graph.vertex_count
    parent = list(range(count))

    def find(vertex: int) -> int:
        root = vertex
        while parent[root] != root:
            root = parent[root]
        while parent[vertex] != root:
            parent[vertex], vertex = root, parent[vertex]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            # Smaller root wins so the root IS the group's anchor.
            if rb < ra:
                ra, rb = rb, ra
            parent[rb] = ra

    for edge in graph.edges():
        union(edge.u, edge.v)
    for group in groups:
        members = iter(group)
        first = next(members, None)
        if first is None:
            continue
        for other in members:
            union(first, other)
    return [
        shard_map.shard_of(positions[find(user)].x) for user in range(count)
    ]


def ownership_delta(
    before: Sequence[int], after: Sequence[int]
) -> dict[int, list[list[int]]]:
    """Per-shard ``[gained, lost]`` user lists between two routing tables.

    Churn can merge components across a slab boundary (or walk an
    anchor into a different slab); the dispatcher broadcasts the
    resulting ownership changes so each worker keeps an authoritative
    owned set.  Only shards with a change appear in the result.
    """
    if len(before) != len(after):
        raise ServiceError(
            f"routing tables disagree on population: {len(before)} vs {len(after)}"
        )
    delta: dict[int, list[list[int]]] = {}
    for user, (old, new) in enumerate(zip(before, after)):
        if old == new:
            continue
        delta.setdefault(new, [[], []])[0].append(user)
        delta.setdefault(old, [[], []])[1].append(user)
    return delta


def halo_moves(
    moves: Iterable[tuple[int, float, float]],
    old_x: dict[int, float],
    shard_map: ShardMap,
    shard: int,
) -> list[int]:
    """Users whose move crosses into or out of ``shard``'s halo band.

    A boundary move changes what this shard must be able to see
    read-only; the dispatcher lists these users in the shard's churn
    frame (its *halo-refresh* message) and counts them under
    ``service.halo_refreshes``.
    """
    touched: list[int] = []
    for user, new_x, _new_y in moves:
        was = shard_map.in_halo(shard, old_x[user])
        now = shard_map.in_halo(shard, new_x)
        if was != now:
            touched.append(user)
    return touched
