"""The service spec: a JSON-serialisable recipe for identical replicas.

Every shard worker holds a full deterministic replica of the engine (the
ROADMAP's shared-state flavor of the sharded runtime: the WPG's
components are the unit of cloaking correctness, and a component may
chain through ≤ δ edges across any number of tile slabs, so partial
state cannot answer every request bit-identically).  A
:class:`ServiceSpec` is everything needed to build one replica — under
the ``fork`` start method workers inherit the dispatcher's already-built
engine copy-on-write and the spec is provenance; under any other start
method it is the build recipe itself.

Two sources are supported: a :mod:`repro.verify` world payload (the
differential test harness drives the service over fuzzed worlds) and a
synthetic population (the benchmark's 50k-user load).

The **centralized** engine mode is refused with a typed
:class:`~repro.errors.ServiceError`: its one-shot whole-graph partition
is global state triggered by whichever request arrives first, so two
shards that first hear a request at different points of the churn
timeline would partition different graphs — there is no shard-local
serving order that reproduces the single-process engine.  The
``distributed`` and ``tree`` flavors confine all cross-request state to
the requester's WPG component, which is exactly what makes sharding
invisible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cloaking.engine import CloakingEngine
from repro.config import SimulationConfig
from repro.datasets.base import MutablePointDataset, PointDataset
from repro.errors import ServiceError

#: Clustering flavors whose request-time state is component-local.
SHARDABLE_FLAVORS = ("distributed", "tree")

#: Synthetic dataset kinds the spec can generate.
SYNTHETIC_KINDS = ("california", "uniform")


@dataclass(frozen=True, slots=True)
class ServiceSpec:
    """Everything a worker needs to build its engine replica.

    ``source`` is either ``{"world": <verify World payload>}`` or
    ``{"synthetic": {"users", "seed", "kind", "delta", "max_peers",
    "k"}}``.  ``flavor`` selects the phase-1 service (``distributed`` or
    the cluster-tree fast path); ``policy``/``min_area`` pass through to
    the engine.  ``shards`` and ``queue_capacity`` shape the service in
    front of the replicas; ``obs`` turns the per-process metrics
    registry on in every worker.
    """

    source: dict
    flavor: str = "distributed"
    policy: str = "secure"
    min_area: float = 0.0
    shards: int = 2
    queue_capacity: int = 256
    obs: bool = False
    tuning: dict | None = None

    def __post_init__(self) -> None:
        if self.tuning is not None:
            from repro.tuning.policy import TuningPolicy

            # Validate eagerly: a bad policy should fail at spec time,
            # not inside every worker process.
            TuningPolicy.from_meta(self.tuning)
        if self.flavor not in SHARDABLE_FLAVORS:
            raise ServiceError(
                f"clustering flavor {self.flavor!r} cannot be sharded "
                f"(supported: {', '.join(SHARDABLE_FLAVORS)}); the "
                "centralized mode's one-shot global partition has no "
                "shard-local serving order"
            )
        if self.shards < 1:
            raise ServiceError(f"shards must be >= 1, got {self.shards}")
        if self.queue_capacity < 1:
            raise ServiceError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        keys = set(self.source) if isinstance(self.source, dict) else set()
        if keys != {"world"} and keys != {"synthetic"}:
            raise ServiceError(
                "spec source must be {'world': ...} or {'synthetic': ...}"
            )

    @classmethod
    def synthetic(
        cls,
        users: int,
        seed: int = 7,
        kind: str = "california",
        delta: float = 0.02,
        max_peers: int = 10,
        k: int = 5,
        **kwargs: object,
    ) -> "ServiceSpec":
        """A spec over a generated population (benchmarks, the daemon)."""
        if kind not in SYNTHETIC_KINDS:
            raise ServiceError(
                f"unknown synthetic dataset kind {kind!r} "
                f"(supported: {', '.join(SYNTHETIC_KINDS)})"
            )
        source = {
            "synthetic": {
                "users": int(users),
                "seed": int(seed),
                "kind": kind,
                "delta": float(delta),
                "max_peers": int(max_peers),
                "k": int(k),
            }
        }
        return cls(source=source, **kwargs)  # type: ignore[arg-type]

    @property
    def delta(self) -> float:
        """The world's δ (tile width of the shard map)."""
        if "world" in self.source:
            return float(self.source["world"]["delta"])
        return float(self.source["synthetic"]["delta"])

    def to_dict(self) -> dict:
        """JSON-ready payload (``python -m repro.service --spec``)."""
        return {
            "format": "service-spec-v1",
            "source": self.source,
            "flavor": self.flavor,
            "policy": self.policy,
            "min_area": self.min_area,
            "shards": self.shards,
            "queue_capacity": self.queue_capacity,
            "obs": self.obs,
            "tuning": self.tuning,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceSpec":
        """Inverse of :meth:`to_dict`; typed error on unknown formats."""
        if not isinstance(payload, dict) or payload.get("format") != "service-spec-v1":
            raise ServiceError(
                f"unknown service spec format: {payload.get('format') if isinstance(payload, dict) else payload!r}"
            )
        return cls(
            source=payload["source"],
            flavor=payload.get("flavor", "distributed"),
            policy=payload.get("policy", "secure"),
            min_area=float(payload.get("min_area", 0.0)),
            shards=int(payload.get("shards", 2)),
            queue_capacity=int(payload.get("queue_capacity", 256)),
            obs=bool(payload.get("obs", False)),
            tuning=payload.get("tuning"),
        )

    def with_shards(self, shards: int) -> "ServiceSpec":
        """This spec at a different shard count (scaling curves)."""
        return replace(self, shards=shards)


def spec_from_world(world, shards: int = 2, **kwargs: object) -> ServiceSpec:
    """A spec serving a :class:`repro.verify.worlds.World`.

    The world's policy and mode carry over; a ``centralized`` world is
    served with the ``distributed`` flavor (see the module docstring for
    why the centralized mode is not shardable) — the differential
    harness builds its single-process reference with the same flavor, so
    the comparison stays apples-to-apples.
    """
    flavor = "distributed" if world.mode == "centralized" else world.mode
    kwargs.setdefault("flavor", flavor)
    kwargs.setdefault("policy", world.policy)
    return ServiceSpec(
        source={"world": world.to_dict()}, shards=shards, **kwargs
    )  # type: ignore[arg-type]


def materialize(spec: ServiceSpec):
    """Build (dataset, graph, config) for one replica, deterministically.

    Every call produces *fresh* objects from the spec's seeds: two
    replicas built from the same spec start bit-identical and then evolve
    independently in their own processes.
    """
    if "world" in spec.source:
        from repro.verify.worlds import World, build_world

        built = build_world(World.from_dict(spec.source["world"]))
        dataset = MutablePointDataset.from_dataset(built.dataset)
        return dataset, built.graph, built.config
    params = spec.source["synthetic"]
    users = int(params["users"])
    seed = int(params["seed"])
    delta = float(params["delta"])
    max_peers = int(params["max_peers"])
    if params["kind"] == "california":
        from repro.datasets.california import california_like_poi

        base: PointDataset = california_like_poi(users, seed=seed)
    else:
        from repro.datasets.synthetic import uniform_points

        base = uniform_points(users, seed=seed)
    dataset = MutablePointDataset.from_dataset(base)
    from repro.graph.build import build_wpg_fast

    graph = build_wpg_fast(dataset, delta, max_peers)
    config = SimulationConfig(
        user_count=users,
        delta=delta,
        max_peers=max_peers,
        k=int(params["k"]),
    )
    return dataset, graph, config


def build_engine(spec: ServiceSpec) -> CloakingEngine:
    """One engine replica: what every shard worker (and the dispatcher's
    routing mirror, and the differential tests' reference) runs."""
    dataset, graph, config = materialize(spec)
    tuning = None
    if spec.tuning is not None:
        from repro.tuning.policy import TuningPolicy

        tuning = TuningPolicy.from_meta(spec.tuning)
    if spec.flavor == "tree":
        return CloakingEngine(
            dataset,
            graph,
            config,
            clustering="tree",
            policy=spec.policy,
            min_area=spec.min_area,
            tuning=tuning,
        )
    return CloakingEngine(
        dataset,
        graph,
        config,
        mode="distributed",
        policy=spec.policy,
        min_area=spec.min_area,
        tuning=tuning,
    )
