"""``python -m repro.service`` — run the sharded cloaking service.

Builds the population from a spec file or synthesis flags, forks the
shard workers, and serves the length-prefixed JSON wire protocol on a
TCP port until interrupted.  A quick session::

    python -m repro.service --users 10000 --shards 4 --port 9009

    # elsewhere, any language that can write 4-byte lengths:
    #   {"op": "request", "host": 42, "id": 1}
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import sys

from repro.service.dispatcher import CloakingService
from repro.service.frontend import ServiceFrontend
from repro.service.spec import ServiceSpec


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Sharded multi-core cloaking service.",
    )
    source = parser.add_argument_group("population (pick --spec or synthesis flags)")
    source.add_argument("--spec", help="path to a service-spec-v1 JSON file")
    source.add_argument("--users", type=int, default=10_000)
    source.add_argument("--seed", type=int, default=7)
    source.add_argument(
        "--kind", choices=("california", "uniform"), default="california"
    )
    source.add_argument("--delta", type=float, default=0.02)
    source.add_argument("--max-peers", type=int, default=10)
    source.add_argument("--k", type=int, default=5)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--queue", type=int, default=256, help="admission capacity")
    parser.add_argument("--flavor", choices=("distributed", "tree"), default="distributed")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9009)
    parser.add_argument(
        "--obs", action="store_true", help="enable fleet-wide observability"
    )
    return parser.parse_args(argv)


def _build_spec(args: argparse.Namespace) -> ServiceSpec:
    if args.spec:
        with open(args.spec, encoding="utf-8") as handle:
            return ServiceSpec.from_dict(json.load(handle))
    return ServiceSpec.synthetic(
        users=args.users,
        seed=args.seed,
        kind=args.kind,
        delta=args.delta,
        max_peers=args.max_peers,
        k=args.k,
        flavor=args.flavor,
        shards=args.shards,
        queue_capacity=args.queue,
        obs=args.obs,
    )


async def _serve(service: CloakingService, host: str, port: int) -> None:
    frontend = ServiceFrontend(service, host=host, port=port)
    bound_host, bound_port = await frontend.start()
    print(
        f"repro.service: {service.spec.shards} shard worker(s) up, "
        f"serving on {bound_host}:{bound_port}",
        flush=True,
    )
    try:
        await frontend.serve_forever()
    finally:
        await frontend.stop()


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)
    spec = _build_spec(args)
    print(
        f"repro.service: building {spec.shards}-shard world "
        f"({json.dumps(spec.source)[:120]})...",
        flush=True,
    )
    with CloakingService(spec) as service:
        with contextlib.suppress(KeyboardInterrupt, asyncio.CancelledError):
            asyncio.run(_serve(service, args.host, args.port))
        print("repro.service: draining in-flight requests and shutting down")
    return 0


if __name__ == "__main__":
    sys.exit(main())
