"""The shard worker: one process, one engine replica, one frame loop.

A worker owns the requests routed to it (by WPG component anchor, see
:mod:`repro.service.shards`) and answers each one by running its own
full :class:`~repro.cloaking.engine.CloakingEngine` replica.  Replicas
stay interchangeable through the churn barrier's state-sync ops:
``drain_state`` exports the clusters and cached regions this worker has
formed since the last sync, ``merge_state`` adopts every other worker's
exports, and only then does the ``churn`` op apply the move batch — so
after a component merge, whichever worker inherits the merged component
already holds both precursors' registrations.

The frame loop is deliberately hard to kill (``tests/test_service_protocol.py``):

* a frame body that is not valid JSON → typed error reply, keep serving;
* an oversized length declaration → typed error reply, discard exactly
  the declared bytes (:func:`repro.network.frames.discard_frame`), keep
  serving;
* a truncated frame or clean EOF → drain nothing, exit the loop cleanly;
* a cloaking *failure* (small component, exhausted graph) is not an
  error at all — it is a first-class per-host outcome with ``ok: false``.

:func:`outcome_of` is the canonical wire shape of one cloak answer; the
differential tests run the *same* function against a single-process
engine, so "bit-identical" is a dict comparison, not an interpretation.
Process-local cache identifiers (``cluster_id``) are deliberately
excluded — exposing them would make the shard count observable.
"""

from __future__ import annotations

import socket
import time
from typing import Iterable, Optional, Sequence

from repro import obs
from repro.cloaking.engine import CloakingEngine
from repro.errors import ReproError, ServiceError, WireFormatError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.network.frames import (
    DEFAULT_MAX_FRAME,
    FrameTooLarge,
    TruncatedFrame,
    discard_frame,
    read_frame,
    send_frame,
)
from repro.obs import names as metric
from repro.obs import trace as _trace
from repro.service.shards import ShardMap


def outcome_of(engine: CloakingEngine, host: int) -> dict:
    """One cloak request as its canonical, comparable wire dict.

    Success carries the region rectangle, the sorted cluster membership
    and every cost meter the paper's experiments read; failure carries
    the typed error.  Both shapes are JSON-round-trip-stable (Python
    serialises floats losslessly), which is what lets the differential
    harness demand bit-identity across shard counts.
    """
    try:
        result = engine.request(host)
    except ReproError as exc:
        return {
            "ok": False,
            "host": host,
            "error": {"type": type(exc).__name__, "message": str(exc)},
        }
    rect = result.region.rect
    return {
        "ok": True,
        "host": host,
        "rect": [rect.x_min, rect.x_max, rect.y_min, rect.y_max],
        "members": sorted(result.cluster.members),
        "anonymity": result.region.anonymity,
        "connectivity": result.cluster.connectivity,
        "involved": result.cluster.involved,
        "clustering_messages": result.clustering_messages,
        "bounding_messages": result.bounding_messages,
        "cluster_from_cache": result.cluster.from_cache,
        "region_from_cache": result.region_from_cache,
    }


def outcomes_of(engine: CloakingEngine, hosts: Iterable[int]) -> list[dict]:
    """A batch of :func:`outcome_of` answers, one per host, in order.

    Failures are isolated per host (the engine's native ``request_many``
    raises mid-batch; a service must answer every caller), and a batch
    is defined as exactly the sequence of its single requests — the
    property the equivalence tests pin down.
    """
    return [outcome_of(engine, host) for host in hosts]


class ShardServer:
    """The op handler behind one worker's frame loop.

    Kept separate from the process entry point so the protocol logic is
    unit-testable in-process: tests can drive ``handle`` with raw frame
    dicts and compare replies without forking.
    """

    def __init__(
        self,
        shard: int,
        engine: CloakingEngine,
        shard_map: ShardMap,
        owned: Iterable[int],
    ) -> None:
        self._shard = shard
        self._engine = engine
        self._map = shard_map
        self._owned = set(owned)
        # Sync watermarks: everything at or before these marks is known
        # to the whole fleet; drain_state exports only what came after.
        self._cluster_watermark = len(engine.clustering.registry)
        self._synced_regions = set(engine.cached_regions())
        self._busy_cpu = 0.0
        self._busy_wall = 0.0
        self._halo_refreshes = 0
        self._op_counts: dict[str, int] = {}

    @property
    def shard(self) -> int:
        """This worker's shard index."""
        return self._shard

    @property
    def engine(self) -> CloakingEngine:
        """The replica engine (tests inspect it directly)."""
        return self._engine

    def handle(self, frame: dict) -> tuple[dict, bool]:
        """Serve one frame; returns ``(reply, keep_serving)``.

        Ownership violations, unknown ops and mis-typed fields come back
        as ``status: "error"`` replies with the error's type name;
        cloaking failures come back as ``ok: false`` outcomes inside a
        ``status: "ok"`` reply.  Only ``shutdown`` flips the flag.
        """
        frame_id = frame.get("id")
        op = frame.get("op")
        started_cpu = time.process_time()
        started_wall = time.perf_counter()
        keep_serving = True
        with _trace.adopt_scope(frame.get("trace")):
            try:
                if not isinstance(op, str):
                    raise WireFormatError(
                        f"frame is missing a string 'op' field: {op!r}"
                    )
                handler = getattr(self, f"_op_{op}", None)
                if handler is None:
                    raise WireFormatError(f"unknown op {op!r}")
                with obs.span(metric.SPAN_WORKER_OP):
                    body = handler(frame)
                reply = {"id": frame_id, "status": "ok", **body}
                keep_serving = op != "shutdown"
            except ReproError as exc:
                reply = {
                    "id": frame_id,
                    "status": "error",
                    "error": {"type": type(exc).__name__, "message": str(exc)},
                }
        self._busy_cpu += time.process_time() - started_cpu
        self._busy_wall += time.perf_counter() - started_wall
        if isinstance(op, str):
            self._op_counts[op] = self._op_counts.get(op, 0) + 1
        if obs.enabled():
            obs.inc(metric.SERVICE_WORKER_FRAMES)
        return reply, keep_serving

    # -- serving ---------------------------------------------------------------

    def _require_host(self, frame: dict, field: str = "host") -> int:
        host = frame.get(field)
        if not isinstance(host, int) or isinstance(host, bool):
            raise WireFormatError(f"op {frame.get('op')!r} needs an int {field!r}")
        if host not in self._owned:
            raise ServiceError(
                f"host {host} is not owned by shard {self._shard} "
                "(stale routing table?)"
            )
        return host

    def _op_ping(self, frame: dict) -> dict:
        return {"shard": self._shard, "owned": len(self._owned)}

    def _op_request(self, frame: dict) -> dict:
        host = self._require_host(frame)
        if obs.enabled():
            obs.inc(metric.SERVICE_WORKER_REQUESTS)
        return {"outcome": outcome_of(self._engine, host)}

    def _op_request_many(self, frame: dict) -> dict:
        hosts = frame.get("hosts")
        if not isinstance(hosts, list):
            raise WireFormatError("op 'request_many' needs a 'hosts' list")
        checked = [self._require_host({"op": "request_many", "host": h}) for h in hosts]
        if obs.enabled():
            obs.inc(metric.SERVICE_WORKER_REQUESTS, len(checked))
        return {"outcomes": outcomes_of(self._engine, checked)}

    def _op_stall(self, frame: dict) -> dict:
        # Diagnostic: hold this worker busy so tests can fill the
        # admission queue deterministically and observe ServiceOverload.
        time.sleep(float(frame.get("seconds", 0.05)))
        return {"stalled": True}

    def _op_shutdown(self, frame: dict) -> dict:
        return {"shard": self._shard}

    # -- ownership -------------------------------------------------------------

    def _op_own(self, frame: dict) -> dict:
        grant = frame.get("grant", [])
        revoke = frame.get("revoke", [])
        if not isinstance(grant, list) or not isinstance(revoke, list):
            raise WireFormatError("op 'own' needs 'grant'/'revoke' lists")
        self._owned.difference_update(revoke)
        self._owned.update(grant)
        return {"owned": len(self._owned)}

    # -- the churn barrier -----------------------------------------------------

    def _op_drain_state(self, frame: dict) -> dict:
        registry = self._engine.clustering.registry
        clusters = [
            sorted(group) for group in registry.clusters(self._cluster_watermark)
        ]
        self._cluster_watermark = len(registry)
        regions = []
        for members, region in self._engine.cached_regions().items():
            if members in self._synced_regions:
                continue
            rect = region.rect
            regions.append(
                [
                    sorted(members),
                    [rect.x_min, rect.x_max, rect.y_min, rect.y_max],
                    region.anonymity,
                ]
            )
            self._synced_regions.add(members)
        # Live keys let the dispatcher retire regions churn invalidated:
        # its canonical map must mirror the fleet, not accumulate history.
        live = sorted(sorted(members) for members in self._engine.cached_regions())
        return {"clusters": clusters, "regions": regions, "live_regions": live}

    def _op_merge_state(self, frame: dict) -> dict:
        clusters = frame.get("clusters", [])
        regions = frame.get("regions", [])
        if not isinstance(clusters, list) or not isinstance(regions, list):
            raise WireFormatError("op 'merge_state' needs 'clusters'/'regions' lists")
        adopted_clusters = sum(
            self._engine.adopt_cluster(members) for members in clusters
        )
        self._cluster_watermark = len(self._engine.clustering.registry)
        adopted_regions = 0
        for members, rect, anonymity in regions:
            key = frozenset(members)
            adopted_regions += self._engine.adopt_region(
                key, Rect(*rect), int(anonymity)
            )
            self._synced_regions.add(key)
        return {"clusters": adopted_clusters, "regions": adopted_regions}

    def _op_churn(self, frame: dict) -> dict:
        moves = frame.get("moves")
        if not isinstance(moves, list):
            raise WireFormatError("op 'churn' needs a 'moves' list")
        halo = frame.get("halo", [])
        batch: list[tuple[int, Point]] = [
            (int(user), Point(float(x), float(y))) for user, x, y in moves
        ]
        self._engine.apply_moves(batch)
        # Invalidation may evict synced regions; forgetting them here is
        # what lets a later re-formation of the same cluster's region be
        # drained again instead of being mistaken for already-synced.
        self._synced_regions &= set(self._engine.cached_regions())
        self._halo_refreshes += len(halo)
        if obs.enabled() and halo:
            obs.inc(metric.SERVICE_HALO_REFRESHES, len(halo))
        return {"moved": len(batch), "halo": len(halo)}

    # -- introspection ---------------------------------------------------------

    def _op_graph_view(self, frame: dict) -> dict:
        """This shard's geometric view: owned-incident edges + halo check.

        "Owned" here is *geometric* (the slab), independent of component
        routing: the union of these edge sets over all shards must equal
        the full WPG edge set, and the δ-locality invariant says every
        other endpoint falls inside owned ∪ halo.  The soak test stitches
        the per-shard views back together and diffs against a
        from-scratch build.
        """
        points = self._engine.dataset.points
        edges: list[list] = []
        violations: list[list[int]] = []
        for edge in self._engine.graph.edges():
            u_owned = self._map.in_slab(self._shard, points[edge.u].x)
            v_owned = self._map.in_slab(self._shard, points[edge.v].x)
            if not (u_owned or v_owned):
                continue
            edges.append([edge.u, edge.v, edge.weight])
            if not (self._map.touches(self._shard, points[edge.u].x)
                    and self._map.touches(self._shard, points[edge.v].x)):
                violations.append([edge.u, edge.v])
        edges.sort()
        owned_users = [
            u for u in self._engine.graph.vertices()
            if self._map.in_slab(self._shard, points[u].x)
        ]
        return {
            "edges": edges,
            "geometric_owned": len(owned_users),
            "halo_ok": not violations,
            "violations": violations,
        }

    def _op_snapshot(self, frame: dict) -> dict:
        return {"snapshot": obs.snapshot() if obs.enabled() else None}

    def _op_stats(self, frame: dict) -> dict:
        registry = self._engine.clustering.registry
        return {
            "shard": self._shard,
            "owned": len(self._owned),
            "busy_cpu": self._busy_cpu,
            "busy_wall": self._busy_wall,
            "ops": dict(sorted(self._op_counts.items())),
            "halo_refreshes": self._halo_refreshes,
            "clusters": len(registry),
            "regions": self._engine.regions_cached,
        }

    def _op_reset_stats(self, frame: dict) -> dict:
        self._busy_cpu = 0.0
        self._busy_wall = 0.0
        self._op_counts = {}
        return {"reset": True}


def serve(
    sock: socket.socket,
    server: ShardServer,
    max_frame: int = DEFAULT_MAX_FRAME,
) -> None:
    """The worker's frame loop — malformed input never exits it.

    Exits on: a ``shutdown`` op (after acking it), clean EOF, a
    truncated frame, or a dead peer on send.  Everything else is a reply.
    """
    while True:
        try:
            frame = read_frame(sock, max_frame)
        except FrameTooLarge as exc:
            reply = {
                "id": None,
                "status": "error",
                "error": {"type": "FrameTooLarge", "message": str(exc)},
            }
            if obs.enabled():
                obs.inc(metric.SERVICE_WIRE_ERRORS)
            try:
                send_frame(sock, reply, max_frame)
                discard_frame(sock, exc.declared)
            except (TruncatedFrame, OSError):
                return
            continue
        except WireFormatError as exc:
            # TruncatedFrame means the peer died mid-frame: no resync
            # point exists, exit cleanly.  A bad body was fully consumed,
            # so the stream is still framed: reply and keep serving.
            if isinstance(exc, TruncatedFrame):
                return
            if obs.enabled():
                obs.inc(metric.SERVICE_WIRE_ERRORS)
            reply = {
                "id": None,
                "status": "error",
                "error": {"type": type(exc).__name__, "message": str(exc)},
            }
            try:
                send_frame(sock, reply, max_frame)
            except OSError:
                return
            continue
        except OSError:
            return
        if frame is None:
            return
        reply, keep_serving = server.handle(frame)
        try:
            send_frame(sock, reply, max_frame)
        except OSError:
            return
        if not keep_serving:
            return


def worker_main(
    sock: socket.socket,
    close_first: Sequence[socket.socket],
    shard: int,
    engine: CloakingEngine,
    shard_map: ShardMap,
    owned: Iterable[int],
    enable_obs: bool,
    max_frame: int = DEFAULT_MAX_FRAME,
) -> None:
    """Process entry point for one shard worker (``fork`` start method).

    The engine replica is inherited copy-on-write from the dispatcher's
    pre-fork build; ``close_first`` lists every inherited socket that
    belongs to other workers or to the dispatcher side of this pair —
    closing them immediately is what makes EOF detection work fleet-wide.
    Observability state is also inherited, so it is reset before serving:
    each worker reports a process-local snapshot the dispatcher merges.
    """
    for other in close_first:
        try:
            other.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
    obs.disable()
    obs.reset()
    _trace.reset_trace_context()
    if enable_obs:
        obs.enable()
    server = ShardServer(shard, engine, shard_map, owned)
    try:
        serve(sock, server, max_frame)
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass
