"""The weighted proximity graph (Section IV).

Vertices are users; an edge ``(u, v)`` records that the two devices are in
radio proximity, weighted by their *relative distance* — in the paper's
experiments, the mutual RSS rank.  The graph is undirected, simple, and
never stores coordinates: the whole point of the paper is that clustering
operates on proximity alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Iterable, Iterator

import numpy as np

from repro.errors import GraphError


@dataclass(frozen=True, slots=True)
class Edge:
    """An undirected weighted edge; ``u < v`` is normalised at creation."""

    u: int
    v: int
    weight: float

    @staticmethod
    def make(u: int, v: int, weight: float) -> "Edge":
        """Create an edge with endpoints normalised to ``u < v``."""
        if u == v:
            raise GraphError(f"self-loop on vertex {u}")
        if u > v:
            u, v = v, u
        return Edge(u, v, weight)

    def other(self, vertex: int) -> int:
        """The endpoint that is not ``vertex``."""
        if vertex == self.u:
            return self.v
        if vertex == self.v:
            return self.u
        raise GraphError(f"vertex {vertex} is not an endpoint of {self}")

    def key(self) -> tuple[int, int]:
        """The canonical ``(min, max)`` endpoint pair."""
        return (self.u, self.v)


class WeightedProximityGraph:
    """An undirected weighted simple graph with integer vertex ids.

    Mutation is limited to adding vertices/edges and removing edges; the
    clustering algorithms never mutate a shared graph — they work on
    restricted *views* (see :meth:`subgraph` and the ``exclude`` parameters
    of the traversal helpers in :mod:`repro.graph.components`).
    """

    def __init__(self) -> None:
        self._adj: dict[int, dict[int, float]] = {}
        # CSR edge columns from from_arrays, not yet boxed into dicts:
        # (per-vertex degrees, grouped targets, grouped weights).
        self._pending: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._edge_count = 0

    @property
    def _adjacency(self) -> dict[int, dict[int, float]]:
        if self._pending is not None:
            degrees, tgts, ws = self._pending
            self._pending = None
            # One C-level dict(zip(...)) per vertex; islice walks the
            # boxed lists without intermediate slice copies.
            it_t = iter(tgts.tolist())
            it_w = iter(ws.tolist())
            self._adj = {
                vertex: dict(zip(islice(it_t, deg), islice(it_w, deg)))
                for vertex, deg in enumerate(degrees.tolist())
            }
        return self._adj

    @_adjacency.setter
    def _adjacency(self, value: dict[int, dict[int, float]]) -> None:
        self._pending = None
        self._adj = value

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int, float]],
        vertices: Iterable[int] = (),
    ) -> "WeightedProximityGraph":
        """Build a graph from ``(u, v, weight)`` triples plus extra vertices."""
        graph = cls()
        for vertex in vertices:
            graph.add_vertex(vertex)
        for u, v, weight in edges:
            graph.add_edge(u, v, weight)
        return graph

    @classmethod
    def from_arrays(
        cls,
        vertex_count: int,
        us: Iterable[int],
        vs: Iterable[int],
        weights: Iterable[float],
    ) -> "WeightedProximityGraph":
        """Bulk-build a graph on vertices ``0..vertex_count-1`` from columns.

        The fast constructor behind the vectorized WPG build: edge lists
        arrive as parallel columns (numpy arrays or sequences), each
        undirected pair appearing exactly once.  Skips the per-edge
        duplicate checks of :meth:`add_edge` — callers must guarantee
        uniqueness and ``u != v``.

        The adjacency dicts are materialised lazily: construction does the
        numpy grouping only, and the per-edge boxing into Python dicts
        happens once, on first adjacency access.  Building a graph just to
        persist or count it never pays the boxing cost.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        weights = np.asarray(weights, dtype=float)
        if len(us):
            if bool(np.any(us == vs)):
                raise GraphError("self-loop in edge arrays")
            lo = min(int(us.min()), int(vs.min()))
            hi = max(int(us.max()), int(vs.max()))
            if lo < 0 or hi >= vertex_count:
                raise GraphError(
                    f"edge endpoint {lo if lo < 0 else hi} outside "
                    f"0..{vertex_count - 1}"
                )
        # Mirror into directed form and group by source vertex; the
        # grouped columns are boxed into dicts by the lazy _adjacency
        # property the first time anything reads the graph.
        srcs = np.concatenate((us, vs))
        tgts = np.concatenate((vs, us))
        both = np.concatenate((weights, weights))
        order = np.argsort(srcs, kind="stable")
        degrees = np.bincount(srcs, minlength=vertex_count)
        graph = cls()
        graph._pending = (degrees, tgts[order], both[order])
        graph._edge_count = len(us)
        return graph

    def add_vertex(self, vertex: int) -> None:
        """Add an isolated vertex (no-op if it already exists)."""
        self._adjacency.setdefault(vertex, {})

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add an undirected edge, creating endpoints as needed.

        Re-adding an existing edge with a different weight is an error —
        proximity is symmetric and "agreed by both u and v" (Section IV).
        """
        if u == v:
            raise GraphError(f"self-loop on vertex {u}")
        existing = self._adjacency.get(u, {}).get(v)
        if existing is not None:
            if existing != weight:
                raise GraphError(
                    f"edge ({u}, {v}) already has weight {existing}, got {weight}"
                )
            return
        self._adjacency.setdefault(u, {})[v] = weight
        self._adjacency.setdefault(v, {})[u] = weight
        self._edge_count += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the edge ``(u, v)``; missing edges raise :class:`GraphError`."""
        try:
            del self._adjacency[u][v]
            del self._adjacency[v][u]
        except KeyError as exc:
            raise GraphError(f"no edge ({u}, {v})") from exc
        self._edge_count -= 1

    # -- inspection -------------------------------------------------------------

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._adjacency

    def __len__(self) -> int:
        if self._pending is not None:
            # from_arrays graphs are dense on 0..n-1; counting them must
            # not force the per-edge dict boxing.
            return len(self._pending[0])
        return len(self._adj)

    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return self._edge_count

    def vertices(self) -> Iterator[int]:
        """Iterate all vertex ids."""
        return iter(self._adjacency)

    def edges(self) -> Iterator[Edge]:
        """All edges, each reported once with ``u < v``."""
        for u, neighbors in self._adjacency.items():
            for v, weight in neighbors.items():
                if u < v:
                    yield Edge(u, v, weight)

    def has_edge(self, u: int, v: int) -> bool:
        """True if the edge ``(u, v)`` exists."""
        return v in self._adjacency.get(u, {})

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``; missing edges raise :class:`GraphError`."""
        try:
            return self._adjacency[u][v]
        except KeyError as exc:
            raise GraphError(f"no edge ({u}, {v})") from exc

    def neighbors(self, vertex: int) -> Iterator[int]:
        """Neighbors of ``vertex``; unknown vertices raise :class:`GraphError`."""
        try:
            return iter(self._adjacency[vertex])
        except KeyError as exc:
            raise GraphError(f"unknown vertex {vertex}") from exc

    def neighbor_weights(self, vertex: int) -> Iterator[tuple[int, float]]:
        """``(neighbor, weight)`` pairs for ``vertex``."""
        try:
            return iter(self._adjacency[vertex].items())
        except KeyError as exc:
            raise GraphError(f"unknown vertex {vertex}") from exc

    def degree(self, vertex: int) -> int:
        """Number of neighbors of ``vertex``."""
        try:
            return len(self._adjacency[vertex])
        except KeyError as exc:
            raise GraphError(f"unknown vertex {vertex}") from exc

    def adjacency_message(self, vertex: int) -> dict[int, float]:
        """The single message a user sends when involved in clustering.

        Section VI: "only a single message containing the adjacent vertices
        as well as the edge weights is sent to the host vertex".  The copy
        keeps callers from mutating graph internals.
        """
        return dict(self._adjacency.get(vertex, {}))

    # -- derived graphs ---------------------------------------------------------

    def subgraph(self, vertices: Iterable[int]) -> "WeightedProximityGraph":
        """The induced subgraph on ``vertices``."""
        keep = set(vertices)
        unknown = keep - self._adjacency.keys()
        if unknown:
            raise GraphError(f"unknown vertices: {sorted(unknown)[:5]}")
        sub = WeightedProximityGraph()
        for vertex in keep:
            sub.add_vertex(vertex)
        for u in keep:
            for v, weight in self._adjacency[u].items():
                if v in keep and u < v:
                    sub.add_edge(u, v, weight)
        return sub

    def copy(self) -> "WeightedProximityGraph":
        """A deep copy of this graph."""
        clone = WeightedProximityGraph()
        clone._adjacency = {u: dict(nbrs) for u, nbrs in self._adjacency.items()}
        clone._edge_count = self._edge_count
        return clone
