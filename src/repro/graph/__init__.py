"""The weighted proximity graph (WPG) and supporting graph machinery."""

from repro.graph.wpg import Edge, WeightedProximityGraph
from repro.graph.build import build_wpg, build_wpg_fast
from repro.graph.incremental import ChurnPatch, IncrementalWPG
from repro.graph.unionfind import UnionFind
from repro.graph.dendrogram import DendrogramNode, single_linkage_dendrogram
from repro.graph.components import (
    connected_component,
    connected_components,
    external_border,
    is_connected,
    t_connected,
    t_component,
)
from repro.graph.dendrogram import cut_smallest_valid
from repro.graph.io import (
    graph_from_arrays,
    graph_to_arrays,
    load_wpg,
    save_wpg,
)
from repro.graph.metrics import (
    average_degree,
    graph_diameter,
    max_edge_weight,
    regular_graph_diameter_bound,
)

__all__ = [
    "ChurnPatch",
    "DendrogramNode",
    "Edge",
    "IncrementalWPG",
    "UnionFind",
    "WeightedProximityGraph",
    "average_degree",
    "build_wpg",
    "build_wpg_fast",
    "connected_component",
    "connected_components",
    "cut_smallest_valid",
    "external_border",
    "graph_diameter",
    "graph_from_arrays",
    "graph_to_arrays",
    "is_connected",
    "load_wpg",
    "max_edge_weight",
    "regular_graph_diameter_bound",
    "save_wpg",
    "single_linkage_dendrogram",
    "t_component",
    "t_connected",
]
