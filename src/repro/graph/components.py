"""Connectivity and t-reachability traversals over the WPG.

Definition 4.1 of the paper: vertices ``a`` and ``b`` are *t-connected* if
some path between them uses no edge heavier than ``t``.  Theorem 4.3 shows
this is an equivalence relation; its classes are the connected components
of the subgraph keeping only edges of weight <= t.  These helpers compute
those classes without materialising the filtered graph.

All traversals accept an ``exclude`` set: the distributed algorithm
constantly asks "what is v's t-component in the *remaining* WPG", i.e. the
graph minus already-clustered vertices.  They also accept an optional
``spy`` callback receiving every vertex whose adjacency list the traversal
consults — the experiment harness uses it to count involved users.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Container, Iterable, Optional

from repro.errors import GraphError
from repro.graph.wpg import WeightedProximityGraph

_EMPTY: frozenset[int] = frozenset()


def connected_component(
    graph: WeightedProximityGraph,
    start: int,
    exclude: Container[int] = _EMPTY,
    spy: Optional[Callable[[int], None]] = None,
) -> set[int]:
    """The connected component of ``start`` in ``graph`` minus ``exclude``."""
    return t_component(graph, start, t=float("inf"), exclude=exclude, spy=spy)


def t_component(
    graph: WeightedProximityGraph,
    start: int,
    t: float,
    exclude: Container[int] = _EMPTY,
    spy: Optional[Callable[[int], None]] = None,
    size_limit: Optional[int] = None,
) -> set[int]:
    """The t-connectivity equivalence class of ``start``.

    BFS over edges of weight <= ``t``, never entering ``exclude``.  When
    ``size_limit`` is given the search stops as soon as the component is
    known to have at least that many vertices — the distributed border
    check (Algorithm 2, line 11) only needs "size >= k", not the full
    component.
    """
    if start in exclude:
        raise GraphError(f"start vertex {start} is excluded")
    component = {start}
    queue: deque[int] = deque([start])
    while queue:
        if size_limit is not None and len(component) >= size_limit:
            return component
        vertex = queue.popleft()
        if spy is not None:
            spy(vertex)
        # Sorted expansion keeps the visit order — and therefore the
        # involved-user accounting under size_limit early exit —
        # independent of the graph's internal adjacency ordering (a
        # reloaded WPG must measure identically to a freshly built one).
        for neighbor, weight in sorted(graph.neighbor_weights(vertex)):
            if weight <= t and neighbor not in component and neighbor not in exclude:
                component.add(neighbor)
                queue.append(neighbor)
    return component


def t_connected(
    graph: WeightedProximityGraph,
    a: int,
    b: int,
    t: float,
    exclude: Container[int] = _EMPTY,
) -> bool:
    """Definition 4.1: is there an a-b path with all weights <= t?"""
    if a == b:
        return True  # reflexivity: the empty path
    component = {a}
    queue: deque[int] = deque([a])
    while queue:
        vertex = queue.popleft()
        for neighbor, weight in graph.neighbor_weights(vertex):
            if weight > t or neighbor in component or neighbor in exclude:
                continue
            if neighbor == b:
                return True
            component.add(neighbor)
            queue.append(neighbor)
    return False


def connected_components(
    graph: WeightedProximityGraph,
    vertices: Optional[Iterable[int]] = None,
    exclude: Container[int] = _EMPTY,
) -> list[set[int]]:
    """All connected components of ``graph`` (optionally restricted)."""
    pool = list(vertices) if vertices is not None else list(graph.vertices())
    seen: set[int] = set()
    components: list[set[int]] = []
    for vertex in pool:
        if vertex in seen or vertex in exclude:
            continue
        component = connected_component(graph, vertex, exclude=exclude)
        seen |= component
        components.append(component)
    return components


def is_connected(graph: WeightedProximityGraph) -> bool:
    """True if ``graph`` is non-empty and has a single component."""
    first = next(graph.vertices(), None)
    if first is None:
        return False
    return len(connected_component(graph, first)) == graph.vertex_count


def external_border(
    graph: WeightedProximityGraph, cluster: Container[int], members: Iterable[int]
) -> set[int]:
    """Theorem 4.4's external border: vertices adjacent to but outside a cluster.

    ``members`` enumerates the cluster (``cluster`` may be any container
    supporting fast membership).
    """
    border: set[int] = set()
    for vertex in members:
        for neighbor in graph.neighbors(vertex):
            if neighbor not in cluster:
                border.add(neighbor)
    return border
