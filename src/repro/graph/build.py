"""Building the WPG from a user population (Section VI's construction).

The paper's recipe:

1. Each user connects to peers within the distance threshold ``delta``,
   capped at the ``M`` nearest (devices have limited resources; M controls
   the WPG density).
2. Each user ranks its connected peers by RSS, strongest (closest) first.
3. The weight of edge ``(a, b)`` is the *minimum* of a's rank in b's list
   and b's rank in a's list, making the weight symmetric ("to ensure a and
   b are reversible").

An edge therefore exists when at least one endpoint selected the other as
one of its M nearest peers; the mutual-rank minimum is well defined either
way because ranks are computed over the radio neighbourhood.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.config import SimulationConfig
from repro.datasets.base import PointDataset
from repro.errors import ConfigurationError
from repro.graph.wpg import WeightedProximityGraph
from repro.obs import names as metric
from repro.radio.measurement import ProximityMeter
from repro.spatial.neighbors import NeighborFinder


def _record_build(graph: WeightedProximityGraph) -> None:
    """Report one finished WPG construction into the registry."""
    obs.inc(metric.WPG_BUILDS)
    obs.set_gauge(metric.WPG_VERTICES, graph.vertex_count)
    obs.set_gauge(metric.WPG_EDGES, graph.edge_count)


def build_wpg(
    dataset: PointDataset,
    delta: float,
    max_peers: int,
    meter: ProximityMeter | None = None,
    finder: NeighborFinder | None = None,
) -> WeightedProximityGraph:
    """Construct the weighted proximity graph of ``dataset``.

    Parameters
    ----------
    dataset:
        User positions; vertex ids are dataset indexes.
    delta:
        Communication range (Table I default 2e-3).
    max_peers:
        Device connection cap M (Table I default 10).
    meter:
        Proximity measurement; defaults to the ideal RSS model, i.e.
        rankings equal distance rankings.  Pass a noisy meter for
        robustness experiments.
    finder:
        Spatial index facade; built over ``dataset`` with cell size
        ``delta`` when omitted.
    """
    if delta <= 0:
        raise ConfigurationError(f"delta must be positive, got {delta}")
    if max_peers < 1:
        raise ConfigurationError(f"max_peers must be >= 1, got {max_peers}")
    if meter is None:
        meter = ProximityMeter(dataset)
    if finder is None:
        finder = NeighborFinder(dataset, kind="grid", cell_size=delta)

    with obs.span(metric.SPAN_BUILD_SCALAR):
        graph = WeightedProximityGraph()
        # Each user's connected peer list: the M nearest within delta, in
        # the meter's closeness order (rank 1 first).
        peer_lists: list[list[int]] = []
        for user in range(len(dataset)):
            graph.add_vertex(user)
            nearby = finder.peers_in_range(user, delta)
            ranked = meter.rank_peers(user, nearby)
            peer_lists.append(ranked[:max_peers])

        # Mutual-rank edge weights.  rank_of[u][v] = v's 1-based rank in
        # u's list.
        rank_of: list[dict[int, int]] = [
            {peer: rank for rank, peer in enumerate(peers, start=1)}
            for peers in peer_lists
        ]
        for user, peers in enumerate(peer_lists):
            for rank, peer in enumerate(peers, start=1):
                if graph.has_edge(user, peer):
                    continue
                back_rank = rank_of[peer].get(user)
                weight = rank if back_rank is None else min(rank, back_rank)
                graph.add_edge(user, peer, float(weight))
    if obs.enabled():
        _record_build(graph)
    return graph


def build_wpg_fast(
    dataset: PointDataset,
    delta: float,
    max_peers: int,
    meter: ProximityMeter | None = None,
    finder: NeighborFinder | None = None,
    validate: bool = False,
) -> WeightedProximityGraph:
    """Vectorized :func:`build_wpg`: the same WPG from numpy array passes.

    The scalar builder runs one grid query and one ranking sort per user;
    at production populations that Python-level loop dominates the wall
    clock of every re-cloaking cycle.  This path assembles the identical
    graph from four vectorized stages:

    1. ``GridIndex.batch_query_radius`` — every user's delta-neighborhood
       in one cell-bucket sweep (CSR arrays).
    2. ``ProximityMeter.rank_all`` — every neighborhood ranked in one
       ``lexsort`` (noisy meters consume their RNG stream in the same
       pair order as the scalar path, keeping rankings bit-identical).
    3. Peer-cap truncation and mutual-rank reduction over the directed
       pair arrays (``min`` per canonical edge).
    4. ``WeightedProximityGraph.from_arrays`` bulk graph assembly.

    Parameters mirror :func:`build_wpg`; ``finder`` must be grid-backed
    (the default) — only the grid supports the batch sweep.
    With ``validate=True`` the scalar builder runs too and the two graphs
    are cross-checked for vertex/edge/weight equality (raises
    :class:`ConfigurationError` on any divergence) — the belt-and-braces
    mode for new indexes.  Validation requires a stateless meter (the
    default ideal model qualifies): a shadowing RNG would be consumed by
    the first build and produce different readings on the second.
    """
    if delta <= 0:
        raise ConfigurationError(f"delta must be positive, got {delta}")
    if max_peers < 1:
        raise ConfigurationError(f"max_peers must be >= 1, got {max_peers}")
    if meter is None:
        meter = ProximityMeter(dataset)
    if finder is None:
        finder = NeighborFinder(dataset, kind="grid", cell_size=delta)
    n = len(dataset)

    with obs.span(metric.SPAN_BUILD_FAST):
        # Stage 1: all delta-neighborhoods at once (self already excluded).
        indptr, nbrs = finder.batch_peers_in_range(delta)
        counts = np.diff(indptr)
        users = np.repeat(np.arange(n, dtype=np.int64), counts)

        # Stage 2: rank every neighborhood (closest first, ties by id).
        ranked = meter.rank_all(indptr, nbrs)

        # Stages 3-4: peer-cap truncation, mutual-rank reduction, bulk
        # assembly — shared with the incremental maintainer.
        u, v, ranks = directed_picks(users, indptr, ranked, max_peers)
        us, vs, weights = mutual_rank_edges(n, u, v, ranks)
        graph = WeightedProximityGraph.from_arrays(n, us, vs, weights)
    if obs.enabled():
        _record_build(graph)

    if validate:
        _check_equal(graph, build_wpg(dataset, delta, max_peers, meter=meter))
    return graph


def directed_picks(
    users: np.ndarray, indptr: np.ndarray, ranked: np.ndarray, max_peers: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Each user's directed peer picks: ``(users, peers, 1-based ranks)``.

    ``ranked`` is the CSR-concatenated closest-first neighborhoods
    (:meth:`~repro.radio.measurement.ProximityMeter.rank_all` output) and
    ``users`` the matching per-entry segment owner; only the first
    ``max_peers`` entries of each segment survive — the device cap M.
    """
    counts = np.diff(indptr)
    positions = np.arange(len(ranked), dtype=np.int64) - np.repeat(
        indptr[:-1], counts
    )
    kept = positions < max_peers
    return users[kept], ranked[kept], (positions[kept] + 1).astype(float)


def mutual_rank_edges(
    n: int, u: np.ndarray, v: np.ndarray, ranks: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mutual-rank reduction: directed picks to undirected edge columns.

    Groups the directed picks by canonical pair and takes the minimum
    rank — the rank alone when only one side picked.  Returns the
    ``(us, vs, weights)`` columns
    :meth:`~repro.graph.wpg.WeightedProximityGraph.from_arrays` consumes.
    """
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    keys = lo * np.int64(n) + hi
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    ranks_sorted = ranks[order]
    if len(keys_sorted) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, np.zeros(0, dtype=float)
    starts = np.flatnonzero(
        np.concatenate(([True], keys_sorted[1:] != keys_sorted[:-1]))
    )
    weights = np.minimum.reduceat(ranks_sorted, starts)
    pair_keys = keys_sorted[starts]
    return pair_keys // n, pair_keys % n, weights


def _check_equal(
    fast: WeightedProximityGraph, scalar: WeightedProximityGraph
) -> None:
    """Raise unless the two graphs have identical vertices, edges, weights."""
    if set(fast.vertices()) != set(scalar.vertices()):
        raise ConfigurationError(
            "fast/scalar WPG construction disagree on the vertex set"
        )
    fast_edges = {e.key(): e.weight for e in fast.edges()}
    scalar_edges = {e.key(): e.weight for e in scalar.edges()}
    if fast_edges != scalar_edges:
        diff = set(fast_edges.items()) ^ set(scalar_edges.items())
        raise ConfigurationError(
            f"fast/scalar WPG construction disagree on {len(diff)} edge entries"
        )


def build_wpg_from_config(
    dataset: PointDataset, config: SimulationConfig
) -> WeightedProximityGraph:
    """Convenience wrapper: build with a config's ``delta`` and ``max_peers``."""
    return build_wpg(dataset, delta=config.delta, max_peers=config.max_peers)
