"""Building the WPG from a user population (Section VI's construction).

The paper's recipe:

1. Each user connects to peers within the distance threshold ``delta``,
   capped at the ``M`` nearest (devices have limited resources; M controls
   the WPG density).
2. Each user ranks its connected peers by RSS, strongest (closest) first.
3. The weight of edge ``(a, b)`` is the *minimum* of a's rank in b's list
   and b's rank in a's list, making the weight symmetric ("to ensure a and
   b are reversible").

An edge therefore exists when at least one endpoint selected the other as
one of its M nearest peers; the mutual-rank minimum is well defined either
way because ranks are computed over the radio neighbourhood.
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.datasets.base import PointDataset
from repro.errors import ConfigurationError
from repro.graph.wpg import WeightedProximityGraph
from repro.radio.measurement import ProximityMeter
from repro.spatial.neighbors import NeighborFinder


def build_wpg(
    dataset: PointDataset,
    delta: float,
    max_peers: int,
    meter: ProximityMeter | None = None,
    finder: NeighborFinder | None = None,
) -> WeightedProximityGraph:
    """Construct the weighted proximity graph of ``dataset``.

    Parameters
    ----------
    dataset:
        User positions; vertex ids are dataset indexes.
    delta:
        Communication range (Table I default 2e-3).
    max_peers:
        Device connection cap M (Table I default 10).
    meter:
        Proximity measurement; defaults to the ideal RSS model, i.e.
        rankings equal distance rankings.  Pass a noisy meter for
        robustness experiments.
    finder:
        Spatial index facade; built over ``dataset`` with cell size
        ``delta`` when omitted.
    """
    if delta <= 0:
        raise ConfigurationError(f"delta must be positive, got {delta}")
    if max_peers < 1:
        raise ConfigurationError(f"max_peers must be >= 1, got {max_peers}")
    if meter is None:
        meter = ProximityMeter(dataset)
    if finder is None:
        finder = NeighborFinder(dataset, kind="grid", cell_size=delta)

    graph = WeightedProximityGraph()
    # Each user's connected peer list: the M nearest within delta, in the
    # meter's closeness order (rank 1 first).
    peer_lists: list[list[int]] = []
    for user in range(len(dataset)):
        graph.add_vertex(user)
        nearby = finder.peers_in_range(user, delta)
        ranked = meter.rank_peers(user, nearby)
        peer_lists.append(ranked[:max_peers])

    # Mutual-rank edge weights.  rank_of[u][v] = v's 1-based rank in u's list.
    rank_of: list[dict[int, int]] = [
        {peer: rank for rank, peer in enumerate(peers, start=1)}
        for peers in peer_lists
    ]
    for user, peers in enumerate(peer_lists):
        for rank, peer in enumerate(peers, start=1):
            if graph.has_edge(user, peer):
                continue
            back_rank = rank_of[peer].get(user)
            weight = rank if back_rank is None else min(rank, back_rank)
            graph.add_edge(user, peer, float(weight))
    return graph


def build_wpg_from_config(
    dataset: PointDataset, config: SimulationConfig
) -> WeightedProximityGraph:
    """Convenience wrapper: build with a config's ``delta`` and ``max_peers``."""
    return build_wpg(dataset, delta=config.delta, max_peers=config.max_peers)
