"""Disjoint-set forest with union by size and path compression."""

from __future__ import annotations

from typing import Hashable, Iterable, TypeVar

T = TypeVar("T", bound=Hashable)


class UnionFind:
    """A disjoint-set forest over arbitrary hashable elements.

    Elements are created lazily on first touch.  ``union`` returns whether
    a merge actually happened, which the Kruskal-style dendrogram builder
    uses to detect component merges.
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        for element in elements:
            self.add(element)

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def add(self, element: Hashable) -> None:
        """Register ``element`` as a singleton set (no-op if known)."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1

    def find(self, element: Hashable) -> Hashable:
        """The canonical representative of ``element``'s set."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True if ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def component_size(self, element: Hashable) -> int:
        """Size of the set containing ``element``."""
        return self._size[self.find(element)]

    def components(self) -> dict[Hashable, list[Hashable]]:
        """All sets, keyed by representative."""
        groups: dict[Hashable, list[Hashable]] = {}
        for element in self._parent:
            groups.setdefault(self.find(element), []).append(element)
        return groups
