"""Persistent bottleneck cluster tree over the WPG.

The single-linkage dendrogram (:mod:`repro.graph.dendrogram`) answers
every t-connectivity question Algorithms 1/2 ask — but as built it is a
throwaway object: pointer-chasing nodes without parent links, traversed
from the root for every query and rebuilt from scratch per request.
:class:`ClusterTree` is the persistent, query-oriented form:

* one array-backed tree per connected component (parent/weight/size per
  node, children in visit order, leaves as a contiguous slice of a
  DFS-ordered vertex array), so a vertex's ancestor path is an O(depth)
  walk — and depth is bounded by the number of distinct weight levels,
  which mutual-rank WPG weights cap at ``max_peers``;
* per-vertex *minimum-MEW k-cluster* lookup
  (:meth:`smallest_valid_cluster`): the lowest ancestor with >= k
  leaves.  By the minimax-path property this is exactly the level-scan
  cluster of :func:`repro.verify.oracles.oracle_smallest_cluster` and
  the set Algorithm 2's step 1 gathers under t-reachability closure;
* memoized strict/greedy partitions (Algorithm 1) and per-node step-3
  partitions, computed natively on the tree: a strict cut below a node
  is a subtree descent (the node is a t-component, so its subtree *is*
  the dendrogram of its induced subgraph), and the greedy refinement
  runs over the persistent *constrained Kruskal forest* instead of the
  full induced subgraph — reverse-delete discards every non-forest edge
  as a non-bridge before making any keep/split decision, so restricting
  the pass to the forest is decision-for-decision identical (see
  :meth:`node_partition`);
* exact Property 4.1 *isolation bits* (:meth:`is_isolated`): a
  >=k-node C is isolated iff at every proper ancestor all off-path
  sibling subtrees have >= k leaves — then no outside vertex resolves
  through an ancestor of C, so removing C changes nobody's smallest
  valid cluster (cross-validated against
  :func:`~repro.verify.oracles.oracle_isolation_violations`);
* *marked leaves* bookkeeping (:meth:`mark` / :meth:`marked_below`):
  callers flag assigned users so a lookup can prove, in O(1) per node,
  that a resolved cluster is untouched by registry exclusions and the
  assignment-oblivious tree answer is exact;
* incremental maintenance under churn (:meth:`apply_patch`): only the
  components incident to a patch's changed edges are re-derived (plus
  the components they merge into, discovered by a closure walk over the
  patched graph); every other component tree, with all its memos,
  survives.  After the call the tree is bit-identical to a fresh build
  over the patched graph — the ``cluster-tree-equal`` fuzz invariant
  checks exactly that.

Node handles are ``(component id, node index)`` pairs; they are
invalidated for rebuilt components by :meth:`apply_patch` (their
component id disappears), never silently reused.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.errors import ConfigurationError, GraphError
from repro.graph.dendrogram import DendrogramNode, single_linkage_dendrogram
from repro.graph.unionfind import UnionFind
from repro.graph.wpg import WeightedProximityGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.graph.incremental import ChurnPatch

#: A node handle: (component id, node index within that component's tree).
NodeRef = tuple[int, int]


def _is_cut(
    x: int, y: int, parent: dict[int, int], tops: set[int]
) -> bool:
    """Whether tree edge (x, y) has been cut (its child endpoint is a top)."""
    return (parent[y] == x and y in tops) or (parent[x] == y and x in tops)


class _ComponentTree:
    """The array form of one component's dendrogram (internal).

    Nodes are stored in DFS preorder, so every node's leaves occupy the
    contiguous slice ``leaf_order[leaf_lo[i]:leaf_hi[i]]``.  Parent
    weights strictly increase along every root path (the dendrogram's
    level flattening), which the ancestor walks rely on.
    """

    __slots__ = (
        "parent",
        "weight",
        "size",
        "children",
        "leaf_lo",
        "leaf_hi",
        "leaf_order",
        "leaf_node",
        "marked_below",
        "cut_memo",
        "anc_ok_memo",
        "partition_memo",
        "refine_memo",
    )

    def __init__(self, root: DendrogramNode) -> None:
        self.parent: list[int] = []
        self.weight: list[float] = []
        self.size: list[int] = []
        self.children: list[list[int]] = []
        self.leaf_lo: list[int] = []
        self.leaf_hi: list[int] = []
        self.leaf_order: list[int] = []
        self.leaf_node: dict[int, int] = {}
        stack: list[tuple[DendrogramNode, int]] = [(root, -1)]
        while stack:
            dnode, par = stack.pop()
            index = len(self.parent)
            self.parent.append(par)
            self.weight.append(dnode.merge_weight)
            self.size.append(dnode.size)
            # Preorder: every leaf preceding this subtree is already
            # emitted, and the subtree will emit exactly ``size`` more.
            lo = len(self.leaf_order)
            self.leaf_lo.append(lo)
            self.leaf_hi.append(lo + dnode.size)
            self.children.append([])
            if par >= 0:
                self.children[par].append(index)
            if dnode.vertex is not None:
                self.leaf_order.append(dnode.vertex)
                self.leaf_node[dnode.vertex] = index
            else:
                for child in reversed(dnode.children):
                    stack.append((child, index))
        self.marked_below: list[int] = [0] * len(self.parent)
        #: k -> node indices of the strict Algorithm 1 cut.
        self.cut_memo: dict[int, list[int]] = {}
        #: k -> per-node "every ancestor's off-path siblings are >= k".
        self.anc_ok_memo: dict[int, list[bool]] = {}
        #: (node, k, method) -> step-3 partition clusters, in order.
        self.partition_memo: dict[
            tuple[int, int, str], tuple[frozenset[int], ...]
        ] = {}
        #: (cut-piece node, k) -> its greedy refinement, in order.  Cut
        #: pieces are tree nodes shared by every ancestor's partition,
        #: so this memo dedupes across overlapping node partitions.
        self.refine_memo: dict[tuple[int, int], tuple[frozenset[int], ...]] = {}

    @classmethod
    def _from_arrays(
        cls,
        parent: list[int],
        weight: list[float],
        size: list[int],
        leaf_lo: list[int],
        leaf_order: list[int],
    ) -> "_ComponentTree":
        """Rebuild a component tree from its persisted preorder arrays.

        Only the five stored columns are primary; everything else is
        re-derived from the preorder layout: children are the nodes
        naming ``i`` as parent in ascending index (the append order of
        ``__init__``), ``leaf_hi = leaf_lo + size``, and the j-th
        childless node in preorder owns ``leaf_order[j]`` (leaves are
        emitted in preorder).  Memos start empty — they are caches — and
        marked counters start at zero for the caller to re-derive.
        """
        tree = cls.__new__(cls)
        tree.parent = list(parent)
        tree.weight = list(weight)
        tree.size = list(size)
        tree.leaf_lo = list(leaf_lo)
        tree.leaf_hi = [lo + sz for lo, sz in zip(leaf_lo, size)]
        tree.leaf_order = list(leaf_order)
        tree.children = [[] for _ in tree.parent]
        for index, par in enumerate(tree.parent):
            if par >= 0:
                tree.children[par].append(index)
        tree.leaf_node = {}
        position = 0
        for index, kids in enumerate(tree.children):
            if not kids:
                tree.leaf_node[tree.leaf_order[position]] = index
                position += 1
        tree.marked_below = [0] * len(tree.parent)
        tree.cut_memo = {}
        tree.anc_ok_memo = {}
        tree.partition_memo = {}
        tree.refine_memo = {}
        return tree

    def leaves(self, index: int) -> list[int]:
        return self.leaf_order[self.leaf_lo[index] : self.leaf_hi[index]]

    def strict_cut(self, k: int) -> list[int]:
        """Node indices of the strict partition (memoized per k)."""
        memo = self.cut_memo.get(k)
        if memo is not None:
            return memo
        cut = self.strict_cut_below(0, k)
        self.cut_memo[k] = cut
        return cut

    def strict_cut_below(self, index: int, k: int) -> list[int]:
        """Strict-cut node indices of the subtree rooted at ``index``.

        The same stack mechanics — and therefore the same output order —
        as :func:`repro.graph.dendrogram.cut_smallest_valid` applied to
        the node's induced subgraph.
        """
        cut: list[int] = []
        stack = [index]
        while stack:
            node = stack.pop()
            kids = self.children[node]
            if not kids or any(self.size[c] < k for c in kids):
                cut.append(node)
            else:
                stack.extend(kids)
        return cut

    def anc_ok(self, k: int) -> list[bool]:
        """Per-node Property 4.1 bit (memoized per k): see ClusterTree."""
        memo = self.anc_ok_memo.get(k)
        if memo is not None:
            return memo
        ok = [False] * len(self.parent)
        ok[0] = True  # the root has no proper ancestors
        stack = [0]
        while stack:
            index = stack.pop()
            kids = self.children[index]
            if not kids:
                continue
            below_k = [c for c in kids if self.size[c] < k]
            for child in kids:
                off_path_ok = not below_k or (
                    len(below_k) == 1 and below_k[0] == child
                )
                ok[child] = ok[index] and off_path_ok
            stack.extend(kids)
        self.anc_ok_memo[k] = ok
        return ok


class ClusterTree:
    """Bottleneck cluster tree of ``graph`` (see module docstring).

    The tree keeps a reference to ``graph`` — the same live object the
    engine patches in place under churn — and uses it only for the
    memoized per-node partitions and for :meth:`apply_patch`'s closure
    walk, never for per-vertex lookups.
    """

    def __init__(self, graph: WeightedProximityGraph) -> None:
        self._graph = graph
        self._components: dict[int, _ComponentTree] = {}
        self._component_of: dict[int, int] = {}
        self._next_id = 0
        self._marked: set[int] = set()
        self._forest_adj: dict[int, list[tuple[int, float]]] = {}
        for root in single_linkage_dendrogram(graph):
            self._adopt(_ComponentTree(root))
        self._rebuild_forest(graph)

    def _adopt(self, tree: _ComponentTree) -> None:
        comp_id = self._next_id
        self._next_id += 1
        self._components[comp_id] = tree
        for vertex in tree.leaf_order:
            self._component_of[vertex] = comp_id

    def _rebuild_forest(self, scope_graph: WeightedProximityGraph) -> None:
        """(Re)compute the constrained Kruskal forest over ``scope_graph``.

        Edges are scanned ascending by weight with the *descending*
        ``(u, v)`` key as tie-break — the exact reverse of the greedy
        removal order (descending weight, ascending key) — and accepted
        when they join two sets.  An edge is therefore in the forest iff
        no cycle through it survives on edges strictly later in removal
        order, which is the certificate :meth:`node_partition` needs.
        The forest never crosses components, so rebuilding a patch scope
        leaves every other component's entries exact.
        """
        for vertex in scope_graph.vertices():
            self._forest_adj[vertex] = []
        forest = UnionFind(scope_graph.vertices())
        edges = sorted(
            scope_graph.edges(),
            key=lambda edge: (edge.weight, -edge.u, -edge.v),
        )
        for edge in edges:
            if forest.find(edge.u) != forest.find(edge.v):
                forest.union(edge.u, edge.v)
                self._forest_adj[edge.u].append((edge.v, edge.weight))
                self._forest_adj[edge.v].append((edge.u, edge.weight))

    def _forest_refine(self, leaves: list[int], k: int) -> list[set[int]]:
        """Greedy refinement of a tree node's leaves over its forest slice.

        Every node is a t-component, so all edges leaving it are heavier
        than all edges inside it; the forest scan spans the node before
        touching any outgoing edge, and the restriction is a spanning
        tree of the leaves.  On a spanning tree every removal
        disconnects, so ``_greedy_refine``'s pass-until-fixpoint
        collapses to: accept the first edge in removal order whose two
        sides both hold >= k vertices, recurse into the sides, and a
        component with no acceptable edge is final.

        Two facts make that a *single* ordered scan instead of a
        per-component rescan:

        * a skipped edge never becomes acceptable — later cuts only
          shrink its sides — so each edge is decided exactly once, in
          removal order, against its current component's sizes;
        * cuts in disjoint components cannot affect each other, so the
          scan's cut set equals the work list's regardless of the order
          components are processed in.

        Side sizes are maintained incrementally: subtree counters are
        decremented along the cut's ancestor path (stopping at the
        component top), and the smaller side is relabelled on every cut,
        keeping component sizes O(1) and the relabel total O(n log n).
        The work list's output order — pop the far side first, emit on
        pop — is the post-order of the split recursion, where each
        component splits at its minimum removal-order cut; it is rebuilt
        by merging the final components over the cut edges in reverse.
        """
        members = set(leaves)
        adjacency: dict[int, list[int]] = {vertex: [] for vertex in leaves}
        edges: list[tuple[float, int, int]] = []
        for u in leaves:
            for v, weight in self._forest_adj[u]:
                if v in members:
                    adjacency[u].append(v)
                    if u < v:
                        edges.append((weight, u, v))
        edges.sort(key=lambda edge: (-edge[0], edge[1], edge[2]))

        # Root the spanning tree once; subtree sizes seed the running
        # "my subtree, within my current component" counters.
        root = leaves[0]
        parent = {root: root}
        order = [root]
        for vertex in order:  # grows while iterating: a BFS
            for neighbor in adjacency[vertex]:
                if neighbor not in parent:
                    parent[neighbor] = vertex
                    order.append(neighbor)
        size_cur = dict.fromkeys(members, 1)
        for vertex in reversed(order[1:]):
            size_cur[parent[vertex]] += size_cur[vertex]

        comp = dict.fromkeys(members, 0)
        comp_size = {0: len(members)}
        next_id = 1
        tops = {root}
        cuts: list[tuple[int, int]] = []
        for weight, u, v in edges:
            child, over = (v, u) if parent[v] == u else (u, v)
            child_side = size_cur[child]
            other_side = comp_size[comp[child]] - child_side
            if child_side < k or other_side < k:
                continue
            cuts.append((u, v))
            vertex = over
            while True:
                size_cur[vertex] -= child_side
                if vertex in tops:
                    break
                vertex = parent[vertex]
            tops.add(child)
            old = comp[child]
            if child_side <= other_side:
                seed, seed_size = child, child_side
            else:
                seed, seed_size = over, other_side
            comp_size[old] -= seed_size
            comp_size[next_id] = seed_size
            comp[seed] = next_id
            stack = [seed]
            while stack:
                x = stack.pop()
                for y in adjacency[x]:
                    if comp[y] == old and not _is_cut(x, y, parent, tops):
                        comp[y] = next_id
                        stack.append(y)
            next_id += 1

        if not cuts:
            return [members]
        groups: dict[int, set[int]] = {}
        for vertex in members:
            groups.setdefault(comp[vertex], set()).add(vertex)
        # Reverse merge: at each cut's turn all later cuts are merged,
        # so its two trees are exactly the split recursion's children.
        forest = UnionFind(groups)
        node_of: dict[int, object] = {cid: cid for cid in groups}
        for u, v in reversed(cuts):
            side_u, side_v = forest.find(comp[u]), forest.find(comp[v])
            node = (node_of.pop(side_u), node_of.pop(side_v))
            forest.union(side_u, side_v)
            node_of[forest.find(side_u)] = node
        result: list[set[int]] = []
        stack_nodes: list[object] = [node_of[forest.find(comp[root])]]
        while stack_nodes:
            node = stack_nodes.pop()
            if isinstance(node, int):
                result.append(groups[node])
            else:
                side_u, side_v = node
                stack_nodes.append(side_u)  # far side (v's) emits first
                stack_nodes.append(side_v)
        return result

    # -- basic queries ---------------------------------------------------------

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._component_of

    @property
    def component_count(self) -> int:
        """Number of connected components (one tree each)."""
        return len(self._components)

    @property
    def vertex_count(self) -> int:
        """Number of vertices covered by the forest."""
        return len(self._component_of)

    def _tree_of(self, vertex: int) -> tuple[int, _ComponentTree]:
        comp_id = self._component_of.get(vertex)
        if comp_id is None:
            raise GraphError(f"unknown vertex {vertex}")
        return comp_id, self._components[comp_id]

    def root_of(self, vertex: int) -> NodeRef:
        """The root node of ``vertex``'s component."""
        comp_id, _tree = self._tree_of(vertex)
        return (comp_id, 0)

    def leaf_of(self, vertex: int) -> NodeRef:
        """The leaf node of ``vertex``."""
        comp_id, tree = self._tree_of(vertex)
        return (comp_id, tree.leaf_node[vertex])

    def parent(self, node: NodeRef) -> Optional[NodeRef]:
        """The parent node, or None for a root."""
        comp_id, index = node
        par = self._components[comp_id].parent[index]
        return None if par < 0 else (comp_id, par)

    def size(self, node: NodeRef) -> int:
        """Number of leaves below ``node``."""
        return self._components[node[0]].size[node[1]]

    def weight(self, node: NodeRef) -> float:
        """The node's merge weight: its component's MEW as a standalone
        cluster (the minimal t at which its leaves are t-connected)."""
        return self._components[node[0]].weight[node[1]]

    def leaves(self, node: NodeRef) -> frozenset[int]:
        """The vertices below ``node``."""
        return frozenset(self._components[node[0]].leaves(node[1]))

    def marked_below(self, node: NodeRef) -> int:
        """How many of the node's leaves are marked."""
        return self._components[node[0]].marked_below[node[1]]

    # -- the per-vertex fast path ----------------------------------------------

    def smallest_valid_node(self, vertex: int, k: int) -> Optional[NodeRef]:
        """The lowest ancestor of ``vertex`` with >= k leaves, or None.

        This node's leaves are the vertex's smallest valid t-connectivity
        cluster (Definition 4.1) and its weight the minimal connectivity
        t — the minimum-MEW k-cluster resolution, as one ancestor walk.
        """
        comp_id, tree = self._tree_of(vertex)
        index = tree.leaf_node[vertex]
        while index >= 0:
            if tree.size[index] >= k:
                return (comp_id, index)
            index = tree.parent[index]
        return None

    def smallest_valid_cluster(
        self, vertex: int, k: int
    ) -> Optional[tuple[frozenset[int], float]]:
        """(cluster, t) exactly as the level-scan oracle computes them."""
        node = self.smallest_valid_node(vertex, k)
        if node is None:
            return None
        return self.leaves(node), self.weight(node)

    def node_at(self, vertex: int, t: float) -> NodeRef:
        """The t-component of ``vertex``: its highest ancestor of weight <= t.

        Parent weights strictly increase along the path, so the walk
        stops at the unique node whose parent (if any) merged above t.
        """
        comp_id, tree = self._tree_of(vertex)
        index = tree.leaf_node[vertex]
        while True:
            par = tree.parent[index]
            if par < 0 or tree.weight[par] > t:
                return (comp_id, index)
            index = par

    def is_isolated(self, node: NodeRef, k: int) -> bool:
        """Exact Property 4.1 bit for a node with >= k leaves.

        True iff every proper ancestor's off-path children all have >= k
        leaves.  Then every outside vertex's smallest valid cluster lives
        in a sibling subtree disjoint from ``node`` — removing the node's
        leaves changes no outside resolution (and conversely, an
        undersized off-path sibling resolves through an ancestor of
        ``node``, which removal necessarily changes).
        """
        comp_id, index = node
        return self._components[comp_id].anc_ok(k)[index]

    # -- partitions (Algorithm 1) ----------------------------------------------

    def strict_partition(self, k: int) -> list[set[int]]:
        """The strict Algorithm 1 partition, by memoized tree cuts."""
        result: list[set[int]] = []
        for tree in self._components.values():
            for index in tree.strict_cut(k):
                result.append(set(tree.leaves(index)))
        return result

    def greedy_partition(self, k: int) -> list[set[int]]:
        """The greedy Algorithm 1 partition: strict cut + refinement.

        Same clusters as ``centralized_k_clustering(graph, k, "greedy")``;
        refinements are memoized per cut node, so repeated calls (and
        per-request lazy resolutions) never re-run them.
        """
        result: list[set[int]] = []
        for comp_id, tree in self._components.items():
            for index in tree.strict_cut(k):
                if tree.size[index] < 2 * k:
                    result.append(set(tree.leaves(index)))
                else:
                    result.extend(
                        set(group)
                        for group in self.node_partition(
                            (comp_id, index), k, "greedy"
                        )
                    )
        return result

    def node_partition(
        self, node: NodeRef, k: int, method: str = "greedy"
    ) -> tuple[frozenset[int], ...]:
        """Algorithm 1 over the node's leaves (memoized per node/k/method).

        Bit-identical — same groups, same order — to
        ``centralized_k_clustering(graph, k, method, vertices=leaves)``,
        the call Algorithm 2's step 3 makes on a gathered cluster, but
        computed natively on the tree:

        * A node is a t-component, so the dendrogram of its induced
          subgraph (structure *and* child order: the subgraph's edges
          are a prefix-closed subset of the Kruskal scan, and no
          outgoing edge merges at or below the node's weight) is the
          node's own subtree — the strict cut is
          :meth:`_ComponentTree.strict_cut_below`, no dendrogram build.
        * The greedy refinement of a >= 2k piece
          (:meth:`_forest_refine`) runs over the piece's slice of the
          persistent constrained Kruskal forest instead of the full
          induced subgraph.  In the full pass, every non-forest edge is removed
          as a non-bridge the first time it is reached (its redundancy
          certificate — the forest path between its endpoints — lies
          strictly later in removal order, hence untouched), and every
          forest edge sees the same two sides either way (a removal-order
          suffix spans exactly what its forest restriction spans).  So
          the keep/split decisions, and with them the work-list order,
          coincide; an accepted split parts the forest into spanning
          trees of the two sides and the argument recurses.

        The node must have >= k leaves: it is then one connected
        component, the partition covers it without invalid pieces, and
        callers may register every group.
        """
        comp_id, index = node
        tree = self._components[comp_id]
        if tree.size[index] < k:
            raise GraphError(
                f"cannot partition a node of {tree.size[index]} < k={k} leaves"
            )
        if method not in ("strict", "greedy"):
            raise ConfigurationError(f"unknown method {method!r}")
        key = (index, k, method)
        memo = tree.partition_memo.get(key)
        if memo is not None:
            return memo
        groups: list[frozenset[int]] = []
        for piece in tree.strict_cut_below(index, k):
            if method == "strict" or tree.size[piece] < 2 * k:
                groups.append(frozenset(tree.leaves(piece)))
                continue
            piece_key = (piece, k)
            refined = tree.refine_memo.get(piece_key)
            if refined is None:
                refined = tuple(
                    frozenset(group)
                    for group in self._forest_refine(tree.leaves(piece), k)
                )
                tree.refine_memo[piece_key] = refined
            groups.extend(refined)
        result = tuple(groups)
        tree.partition_memo[key] = result
        return result

    # -- marked leaves (registry exclusions) -----------------------------------

    @property
    def marked(self) -> frozenset[int]:
        """All marked vertices (snapshot)."""
        return frozenset(self._marked)

    def mark(self, vertices: Iterable[int]) -> None:
        """Flag ``vertices`` (assigned users) on every ancestor's counter."""
        for vertex in vertices:
            if vertex in self._marked:
                continue
            self._marked.add(vertex)
            comp_id = self._component_of.get(vertex)
            if comp_id is None:
                continue
            tree = self._components[comp_id]
            index = tree.leaf_node[vertex]
            while index >= 0:
                tree.marked_below[index] += 1
                index = tree.parent[index]

    # -- churn maintenance -----------------------------------------------------

    def apply_patch(self, patch: "ChurnPatch") -> int:
        """Re-derive exactly the components a churn patch disturbed.

        Every structural change is one of ``patch.changed_edges``; an
        old component not incident to any of them kept all its edges and
        weights, so its tree (and memos) remain exact.  The rebuild
        scope starts from the incident components and closes over the
        patched graph: a walk that escapes the scope entered a component
        merged in by an added edge, whose tree must be re-derived too.
        Returns the number of old components rebuilt.  After the call
        the forest equals a fresh build over the patched graph.
        """
        edges = getattr(patch, "changed_edges", ())
        seeds = {v for edge in edges for v in edge if v in self._component_of}
        if not seeds:
            return 0
        stale = {self._component_of[v] for v in seeds}
        scope: set[int] = set()
        for comp_id in stale:
            scope.update(self._components[comp_id].leaf_order)
        queue = list(scope)
        while queue:
            vertex = queue.pop()
            for neighbor in self._graph.neighbors(vertex):
                if neighbor in scope:
                    continue
                # The walk crossed into a component merged by an added
                # edge: absorb it wholesale (unaffected internally, so
                # it is fully reachable once entered).
                merged = self._component_of[neighbor]
                if merged not in stale:
                    stale.add(merged)
                    members = self._components[merged].leaf_order
                    scope.update(members)
                    queue.extend(members)
                else:  # pragma: no cover - scope always holds stale leaves
                    scope.add(neighbor)
                    queue.append(neighbor)
        for comp_id in stale:
            del self._components[comp_id]
        scope_graph = self._graph.subgraph(scope)
        for root in single_linkage_dendrogram(scope_graph):
            self._adopt(_ComponentTree(root))
        # The Kruskal forest never crosses components, so the rebuilt
        # scope's slice is recomputed in isolation too.
        self._rebuild_forest(scope_graph)
        # Re-derive the marked counters of the rebuilt components.
        remark = self._marked & scope
        self._marked -= remark
        self.mark(remark)
        return len(stale)

    # -- persistence -----------------------------------------------------------

    def to_state(self) -> dict[str, list]:
        """The forest as flat columns (see :meth:`from_state`).

        Components are emitted in dict-iteration order with their
        original ids — both are observable (``strict_partition`` walks
        components in insertion order; node handles embed ids), so a
        restored tree must reproduce them exactly, not just the node
        sets.  Per-component node columns are concatenated with a
        ``node_indptr`` offset table; leaf columns concatenate too, with
        each component's leaf count recoverable as its root's size.
        """
        comp_ids: list[int] = []
        node_indptr: list[int] = [0]
        parent: list[int] = []
        weight: list[float] = []
        size: list[int] = []
        leaf_lo: list[int] = []
        leaf_order: list[int] = []
        for comp_id, tree in self._components.items():
            comp_ids.append(comp_id)
            parent.extend(tree.parent)
            weight.extend(tree.weight)
            size.extend(tree.size)
            leaf_lo.extend(tree.leaf_lo)
            leaf_order.extend(tree.leaf_order)
            node_indptr.append(len(parent))
        return {
            "comp_ids": comp_ids,
            "node_indptr": node_indptr,
            "parent": parent,
            "weight": weight,
            "size": size,
            "leaf_lo": leaf_lo,
            "leaf_order": leaf_order,
            "next_id": [self._next_id],
        }

    @classmethod
    def from_state(
        cls, graph: WeightedProximityGraph, state: dict[str, list]
    ) -> "ClusterTree":
        """Rebuild a tree captured by :meth:`to_state` over ``graph``.

        ``graph`` must be the graph the state was captured against (the
        restored engine's live graph).  The constrained Kruskal forest
        is recomputed from the graph value — a global ascending scan
        restricted to any component visits its edges in the same
        relative order as the per-scope scans of incremental patching,
        so the rebuilt forest matches the maintained one.  Marked
        counters start empty; callers holding a registry re-mark via
        :meth:`mark` (which skips already-marked vertices, so the
        re-mark is idempotent).
        """
        tree = cls.__new__(cls)
        tree._graph = graph
        tree._components = {}
        tree._component_of = {}
        tree._marked = set()
        tree._forest_adj = {}
        comp_ids = [int(c) for c in state["comp_ids"]]
        indptr = [int(i) for i in state["node_indptr"]]
        if len(indptr) != len(comp_ids) + 1:
            raise GraphError(
                f"cluster-tree state: {len(comp_ids)} components but "
                f"{len(indptr)} node offsets"
            )
        parent = [int(p) for p in state["parent"]]
        weight = [float(w) for w in state["weight"]]
        size = [int(s) for s in state["size"]]
        leaf_lo = [int(lo) for lo in state["leaf_lo"]]
        leaf_order = [int(v) for v in state["leaf_order"]]
        leaf_cursor = 0
        for position, comp_id in enumerate(comp_ids):
            lo, hi = indptr[position], indptr[position + 1]
            leaf_count = size[lo] if hi > lo else 0
            component = _ComponentTree._from_arrays(
                parent[lo:hi],
                weight[lo:hi],
                size[lo:hi],
                leaf_lo[lo:hi],
                leaf_order[leaf_cursor : leaf_cursor + leaf_count],
            )
            leaf_cursor += leaf_count
            tree._components[comp_id] = component
            for vertex in component.leaf_order:
                tree._component_of[vertex] = comp_id
        tree._next_id = int(state["next_id"][0])
        tree._rebuild_forest(graph)
        return tree

    # -- verification helpers --------------------------------------------------

    def node_signatures(self) -> Iterator[tuple[float, int, tuple[int, ...]]]:
        """(weight, size, sorted leaves) of every node — a canonical,
        component-id-free description of the forest, used by the fuzz
        invariant to compare a patched tree against a fresh build."""
        for tree in self._components.values():
            for index in range(len(tree.parent)):
                yield (
                    tree.weight[index],
                    tree.size[index],
                    tuple(sorted(tree.leaves(index))),
                )
