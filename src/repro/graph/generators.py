"""Random graph generators for tests and micro-benchmarks.

Wireless topologies "tend to be clustered and small world graphs [19]
which consist of regular graphs plus a few random edges" (Section IV);
these generators produce exactly those families so the properties the
paper relies on (Corollary 4.2, cluster-isolation) can be exercised away
from full spatial datasets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.wpg import WeightedProximityGraph


def random_weighted_graph(
    vertices: int,
    edge_probability: float,
    max_weight: int = 10,
    seed: int = 0,
) -> WeightedProximityGraph:
    """An Erdos-Renyi G(n, p) graph with integer weights in [1, max_weight]."""
    if vertices < 1:
        raise GraphError(f"vertices must be >= 1, got {vertices}")
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError(f"edge_probability must be in [0, 1], got {edge_probability}")
    rng = np.random.default_rng(seed)
    graph = WeightedProximityGraph()
    for v in range(vertices):
        graph.add_vertex(v)
    for u in range(vertices):
        for v in range(u + 1, vertices):
            if rng.random() < edge_probability:
                graph.add_edge(u, v, float(rng.integers(1, max_weight + 1)))
    return graph


def random_regular_graph(
    vertices: int, degree: int, max_weight: int = 10, seed: int = 0
) -> WeightedProximityGraph:
    """A random simple d-regular graph.

    Construction: a deterministic circulant d-regular graph, randomised by
    repeated double edge swaps (each swap preserves every degree and is
    rejected if it would create a loop or a parallel edge).  Unlike the
    classic pairing model this never fails, even in the dense regime where
    almost no pairing is simple.  ``vertices * degree`` must be even.
    """
    if degree < 0 or degree >= vertices:
        raise GraphError(f"degree must be in [0, {vertices - 1}], got {degree}")
    if (vertices * degree) % 2 != 0:
        raise GraphError("vertices * degree must be even")
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    for offset in range(1, degree // 2 + 1):
        for v in range(vertices):
            edges.add(tuple(sorted((v, (v + offset) % vertices))))
    if degree % 2:
        # degree odd forces vertices even: add the perfect matching of
        # antipodal pairs.
        for v in range(vertices // 2):
            edges.add(tuple(sorted((v, v + vertices // 2))))

    edge_list = sorted(edges)
    for _swap in range(10 * len(edge_list)):
        i, j = rng.integers(0, len(edge_list), size=2)
        (a, b), (c, d) = edge_list[int(i)], edge_list[int(j)]
        if len({a, b, c, d}) < 4:
            continue
        if rng.random() < 0.5:
            c, d = d, c
        new_one = tuple(sorted((a, c)))
        new_two = tuple(sorted((b, d)))
        if new_one in edges or new_two in edges:
            continue
        edges.remove((a, b) if a < b else (b, a))
        edges.remove((c, d) if c < d else (d, c))
        edges.add(new_one)
        edges.add(new_two)
        edge_list[int(i)] = new_one
        edge_list[int(j)] = new_two

    graph = WeightedProximityGraph()
    for v in range(vertices):
        graph.add_vertex(v)
    for a, b in sorted(edges):
        graph.add_edge(a, b, float(rng.integers(1, max_weight + 1)))
    return graph


def small_world_graph(
    vertices: int,
    base_degree: int = 4,
    rewire_probability: float = 0.1,
    max_weight: int = 10,
    seed: int = 0,
) -> WeightedProximityGraph:
    """A Watts-Strogatz-style ring lattice with random rewiring.

    Start from a ring where each vertex connects to its ``base_degree``
    nearest ring neighbours, then rewire each edge's far endpoint with
    probability ``rewire_probability``.
    """
    if base_degree % 2 != 0 or base_degree < 2:
        raise GraphError(f"base_degree must be even and >= 2, got {base_degree}")
    if vertices <= base_degree:
        raise GraphError(
            f"need vertices > base_degree, got {vertices} <= {base_degree}"
        )
    if not 0.0 <= rewire_probability <= 1.0:
        raise GraphError(
            f"rewire_probability must be in [0, 1], got {rewire_probability}"
        )
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    half = base_degree // 2
    for u in range(vertices):
        for offset in range(1, half + 1):
            v = (u + offset) % vertices
            if rng.random() < rewire_probability:
                # Rewire to a uniform non-neighbor, avoiding self-loops.
                for _retry in range(20):
                    w = int(rng.integers(0, vertices))
                    candidate = tuple(sorted((u, w)))
                    if w != u and candidate not in edges:
                        edges.add(candidate)
                        break
                else:
                    edges.add(tuple(sorted((u, v))))
            else:
                edges.add(tuple(sorted((u, v))))
    graph = WeightedProximityGraph()
    for v in range(vertices):
        graph.add_vertex(v)
    for a, b in sorted(edges):
        graph.add_edge(a, b, float(rng.integers(1, max_weight + 1)))
    return graph


def path_graph(weights: list[float]) -> WeightedProximityGraph:
    """A path ``0 - 1 - ... - n`` with the given consecutive edge weights."""
    graph = WeightedProximityGraph()
    graph.add_vertex(0)
    for i, weight in enumerate(weights):
        graph.add_edge(i, i + 1, weight)
    return graph
