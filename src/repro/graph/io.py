"""WPG persistence.

Building the full-scale WPG takes seconds to minutes; persisting it lets
a deployment (or a benchmark matrix) build once and reload instantly.
Two formats:

* a plain CSV of ``u,v,weight`` rows plus a leading ``# isolated: ...``
  comment listing isolated vertices (:func:`save_wpg`/:func:`load_wpg`),
  greppable and diffable;
* flat numpy columns (:func:`graph_to_arrays`/:func:`graph_from_arrays`)
  for the binary ``.npz`` snapshots of :mod:`repro.persist` — edges
  sorted by canonical key, weights bit-exact, isolated vertices carried
  in a separate column.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.errors import GraphError
from repro.graph.wpg import WeightedProximityGraph

#: The one CSV format version this module reads and writes.
WPG_FORMAT_VERSION = 1

_MAGIC = f"# wpg v{WPG_FORMAT_VERSION}"


def save_wpg(graph: WeightedProximityGraph, path: str | Path) -> None:
    """Write ``graph`` as an edge-list CSV (isolated vertices in a header)."""
    target = Path(path)
    isolated = sorted(v for v in graph.vertices() if graph.degree(v) == 0)
    with target.open("w", newline="") as handle:
        handle.write(_MAGIC + "\n")
        handle.write("# isolated: " + " ".join(map(str, isolated)) + "\n")
        writer = csv.writer(handle)
        writer.writerow(["u", "v", "weight"])
        for edge in sorted(graph.edges(), key=lambda e: e.key()):
            writer.writerow([edge.u, edge.v, repr(edge.weight)])


def load_wpg(path: str | Path) -> WeightedProximityGraph:
    """Read a graph written by :func:`save_wpg`.

    Strict about provenance: an empty file, a non-WPG magic line, a
    *version-mismatched* ``# wpg`` header (a future writer's output must
    not be silently half-parsed), or a duplicate edge row all raise a
    typed :class:`~repro.errors.GraphError`.
    """
    source = Path(path)
    if not source.exists():
        raise GraphError(f"graph file not found: {source}")
    graph = WeightedProximityGraph()
    with source.open(newline="") as handle:
        first = handle.readline()
        if not first:
            raise GraphError(f"{source}: empty file, not a WPG")
        if not first.startswith("# wpg"):
            raise GraphError(f"{source}: not a WPG file (bad magic {first!r})")
        if first.rstrip("\r\n") != _MAGIC:
            raise GraphError(
                f"{source}: unsupported WPG format version "
                f"{first.rstrip()!r} (this reader supports {_MAGIC!r})"
            )
        isolated_line = handle.readline()
        if not isolated_line.startswith("# isolated:"):
            raise GraphError(f"{source}: missing isolated-vertices header")
        for token in isolated_line.split(":", 1)[1].split():
            graph.add_vertex(int(token))
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["u", "v", "weight"]:
            raise GraphError(f"{source}: malformed column header {header!r}")
        for row_number, row in enumerate(reader, start=4):
            try:
                u, v, weight = int(row[0]), int(row[1]), float(row[2])
            except (ValueError, IndexError) as exc:
                raise GraphError(
                    f"{source}:{row_number}: malformed edge row {row!r}"
                ) from exc
            if graph.has_edge(u, v):
                raise GraphError(
                    f"{source}:{row_number}: duplicate edge ({u}, {v})"
                )
            graph.add_edge(u, v, weight)
    return graph


# -- array form (binary snapshots) --------------------------------------------------


def graph_to_arrays(
    graph: WeightedProximityGraph,
) -> dict[str, np.ndarray]:
    """``graph`` as flat numpy columns (the ``.npz`` snapshot form).

    ``vertices`` lists every vertex id ascending; ``us``/``vs``/``ws``
    are the edge columns sorted by canonical ``(u, v)`` key.  Weights
    round-trip bit for bit (binary64 in, binary64 out).
    """
    vertices = np.array(sorted(graph.vertices()), dtype=np.int64)
    edges = sorted(graph.edges(), key=lambda e: e.key())
    us = np.array([e.u for e in edges], dtype=np.int64)
    vs = np.array([e.v for e in edges], dtype=np.int64)
    ws = np.array([e.weight for e in edges], dtype=float)
    return {"vertices": vertices, "us": us, "vs": vs, "ws": ws}


def graph_from_arrays(arrays: dict[str, np.ndarray]) -> WeightedProximityGraph:
    """Rebuild a graph from :func:`graph_to_arrays` output.

    Dense vertex ranges (``0..n-1``, the engine case) go through the
    lazy bulk constructor, so restoring a large graph defers the
    per-edge dict boxing exactly like the fast builder does; sparse id
    sets fall back to the scalar path.
    """
    vertices = np.asarray(arrays["vertices"], dtype=np.int64)
    us = np.asarray(arrays["us"], dtype=np.int64)
    vs = np.asarray(arrays["vs"], dtype=np.int64)
    ws = np.asarray(arrays["ws"], dtype=float)
    if not (len(us) == len(vs) == len(ws)):
        raise GraphError(
            f"edge columns disagree: {len(us)}/{len(vs)}/{len(ws)} entries"
        )
    n = len(vertices)
    if n and int(vertices[0]) == 0 and int(vertices[-1]) == n - 1:
        return WeightedProximityGraph.from_arrays(n, us, vs, ws)
    return WeightedProximityGraph.from_edges(
        zip(us.tolist(), vs.tolist(), ws.tolist()),
        vertices=vertices.tolist(),
    )
