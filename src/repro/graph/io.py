"""WPG persistence.

Building the full-scale WPG takes seconds to minutes; persisting it lets
a deployment (or a benchmark matrix) build once and reload instantly.
The format is a plain CSV of ``u,v,weight`` rows plus a leading
``# vertices: ...`` comment listing isolated vertices, so files are
greppable and diffable.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.errors import GraphError
from repro.graph.wpg import WeightedProximityGraph


def save_wpg(graph: WeightedProximityGraph, path: str | Path) -> None:
    """Write ``graph`` as an edge-list CSV (isolated vertices in a header)."""
    target = Path(path)
    isolated = sorted(v for v in graph.vertices() if graph.degree(v) == 0)
    with target.open("w", newline="") as handle:
        handle.write("# wpg v1\n")
        handle.write("# isolated: " + " ".join(map(str, isolated)) + "\n")
        writer = csv.writer(handle)
        writer.writerow(["u", "v", "weight"])
        for edge in sorted(graph.edges(), key=lambda e: e.key()):
            writer.writerow([edge.u, edge.v, repr(edge.weight)])


def load_wpg(path: str | Path) -> WeightedProximityGraph:
    """Read a graph written by :func:`save_wpg`."""
    source = Path(path)
    if not source.exists():
        raise GraphError(f"graph file not found: {source}")
    graph = WeightedProximityGraph()
    with source.open(newline="") as handle:
        first = handle.readline()
        if not first.startswith("# wpg"):
            raise GraphError(f"{source}: not a WPG file (bad magic {first!r})")
        isolated_line = handle.readline()
        if not isolated_line.startswith("# isolated:"):
            raise GraphError(f"{source}: missing isolated-vertices header")
        for token in isolated_line.split(":", 1)[1].split():
            graph.add_vertex(int(token))
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["u", "v", "weight"]:
            raise GraphError(f"{source}: malformed column header {header!r}")
        for row_number, row in enumerate(reader, start=4):
            try:
                u, v, weight = int(row[0]), int(row[1]), float(row[2])
            except (ValueError, IndexError) as exc:
                raise GraphError(
                    f"{source}:{row_number}: malformed edge row {row!r}"
                ) from exc
            graph.add_edge(u, v, weight)
    return graph
