"""Single-linkage dendrogram of a WPG (the fast form of Algorithm 1).

Algorithm 1 removes edges from a connected component in descending weight
order "until this cluster is no longer connected and is thus partitioned
into some smaller connected components".  Under Definition 4.1 the
resulting pieces must be *t-connectivity clusters*, i.e. connected
components of the subgraph keeping only edges of weight <= t — so a
partition step lowers the connectivity threshold t to the next smaller
edge weight present in the component and removes the whole weight class.
(Removing strictly one edge at a time could strand a piece that is not a
t-component for any t, breaking the equivalence-class structure that
Theorems 4.1/4.3 rely on.)

Decreasing t through the distinct weight levels of the graph traces out a
dendrogram: each node is a t-component at some level, its children the
components it splits into at the next level down.  Building it bottom-up
with Kruskal's algorithm and union-find costs O(E log E); Algorithm 1 then
becomes a top-down cut (:func:`cut_smallest_valid`).  Nodes merge
*multi-way*: all components joined by edges of one weight level become
children of a single node.

The naive literal translation in
:mod:`repro.clustering.centralized` removes descending weight classes
from an explicit graph copy; the test suite verifies it computes exactly
the same partition as the dendrogram cut.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import groupby
from typing import Iterator, Optional

from repro.graph.unionfind import UnionFind
from repro.graph.wpg import WeightedProximityGraph


@dataclass(slots=True)
class DendrogramNode:
    """A t-component of the graph at some connectivity level.

    ``merge_weight`` is the smallest t at which this component is
    connected (0 for leaves); ``children`` are its components at the next
    level down.  ``size`` counts leaves.
    """

    merge_weight: float
    size: int
    vertex: Optional[int] = None  # set for leaves only
    children: list["DendrogramNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """True when this node is a single vertex."""
        return self.vertex is not None

    def leaves(self) -> Iterator[int]:
        """All vertex ids below this node."""
        stack = [self]
        while stack:
            node = stack.pop()
            if node.vertex is not None:
                yield node.vertex
            else:
                stack.extend(node.children)


def single_linkage_dendrogram(
    graph: WeightedProximityGraph,
) -> list[DendrogramNode]:
    """Build the dendrogram forest of ``graph`` (one root per component).

    Kruskal's algorithm processed one weight level at a time: all
    components connected by edges of weight w collapse into a single node
    of ``merge_weight`` w whose children are the pre-level components.
    Isolated vertices remain singleton (leaf) roots.
    """
    node_of: dict[object, DendrogramNode] = {}  # union-find root -> node
    forest = UnionFind()
    for vertex in graph.vertices():
        forest.add(vertex)
        node_of[vertex] = DendrogramNode(merge_weight=0.0, size=1, vertex=vertex)

    edges = sorted(graph.edges(), key=lambda e: (e.weight, e.key()))
    for weight, group in groupby(edges, key=lambda e: e.weight):
        created_this_level: set[int] = set()
        for edge in group:
            rep_u, rep_v = forest.find(edge.u), forest.find(edge.v)
            if rep_u == rep_v:
                continue
            node_u, node_v = node_of.pop(rep_u), node_of.pop(rep_v)
            merged = _merge_nodes(node_u, node_v, weight, created_this_level)
            forest.union(edge.u, edge.v)
            node_of[forest.find(edge.u)] = merged
    return list(node_of.values())


def _merge_nodes(
    a: DendrogramNode, b: DendrogramNode, weight: float, this_level: set[int]
) -> DendrogramNode:
    """Merge two components at ``weight``, flattening same-level nodes.

    If either side is itself a node created at this weight level, its
    children are absorbed directly so one level of the dendrogram equals
    one weight class (multi-way merge), not a chain of binary merges.
    """
    children: list[DendrogramNode] = []
    for node in (a, b):
        if id(node) in this_level:
            children.extend(node.children)
        else:
            children.append(node)
    merged = DendrogramNode(
        merge_weight=weight, size=a.size + b.size, children=children
    )
    this_level.add(id(merged))
    return merged


def cut_smallest_valid(roots: list[DendrogramNode], k: int) -> list[set[int]]:
    """Partition into smallest valid t-connectivity clusters (Algorithm 1).

    Top-down: a node splits into its children iff *every* child has at
    least ``k`` leaves ("a further partition will lead to an invalid
    cluster" stops the recursion).  Roots smaller than ``k`` are returned
    as-is — they are invalid clusters the caller must deal with (the
    paper's disconnected-component caveat, Fig. 5).
    """
    clusters: list[set[int]] = []
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node.is_leaf or any(child.size < k for child in node.children):
            clusters.append(set(node.leaves()))
        else:
            stack.extend(node.children)
    return clusters


def smallest_valid_component(
    roots: list[DendrogramNode], vertex: int, k: int
) -> Optional[set[int]]:
    """The lowest dendrogram node containing ``vertex`` with size >= k.

    This is the *per-vertex* smallest valid t-connectivity cluster,
    ignoring the partition constraint — the quantity Algorithm 2's step 1
    computes locally.  Returns ``None`` when even the root component of
    ``vertex`` is smaller than k (no valid cluster exists, Fig. 5).
    """
    for root in roots:
        if not _contains(root, vertex):
            continue
        node: Optional[DendrogramNode] = root
        best: Optional[DendrogramNode] = None
        while node is not None and node.size >= k:
            best = node
            node = next(
                (child for child in node.children if _contains(child, vertex)), None
            )
        return set(best.leaves()) if best is not None else None
    return None


def _contains(node: DendrogramNode, vertex: int) -> bool:
    return any(leaf == vertex for leaf in node.leaves())
