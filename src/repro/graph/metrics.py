"""Graph measurements: degrees, MEW, diameters, and Corollary 4.2's bound.

The paper substitutes the cluster's *maximum edge weight* (MEW) for its
diameter because the diameter is "complex and costly to derive in the
clustering process"; Corollary 4.2 justifies this for (near-)regular
graphs by bounding the weighted diameter by
``w * (1 + ceil(log_{d-1}((2 + eps) * d * k * log k)))``.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Optional

from repro.errors import GraphError
from repro.graph.wpg import WeightedProximityGraph


def average_degree(graph: WeightedProximityGraph) -> float:
    """Mean vertex degree (0 for an empty graph)."""
    if graph.vertex_count == 0:
        return 0.0
    return 2.0 * graph.edge_count / graph.vertex_count


def max_edge_weight(
    graph: WeightedProximityGraph, vertices: Optional[Iterable[int]] = None
) -> float:
    """The MEW of the graph, or of the induced subgraph on ``vertices``.

    Returns 0 for an edgeless (sub)graph — an isolated vertex is trivially
    0-connected to itself.
    """
    if vertices is None:
        return max((e.weight for e in graph.edges()), default=0.0)
    keep = set(vertices)
    best = 0.0
    for u in keep:
        for v, weight in graph.neighbor_weights(u):
            if v in keep and weight > best:
                best = weight
    return best


def shortest_path_lengths(
    graph: WeightedProximityGraph, source: int
) -> dict[int, float]:
    """Dijkstra distances from ``source`` (weights must be non-negative)."""
    if source not in graph:
        raise GraphError(f"unknown vertex {source}")
    dist: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, vertex = heapq.heappop(heap)
        if d > dist.get(vertex, math.inf):
            continue
        for neighbor, weight in graph.neighbor_weights(vertex):
            candidate = d + weight
            if candidate < dist.get(neighbor, math.inf):
                dist[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return dist


def graph_diameter(
    graph: WeightedProximityGraph, vertices: Optional[Iterable[int]] = None
) -> float:
    """The weighted diameter: max over pairs of shortest-path length.

    Runs Dijkstra from every vertex, so reserve it for clusters and test
    graphs.  Returns ``inf`` for a disconnected (sub)graph and 0 for a
    single vertex.
    """
    target = graph if vertices is None else graph.subgraph(vertices)
    ids = list(target.vertices())
    if not ids:
        raise GraphError("diameter of an empty graph is undefined")
    worst = 0.0
    for source in ids:
        dist = shortest_path_lengths(target, source)
        if len(dist) < len(ids):
            return math.inf
        worst = max(worst, max(dist.values()))
    return worst


def regular_graph_diameter_bound(
    k: int, degree: int, max_weight: float, epsilon: float = 0.01
) -> float:
    """Corollary 4.2's diameter bound for a k-vertex, d-regular graph.

    ``w * (1 + ceil(log_{d-1}((2 + eps) * d * k * log k)))``.  Requires
    ``degree >= 3`` (the underlying random-regular-graph result [20] needs
    ``d - 1 >= 2`` for the logarithm base) and ``k >= 2``.
    """
    if k < 2:
        raise GraphError(f"bound needs k >= 2, got {k}")
    if degree < 3:
        raise GraphError(f"bound needs degree >= 3, got {degree}")
    if epsilon <= 0:
        raise GraphError(f"epsilon must be positive, got {epsilon}")
    if max_weight < 0:
        raise GraphError(f"max_weight must be non-negative, got {max_weight}")
    inner = (2.0 + epsilon) * degree * k * math.log(k)
    hops = 1 + math.ceil(math.log(inner, degree - 1))
    return max_weight * hops
