"""Incremental WPG maintenance under population churn.

:func:`~repro.graph.build.build_wpg_fast` rebuilds the whole graph from
scratch; under sustained movement that is the dominant cost of every tick
even though a single move only disturbs a tiny neighborhood of the graph.
:class:`IncrementalWPG` exploits the locality: a move can only change the
directed peer picks of users whose delta-neighborhood intersects the
mover's old or new position.  Re-ranking exactly that *dirty set* with the
same vectorized kernels the from-scratch builder uses — and diffing the
resulting picks against the maintained picks table — patches the graph to
the state a full rebuild would produce, bit for bit.

The equivalence argument: an edge ``(a, b)`` and its weight are a pure
function of ``picks[a].get(b)`` and ``picks[b].get(a)`` (the two directed
1-based ranks).  A user's picks are a pure function of its
delta-neighborhood and the pairwise distances inside it.  Both can only
change for users within delta of a mover's old or new position, and the
dirty-set re-rank recomputes picks with the exact float operations of
:meth:`~repro.radio.measurement.ProximityMeter.rank_all` — so every pick,
and therefore every edge weight, matches the from-scratch build exactly.

Stateful radio models (shadowing RNGs, TDOA noise) are rejected: their
readings depend on the measurement *order*, which an incremental re-rank
cannot replay.  The paper's ideal RSS model — and any deterministic
distance-only model — qualifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.obs import names as metric
from repro.geometry.point import Point
from repro.graph.build import directed_picks, mutual_rank_edges
from repro.graph.wpg import WeightedProximityGraph
from repro.radio.rss import IdealRSSModel, LogDistanceRSSModel, RSSModel, rss_batch_fallback
from repro.spatial.grid import GridIndex


@dataclass(frozen=True, slots=True)
class ChurnPatch:
    """What one :meth:`IncrementalWPG.apply_moves` batch changed.

    ``touched_users`` are the dirty-set ids (sorted ascending): every user
    whose picks were re-ranked, i.e. the only vertices whose incident
    edges may differ from before.  Any component/dendrogram cache a caller
    maintains needs invalidation exactly for components containing these.

    ``changed_edges`` are the structural diffs themselves, as ``(u, v)``
    keys (u < v) of every edge added, removed or reweighted — the precise
    invalidation set consumers like
    :meth:`~repro.graph.cluster_tree.ClusterTree.apply_patch` rebuild
    along (a re-ranked user whose picks diffed to nothing appears in
    ``touched_users`` but contributes no changed edge).
    """

    moved: int
    dirty_users: int
    edges_added: int
    edges_removed: int
    edges_reweighted: int
    touched_users: tuple[int, ...]
    changed_edges: tuple[tuple[int, int], ...] = ()

    @property
    def edges_changed(self) -> int:
        """Total edge mutations applied to the graph."""
        return self.edges_added + self.edges_removed + self.edges_reweighted


def _require_stateless(model: RSSModel) -> None:
    """Reject radio models whose readings consume a noise stream."""
    if isinstance(model, IdealRSSModel):
        return
    if isinstance(model, LogDistanceRSSModel) and model._sigma == 0:
        return
    raise ConfigurationError(
        "incremental WPG maintenance requires a stateless radio model "
        f"(order-independent readings); got {type(model).__name__}"
    )


class IncrementalWPG:
    """Maintains a WPG over a mutable :class:`GridIndex` under moves.

    Parameters
    ----------
    grid:
        The live spatial index (``cell_size`` need not equal ``delta``,
        but that is the efficient regime).  The maintainer moves points
        through :meth:`GridIndex.move_many` itself — callers must not
        mutate the grid behind its back.
    delta:
        Communication range, as in :func:`~repro.graph.build.build_wpg`.
    max_peers:
        Device connection cap M.
    model:
        Radio model; defaults to the ideal RSS model.  Must be stateless
        (see module docstring).
    graph:
        An existing graph to adopt and patch in place — the engine's
        clustering services hold a reference to it, so patching (rather
        than swapping) keeps them live.  Verified once against the grid
        population at construction; pass ``None`` to build fresh.
    """

    def __init__(
        self,
        grid: GridIndex,
        delta: float,
        max_peers: int,
        model: RSSModel | None = None,
        graph: WeightedProximityGraph | None = None,
    ) -> None:
        if delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta}")
        if max_peers < 1:
            raise ConfigurationError(f"max_peers must be >= 1, got {max_peers}")
        self._grid = grid
        self._delta = delta
        self._max_peers = max_peers
        self._model: RSSModel = model if model is not None else IdealRSSModel()
        _require_stateless(self._model)
        # Directed picks table: _picks[u] maps peer -> u's 1-based rank of
        # that peer; None marks a removed (hole) id.
        self._picks: list[dict[int, int] | None] = [
            None if grid._points[i] is None else {} for i in range(len(grid))
        ]
        u, v, ranks = self._rank_users(np.asarray(grid.live_ids(), dtype=np.int64))
        for a, b, r in zip(u.tolist(), v.tolist(), ranks.tolist()):
            self._picks[a][b] = int(r)
        us, vs, ws = mutual_rank_edges(len(grid), u, v, ranks)
        if graph is None:
            self._graph = WeightedProximityGraph.from_arrays(len(grid), us, vs, ws)
        else:
            self._verify_adopted(graph, us, vs, ws)
            self._graph = graph

    @classmethod
    def restore(
        cls,
        grid: GridIndex,
        delta: float,
        max_peers: int,
        graph: WeightedProximityGraph,
        picks_indptr: np.ndarray,
        picks_peers: np.ndarray,
        picks_ranks: np.ndarray,
        model: RSSModel | None = None,
    ) -> "IncrementalWPG":
        """Rebuild a maintainer from a persisted picks table (trusted path).

        Used by :mod:`repro.persist` during restore: the picks were
        exported by :meth:`export_picks` from a maintainer whose graph
        was bit-equal to ``graph`` at snapshot time, so the O(n·M)
        re-rank and the O(E) adoption audit of ``__init__`` are skipped
        — restore cost is the array walk below.  The grid slot table
        must match ``picks_indptr`` hole for hole.
        """
        if delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta}")
        if max_peers < 1:
            raise ConfigurationError(f"max_peers must be >= 1, got {max_peers}")
        if len(picks_indptr) != len(grid) + 1:
            raise ConfigurationError(
                f"picks table covers {len(picks_indptr) - 1} id slots but "
                f"the grid indexes {len(grid)}"
            )
        wpg = cls.__new__(cls)
        wpg._grid = grid
        wpg._delta = delta
        wpg._max_peers = max_peers
        wpg._model = model if model is not None else IdealRSSModel()
        _require_stateless(wpg._model)
        peers = picks_peers.tolist()
        ranks = picks_ranks.tolist()
        indptr = picks_indptr.tolist()
        picks: list[dict[int, int] | None] = []
        for slot in range(len(grid)):
            if grid._points[slot] is None:
                picks.append(None)
            else:
                lo, hi = indptr[slot], indptr[slot + 1]
                picks.append(dict(zip(peers[lo:hi], ranks[lo:hi])))
        wpg._picks = picks
        wpg._graph = graph
        return wpg

    def export_picks(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The directed picks table as CSR columns for a snapshot.

        Returns ``(indptr, peers, ranks)`` with one (possibly empty)
        segment per id slot; hole slots get empty segments and are
        re-holed on restore from the grid's own slot table.  Peers keep
        dict-insertion order — edge derivation only reads membership and
        rank, so order is not observable, but keeping it makes the
        round-trip byte-stable.
        """
        indptr = np.zeros(len(self._picks) + 1, dtype=np.int64)
        peers: list[int] = []
        ranks: list[int] = []
        for slot, table in enumerate(self._picks):
            if table:
                peers.extend(table.keys())
                ranks.extend(table.values())
            indptr[slot + 1] = len(peers)
        return (
            indptr,
            np.asarray(peers, dtype=np.int64),
            np.asarray(ranks, dtype=np.int64),
        )

    @property
    def graph(self) -> WeightedProximityGraph:
        """The maintained graph (patched in place by :meth:`apply_moves`)."""
        return self._graph

    @property
    def grid(self) -> GridIndex:
        """The underlying spatial index."""
        return self._grid

    def _verify_adopted(
        self,
        graph: WeightedProximityGraph,
        us: np.ndarray,
        vs: np.ndarray,
        ws: np.ndarray,
    ) -> None:
        """One-time O(E) check that an adopted graph matches the grid."""
        if graph.vertex_count != len(self._grid):
            raise ConfigurationError(
                f"adopted graph has {graph.vertex_count} vertices but the "
                f"grid indexes {len(self._grid)} id slots"
            )
        expected = {
            (min(a, b), max(a, b)): w
            for a, b, w in zip(us.tolist(), vs.tolist(), ws.tolist())
        }
        actual = {e.key(): e.weight for e in graph.edges()}
        if expected != actual:
            diff = set(expected.items()) ^ set(actual.items())
            raise ConfigurationError(
                f"adopted graph disagrees with the grid population on "
                f"{len(diff)} edge entries — was it built with the same "
                "delta/max_peers and a stateless radio model?"
            )

    def _rank_users(
        self, users: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Directed picks of ``users`` (sorted ascending live ids).

        Returns ``(u, v, ranks)`` — each user's up-to-M closest peers
        within delta and their 1-based ranks, computed with the exact
        float operations of the from-scratch fast build.
        """
        coords = self._grid.points_array()
        if len(users) == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, np.zeros(0, dtype=float)
        indptr, nbrs = self._grid.batch_query_radius(
            self._delta, centers=coords[users]
        )
        owners = np.repeat(users, np.diff(indptr))
        not_self = nbrs != owners
        owners, nbrs = owners[not_self], nbrs[not_self]
        # Each center is a live indexed point, so every segment contained
        # exactly one self-match.
        indptr = np.concatenate(([0], np.cumsum(np.diff(indptr) - 1))).astype(
            np.int64
        )
        xs = coords[:, 0]
        ys = coords[:, 1]
        dx = xs[owners] - xs[nbrs]
        dy = ys[owners] - ys[nbrs]
        distances = np.sqrt(dx * dx + dy * dy)
        batch = getattr(self._model, "rss_batch", None)
        if batch is not None:
            readings = batch(distances)
        else:
            readings = rss_batch_fallback(self._model, distances)
        # The per-user (-reading, id) order of rank_peers, all segments at
        # once; `owners` ascending keeps segments contiguous and in id
        # order, matching rank_all's grouping.
        order = np.lexsort((nbrs, -readings, owners))
        return directed_picks(owners, indptr, nbrs[order], self._max_peers)

    def apply_moves(self, moves: Sequence[tuple[int, Point]]) -> ChurnPatch:
        """Move a batch of users and patch the graph to match.

        ``moves`` are ``(user id, new position)`` pairs; each id may
        appear at most once per batch.  After the call the graph equals
        ``build_wpg_fast`` over the final positions, bit for bit.
        """
        if not moves:
            return ChurnPatch(0, 0, 0, 0, 0, ())
        ids = [user for user, _ in moves]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(
                "apply_moves got duplicate user ids in one batch"
            )
        ids_arr = np.asarray(ids, dtype=np.int64)
        points = [point for _, point in moves]

        # Dirty set: anyone within delta of a mover's old OR new position
        # (including the movers themselves — distance 0).
        with obs.span(metric.SPAN_CHURN_GRID):
            coords = self._grid.points_array()
            old_centers = coords[ids_arr].copy()
            _, near_old = self._grid.batch_query_radius(
                self._delta, centers=old_centers
            )
            self._grid.move_many(ids, points)
            coords = self._grid.points_array()
            _, near_new = self._grid.batch_query_radius(
                self._delta, centers=coords[ids_arr]
            )
            dirty = np.unique(np.concatenate((ids_arr, near_old, near_new)))

        with obs.span(metric.SPAN_CHURN_WPG):
            return self._patch(ids, dirty)

    def _patch(self, ids: list[int], dirty: np.ndarray) -> ChurnPatch:
        """Re-rank the dirty set and diff the picks into the graph."""
        # Re-rank exactly the dirty users at the final positions.
        u, v, ranks = self._rank_users(dirty)

        # Candidate edge pairs: every (dirty user, old-or-new pick).  Any
        # edge not incident to such a pair has both directed ranks
        # unchanged, hence the same weight.
        pairs: set[tuple[int, int]] = set()
        dirty_list = dirty.tolist()
        for w in dirty_list:
            for p in self._picks[w]:
                pairs.add((w, p) if w < p else (p, w))
            self._picks[w] = {}
        for a, b, r in zip(u.tolist(), v.tolist(), ranks.tolist()):
            self._picks[a][b] = int(r)
            pairs.add((a, b) if a < b else (b, a))

        added = removed = reweighted = 0
        changed: list[tuple[int, int]] = []
        graph = self._graph
        for a, b in pairs:
            ra = self._picks[a].get(b)
            rb = self._picks[b].get(a)
            if ra is None and rb is None:
                desired = None
            elif ra is None:
                desired = float(rb)
            elif rb is None:
                desired = float(ra)
            else:
                desired = float(min(ra, rb))
            if desired is None:
                if graph.has_edge(a, b):
                    graph.remove_edge(a, b)
                    removed += 1
                    changed.append((a, b))
            elif not graph.has_edge(a, b):
                graph.add_edge(a, b, desired)
                added += 1
                changed.append((a, b))
            elif graph.weight(a, b) != desired:
                graph.remove_edge(a, b)
                graph.add_edge(a, b, desired)
                reweighted += 1
                changed.append((a, b))
        changed.sort()
        return ChurnPatch(
            moved=len(ids),
            dirty_users=len(dirty_list),
            edges_added=added,
            edges_removed=removed,
            edges_reweighted=reweighted,
            touched_users=tuple(dirty_list),
            changed_edges=tuple(changed),
        )
