"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from protocol failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A parameter is out of its valid domain (e.g. k < 1, delta <= 0)."""


class GraphError(ReproError):
    """A graph operation received an inconsistent or unknown vertex/edge."""


class ClusteringError(ReproError):
    """A k-clustering request cannot be satisfied.

    Raised, for example, when the host vertex's connected component holds
    fewer than k users, so no valid cluster exists at any connectivity.
    """


class BoundingError(ReproError):
    """A secure-bounding protocol failed to converge or was misconfigured."""


class ProtocolError(ReproError):
    """A message-level protocol violated its state machine.

    This covers malformed replies, deadlocks detected by the concurrency
    controller, and exhausted retry budgets under failure injection.
    """


class DatasetError(ReproError):
    """A dataset could not be generated, parsed, or normalised."""


class PersistError(ReproError):
    """Durable state could not be written, read, or restored.

    Raised by :mod:`repro.persist` for corrupt snapshots, unsupported
    format versions, engines whose configuration is not restorable
    (custom policy callables, message-level reliability sessions), and
    stores with no snapshot to restore from.  A *torn journal tail* is
    NOT an error — the write-ahead log is truncated at the first
    incomplete record by design.
    """


class ServiceError(ReproError):
    """The sharded cloaking service failed outside any single request.

    Raised by :mod:`repro.service` for unsupported configurations (a
    clustering flavor whose global state cannot be served shard-locally),
    dead or unresponsive shard workers, and requests routed to a worker
    that does not own the host.
    """


class ServiceOverload(ServiceError):
    """The service's bounded admission queue is full.

    Explicit backpressure: a request arriving while the configured
    number of requests is already in flight is *rejected* with this
    typed error — never silently dropped, never left to queue unboundedly.
    Clients are expected to retry after backoff.
    """


class WireFormatError(ServiceError):
    """A wire frame violated the length-prefixed JSON protocol.

    Covers frames whose declared length exceeds the hard cap
    (:class:`FrameTooLarge`), connections that end mid-frame
    (:class:`TruncatedFrame`), payloads that are not valid JSON objects,
    and frames missing required fields.  A connection ending *between*
    frames is a clean close, not an error.
    """


class FrameTooLarge(WireFormatError):
    """A frame declared a length beyond the protocol's hard cap."""


class TruncatedFrame(WireFormatError):
    """The peer vanished in the middle of a length-prefixed frame."""


class VerificationError(ReproError):
    """An exact oracle or transcript audit found an inconsistency.

    Raised by :mod:`repro.verify` when an oracle is asked something
    outside its exact regime (e.g. brute-force enumeration beyond its
    vertex cap) or when a replayed transcript contradicts itself.  An
    *invariant violation* over a fuzzed world is reported as data, not an
    exception — see :mod:`repro.verify.invariants`.
    """
