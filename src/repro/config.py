"""Simulation parameters (paper Table I) and their validation.

Table I of the paper:

    # of users                          104,770
    distance threshold      delta       2e-3
    max # of connected peers    M       10
    k-anonymity                 k       10
    bounding cost              Cb       1
    service request cost       Cr       1,000
    uniform distribution bound  U       N / 104,770
    initial bound               X       N / 104,770
    # of user requests          S       2,000
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

#: Number of users in the paper's dataset.
DEFAULT_USER_COUNT = 104_770

#: Communication range of a device, in unit-square lengths.
DEFAULT_DELTA = 2e-3

#: Maximum number of peers a device keeps connections to.
DEFAULT_MAX_PEERS = 10

#: Default anonymity requirement.
DEFAULT_K = 10

#: Cost of one bound-verification round trip, per user (messages).
DEFAULT_BOUNDING_COST = 1.0

#: Cost of shipping one POI's content, relative to a bounding message.
DEFAULT_REQUEST_COST = 1000.0

#: Default number of cloaking requests per experiment.
DEFAULT_REQUEST_COUNT = 2_000


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """A validated bundle of all Table I parameters.

    ``uniform_bound_u`` and ``initial_bound`` are per-cluster quantities
    (``N_cluster / user_count``) and therefore computed at run time by the
    bounding layer; the helpers below expose the formulas.
    """

    user_count: int = DEFAULT_USER_COUNT
    delta: float = DEFAULT_DELTA
    max_peers: int = DEFAULT_MAX_PEERS
    k: int = DEFAULT_K
    bounding_cost: float = DEFAULT_BOUNDING_COST
    request_cost: float = DEFAULT_REQUEST_COST
    request_count: int = DEFAULT_REQUEST_COUNT
    seed: int = 2009

    def __post_init__(self) -> None:
        if self.user_count < 1:
            raise ConfigurationError(f"user_count must be >= 1, got {self.user_count}")
        if self.delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {self.delta}")
        if self.max_peers < 1:
            raise ConfigurationError(f"max_peers must be >= 1, got {self.max_peers}")
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if self.k > self.user_count:
            raise ConfigurationError(
                f"k ({self.k}) cannot exceed user_count ({self.user_count})"
            )
        if self.bounding_cost <= 0:
            raise ConfigurationError(
                f"bounding_cost must be positive, got {self.bounding_cost}"
            )
        if self.request_cost <= 0:
            raise ConfigurationError(
                f"request_cost must be positive, got {self.request_cost}"
            )
        if self.request_count < 1:
            raise ConfigurationError(
                f"request_count must be >= 1, got {self.request_count}"
            )

    def uniform_bound_u(self, cluster_size: int) -> float:
        """Table I's ``U = N / user_count`` for a cluster of size N.

        Under a uniform population, a cluster of N users is expected to
        occupy a fraction N/|D| of the unit square's area.
        """
        if cluster_size < 1:
            raise ConfigurationError(f"cluster_size must be >= 1, got {cluster_size}")
        return cluster_size / self.user_count

    def initial_bound(self, cluster_size: int) -> float:
        """Table I's initial hypothesis ``X = N / user_count`` (an area)."""
        return self.uniform_bound_u(cluster_size)

    def with_overrides(self, **changes: object) -> "SimulationConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


#: The paper's default configuration (Table I).
DEFAULTS = SimulationConfig()
