"""The write-ahead churn journal.

An append-only log of move batches, written and fsync'd *before* the
engine mutates any live structure.  Frame format, after a one-line
header::

    u32 payload length | u32 crc32(payload) | payload (UTF-8 JSON)

Each payload is ``{"seq": n, "moves": [[id, x_hex, y_hex], ...]}`` —
coordinates as :meth:`float.hex` strings, so a replayed move lands on
bit-identical binary64 positions.  ``seq`` increases monotonically
across the engine's lifetime (it does NOT reset at checkpoint
truncation), which makes replay idempotent: a snapshot records the last
seq it covers, and restore skips any journal record at or below it —
closing the crash window between "snapshot written" and "journal
truncated".

A *torn tail* — an incomplete or CRC-failing suffix, the record being
appended when the process died — is expected, reported, and discarded;
everything before it is intact because appends are the only writes.  A
corrupt *header* means the file is not a journal at all and raises
:class:`~repro.errors.PersistError`.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.errors import PersistError
from repro.geometry.point import Point
from repro.obs import names as metric

_HEADER = b"repro churn journal v1\n"
_FRAME = struct.Struct("<II")


@dataclass(frozen=True, slots=True)
class JournalRecord:
    """One recovered move batch: its seq and the decoded moves."""

    seq: int
    moves: tuple[tuple[int, Point], ...]


class ChurnJournal:
    """Append-only move-batch log at ``path`` (see module docstring)."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._handle = None

    @property
    def path(self) -> Path:
        """The journal file's location."""
        return self._path

    def _ensure_open(self):
        if self._handle is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self._path, "ab")
            if self._handle.tell() == 0:
                self._handle.write(_HEADER)
        return self._handle

    def append(self, seq: int, moves) -> int:
        """Durably append one batch; returns bytes written.

        ``moves`` is a sequence of ``(user id, Point)`` pairs.  The
        record is flushed and fsync'd before returning — once this
        method returns, the batch survives a crash.
        """
        payload = json.dumps(
            {
                "seq": int(seq),
                "moves": [
                    [int(user), point.x.hex(), point.y.hex()]
                    for user, point in moves
                ],
            },
            separators=(",", ":"),
        ).encode()
        frame = _FRAME.pack(len(payload), zlib.crc32(payload))
        handle = self._ensure_open()
        handle.write(frame)
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
        written = len(frame) + len(payload)
        if obs.enabled():
            obs.inc(metric.PERSIST_JOURNAL_RECORDS)
            obs.inc(metric.PERSIST_JOURNAL_BYTES, written)
        return written

    def records(self) -> list[JournalRecord]:
        """Every intact record, in append order (torn tail discarded)."""
        self.close()
        if not self._path.exists():
            return []
        data = self._path.read_bytes()
        if not data:
            return []
        if not _HEADER.startswith(data[: len(_HEADER)]):
            raise PersistError(f"{self._path}: not a churn journal")
        if len(data) < len(_HEADER):
            # The process died inside the very first header write.
            self._note_torn()
            return []
        out: list[JournalRecord] = []
        offset = len(_HEADER)
        torn = False
        while offset < len(data):
            if offset + _FRAME.size > len(data):
                torn = True
                break
            length, crc = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            payload = data[start : start + length]
            if len(payload) < length or zlib.crc32(payload) != crc:
                torn = True
                break
            try:
                record = json.loads(payload)
                moves = tuple(
                    (
                        int(user),
                        Point(float.fromhex(x), float.fromhex(y)),
                    )
                    for user, x, y in record["moves"]
                )
                out.append(JournalRecord(int(record["seq"]), moves))
            except (ValueError, KeyError, TypeError):
                # CRC passed but the payload is not ours — treat as torn
                # only if it is the last frame; mid-file it means the
                # file was tampered with, which we refuse to guess at.
                if start + length >= len(data):
                    torn = True
                    break
                raise PersistError(
                    f"{self._path}: undecodable record at byte {offset}"
                )
            offset = start + length
        if torn:
            self._note_torn()
        return out

    @staticmethod
    def _note_torn() -> None:
        if obs.enabled():
            obs.inc(metric.PERSIST_TORN_TAILS)

    def truncate(self) -> None:
        """Discard every record (after a checkpoint made them redundant)."""
        self.close()
        self._path.parent.mkdir(parents=True, exist_ok=True)
        with open(self._path, "wb") as handle:
            handle.write(_HEADER)
            handle.flush()
            os.fsync(handle.fileno())

    def close(self) -> None:
        """Close the append handle (reopened lazily by the next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
