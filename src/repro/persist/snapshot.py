"""Atomic snapshot directories: ``state.npz`` + ``meta.json``.

A snapshot is one directory holding the array-shaped state as an
uncompressed ``.npz`` (bit-exact binary64/int64 columns) and the
JSON-shaped state (config fingerprint, region cache, registries,
ledgers, the journal seq the snapshot covers) as ``meta.json``.

Write protocol: both files land under temporary names, are fsync'd,
then renamed — ``meta.json`` strictly last.  Its presence is the commit
marker, so :func:`read_snapshot` (and the store's latest-snapshot scan)
can never observe a half-written snapshot: a crash mid-write leaves a
directory without ``meta.json``, which readers skip and rotation
deletes.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from pathlib import Path

import numpy as np

from repro.errors import PersistError

#: Format tag stamped into every ``meta.json``.
SNAPSHOT_FORMAT = "repro-snapshot-v1"


def _fsync_write(path: Path, data: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())


def write_snapshot(
    directory: str | Path,
    arrays: dict[str, np.ndarray],
    meta: dict,
) -> Path:
    """Atomically materialise a snapshot at ``directory``.

    ``meta`` is stamped with the format tag; floats inside it must
    already be in an exactness-preserving encoding (json round-trips
    binary64 through ``repr``, which Python guarantees is exact).
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    state_bytes = buffer.getvalue()
    document = {
        "format": SNAPSHOT_FORMAT,
        "state_sha256": hashlib.sha256(state_bytes).hexdigest(),
        **meta,
    }
    tmp_state = target / "state.npz.tmp"
    tmp_meta = target / "meta.json.tmp"
    _fsync_write(tmp_state, state_bytes)
    _fsync_write(tmp_meta, json.dumps(document, sort_keys=True).encode())
    os.replace(tmp_state, target / "state.npz")
    os.replace(tmp_meta, target / "meta.json")
    return target


def read_snapshot(directory: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Load a committed snapshot; raises :class:`PersistError` otherwise."""
    target = Path(directory)
    meta_path = target / "meta.json"
    state_path = target / "state.npz"
    if not meta_path.exists():
        raise PersistError(f"{target}: no committed snapshot (meta.json missing)")
    try:
        meta = json.loads(meta_path.read_text())
    except ValueError as exc:
        raise PersistError(f"{meta_path}: corrupt snapshot metadata") from exc
    if meta.get("format") != SNAPSHOT_FORMAT:
        raise PersistError(
            f"{meta_path}: unsupported snapshot format "
            f"{meta.get('format')!r} (expected {SNAPSHOT_FORMAT!r})"
        )
    if not state_path.exists():
        raise PersistError(f"{target}: snapshot arrays missing (state.npz)")
    state_bytes = state_path.read_bytes()
    expected = meta.get("state_sha256")
    if expected is not None:
        digest = hashlib.sha256(state_bytes).hexdigest()
        if digest != expected:
            raise PersistError(
                f"{state_path}: snapshot arrays corrupt "
                f"(sha256 {digest[:12]}..., recorded {expected[:12]}...)"
            )
    with np.load(io.BytesIO(state_bytes)) as bundle:
        arrays = {key: bundle[key].copy() for key in bundle.files}
    return arrays, meta
