"""One directory binding journal + snapshot rotation together.

Layout under ``root``::

    journal.wal            the write-ahead churn log
    snapshots/<seq>/       one committed snapshot per checkpoint,
                           named by the journal seq it covers

:meth:`PersistentStore.checkpoint` is the full rotation — write the
snapshot, truncate the journal, prune old snapshots — but its two
halves (:meth:`write_snapshot` / :meth:`truncate_journal`) are exposed
separately so the crash suite can die *between* them and prove the
monotonic-seq replay guard covers that window.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import PersistError
from repro.persist.journal import ChurnJournal
from repro.persist import snapshot as snapshot_io

#: Snapshots kept after pruning (the newest plus one fallback).
KEEP_SNAPSHOTS = 2


class PersistentStore:
    """Durable home of one engine's state (see module docstring)."""

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._journal = ChurnJournal(self._root / "journal.wal")

    @property
    def root(self) -> Path:
        """The store's directory."""
        return self._root

    @property
    def journal(self) -> ChurnJournal:
        """The write-ahead churn log."""
        return self._journal

    @property
    def snapshots_dir(self) -> Path:
        """Where committed snapshots live."""
        return self._root / "snapshots"

    # -- checkpoint halves (separable for crash-window tests) ----------------

    def write_snapshot(
        self, seq: int, arrays: dict[str, np.ndarray], meta: dict
    ) -> Path:
        """Commit a snapshot covering journal records up to ``seq``."""
        directory = self.snapshots_dir / f"{seq:012d}"
        return snapshot_io.write_snapshot(
            directory, arrays, {**meta, "journal_seq": int(seq)}
        )

    def truncate_journal(self) -> None:
        """Drop every journal record (they are covered by a snapshot)."""
        self._journal.truncate()

    def prune(self, keep: int = KEEP_SNAPSHOTS) -> int:
        """Delete all but the newest ``keep`` committed snapshots.

        Uncommitted directories (no ``meta.json`` — a crash mid-write)
        are always removed.  Returns the number of directories deleted.
        """
        base = self.snapshots_dir
        if not base.exists():
            return 0
        committed: list[Path] = []
        removed = 0
        for entry in sorted(base.iterdir()):
            if (entry / "meta.json").exists():
                committed.append(entry)
            else:
                _rmtree(entry)
                removed += 1
        for stale in committed[:-keep] if keep else committed:
            _rmtree(stale)
            removed += 1
        return removed

    def checkpoint(
        self, seq: int, arrays: dict[str, np.ndarray], meta: dict
    ) -> Path:
        """Snapshot + journal truncation + pruning, in that order."""
        path = self.write_snapshot(seq, arrays, meta)
        self.truncate_journal()
        self.prune()
        return path

    # -- restore side --------------------------------------------------------

    def latest_snapshot(self) -> tuple[dict[str, np.ndarray], dict] | None:
        """The newest committed snapshot, or None if there is none."""
        base = self.snapshots_dir
        if not base.exists():
            return None
        for entry in sorted(base.iterdir(), reverse=True):
            if (entry / "meta.json").exists():
                return snapshot_io.read_snapshot(entry)
        return None

    def require_latest_snapshot(self) -> tuple[dict[str, np.ndarray], dict]:
        """Like :meth:`latest_snapshot` but a typed error when empty."""
        found = self.latest_snapshot()
        if found is None:
            raise PersistError(f"{self._root}: no snapshot to restore from")
        return found

    def close(self) -> None:
        """Release the journal's append handle."""
        self._journal.close()


def _rmtree(path: Path) -> None:
    for child in sorted(path.iterdir(), reverse=True):
        if child.is_dir():
            _rmtree(child)
        else:
            child.unlink()
    path.rmdir()
