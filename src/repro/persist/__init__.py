"""Durable engine state: snapshots plus a write-ahead churn journal.

The engine's live state — grid, WPG, cluster tree, region cache,
registries, ledgers — is expensive to rebuild and, until this package,
died with the process.  Durability here is the classic two-piece design:

* :mod:`repro.persist.snapshot` — a versioned point-in-time capture:
  one ``state.npz`` of numpy columns for the array-shaped state and one
  ``meta.json`` for everything JSON-shaped, written atomically
  (temp-then-rename, ``meta.json`` last as the commit marker);
* :mod:`repro.persist.journal` — an append-only, CRC-framed,
  fsync-per-batch log of churn move batches, written *before* the live
  structures mutate.  A torn tail (the batch being appended when the
  process died) is detected and discarded, never half-applied.

:class:`repro.persist.store.PersistentStore` binds the two under one
directory and owns rotation; ``CloakingEngine.checkpoint`` /
``CloakingEngine.restore`` are the engine-side entry points.  Restore =
latest snapshot + journal replay through the same incremental kernels
the live path uses, so the restarted engine is bit-identical to the
uninterrupted run — the ``snapshot-replay-equal`` fuzz invariant and the
crash-point suite in ``tests/test_persist_recovery.py`` hold that line.
"""

from repro.persist.journal import ChurnJournal, JournalRecord
from repro.persist.snapshot import (
    SNAPSHOT_FORMAT,
    read_snapshot,
    write_snapshot,
)
from repro.persist.store import PersistentStore

__all__ = [
    "ChurnJournal",
    "JournalRecord",
    "PersistentStore",
    "SNAPSHOT_FORMAT",
    "read_snapshot",
    "write_snapshot",
]
