"""Cluster-isolation verification (paper Property 4.1 and Theorem 4.4).

Property 4.1: a cluster C(u) is *isolated* if for every other vertex v,
the cluster C(v) computed on the remaining graph G - C(u) equals the one
computed on G.  An algorithm is cluster-isolated when every cluster it
produces is isolated.

These checkers make the property executable: they compare, vertex by
vertex, the per-vertex smallest valid t-connectivity clusters before and
after removing a cluster.  The property tests use them to validate
Theorem 4.4's sufficient condition, and to exhibit the paper's own
counterexamples (plain kNN is not cluster-isolated).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.graph.dendrogram import (
    single_linkage_dendrogram,
    smallest_valid_component,
)
from repro.graph.wpg import WeightedProximityGraph

#: A clustering rule: (graph, vertex, k) -> cluster or None when impossible.
ClusterRule = Callable[[WeightedProximityGraph, int, int], Optional[set[int]]]


def smallest_valid_cluster_rule(
    graph: WeightedProximityGraph, vertex: int, k: int
) -> Optional[set[int]]:
    """The paper's canonical rule: smallest valid t-connectivity cluster.

    Computed via the dendrogram: the lowest t-component containing
    ``vertex`` with size >= k, or None when the vertex's whole component
    is too small.
    """
    roots = single_linkage_dendrogram(graph)
    return smallest_valid_component(roots, vertex, k)


def isolation_counterexample(
    graph: WeightedProximityGraph,
    cluster: set[int],
    k: int,
    rule: ClusterRule = smallest_valid_cluster_rule,
    witnesses: Optional[Iterable[int]] = None,
) -> Optional[int]:
    """A vertex whose cluster changes when ``cluster`` is removed, or None.

    ``witnesses`` restricts which remaining vertices are checked (default:
    all of them).  "Changes" includes becoming impossible: a vertex that
    had a valid cluster in G but none in G - cluster is a counterexample
    (paper Fig. 5's vertex g).
    """
    remaining = [v for v in graph.vertices() if v not in cluster]
    reduced = graph.subgraph(remaining)
    pool = witnesses if witnesses is not None else remaining
    for vertex in pool:
        if vertex in cluster:
            continue
        before = rule(graph, vertex, k)
        after = rule(reduced, vertex, k)
        if before != after:
            return vertex
    return None


def is_cluster_isolated(
    graph: WeightedProximityGraph,
    cluster: set[int],
    k: int,
    rule: ClusterRule = smallest_valid_cluster_rule,
) -> bool:
    """True when removing ``cluster`` changes no other vertex's cluster."""
    return isolation_counterexample(graph, cluster, k, rule=rule) is None


def border_condition_holds(
    graph: WeightedProximityGraph, cluster: set[int], t: float, k: int
) -> bool:
    """Theorem 4.4's sufficient condition, stated directly.

    Every external border vertex of ``cluster`` must have a t-connectivity
    cluster of size >= k in the remaining WPG.
    """
    from repro.graph.components import external_border, t_component

    remaining_exclude = set(cluster)
    for vertex in external_border(graph, cluster, cluster):
        component = t_component(
            graph, vertex, t, exclude=remaining_exclude, size_limit=k
        )
        if len(component) < k:
            return False
    return True
