"""Tree-backed distributed k-clustering: Algorithm 2 by ancestor walks.

:class:`TreeClustering` serves the same requests as
``DistributedClustering(graph, k, registry, method, closure=True)`` — the
t-reachability-closure reading of Algorithm 2 — but resolves them against
a persistent :class:`~repro.graph.cluster_tree.ClusterTree` instead of
re-running Prim spans and t-component floods per request:

* **Step 1** (smallest valid t-connectivity cluster): under closure the
  gathered set is the full t-component at the minimal t whose component
  holds >= k users — exactly the lowest dendrogram ancestor of the host
  with >= k leaves (:meth:`ClusterTree.smallest_valid_node`), one
  O(depth) walk.
* **Step 2** (Theorem 4.4 isolation): a border vertex b's test "does b
  have a valid t-cluster in the remaining WPG" is ``node_at(b, t)`` has
  >= k leaves (same-level t-components are disjoint, so excluding the
  host's cluster from b's flood changes nothing).  A merge raises t to
  the connecting weight; the re-closed cluster is then just a higher
  ancestor of the host (the border edge's weight exceeds t, so t grows
  strictly and the cluster stays a t-component) — ``node_at(host, t)``.
* **Step 3**: :meth:`ClusterTree.node_partition` — the identical
  ``centralized_k_clustering`` call the distributed path makes, memoized
  per node, so repeated requests inside one component never re-run a
  greedy refinement.

The tree answers are assignment-*oblivious*: they ignore the registry
exclusions the distributed path applies everywhere.  Theorem 4.4 makes
that sound — every registered cluster was isolation-enforced, so its
removal never changes an outside resolution — but the service does not
*assume* it: the tree tracks assigned users as marked leaves, and the
moment any consulted node contains one, the request falls back to a real
:class:`DistributedClustering` pass (exclusion-aware, unconditionally
correct).  Correctness therefore never depends on the theorem; the
theorem only predicts the fallback is rare.  The ``cluster-tree-equal``
fuzz invariant cross-validates the two services record for record.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from repro import obs
from repro.errors import ClusteringError, ConfigurationError
from repro.clustering.base import ClusterRegistry, ClusterResult
from repro.clustering.centralized import Method
from repro.clustering.distributed import DistributedClustering
from repro.graph.cluster_tree import ClusterTree, NodeRef
from repro.graph.components import external_border
from repro.graph.incremental import ChurnPatch
from repro.graph.wpg import WeightedProximityGraph
from repro.obs import names as metric


class TreeClustering:
    """Answers k-clustering requests via a persistent cluster tree.

    Drop-in for :class:`DistributedClustering` in its ``closure=True``
    configuration: identical member sets, registered clusters,
    connectivity values and error messages (``involved`` counts measure
    the *distributed* protocol's communication cost and are reported the
    same way, but a tree walk consults the same users without messaging
    them — the fuzz invariant compares members, not meters).

    Parameters
    ----------
    graph:
        The WPG; the same live object the engine patches under churn.
    k:
        Anonymity requirement.
    registry:
        Shared assignment registry; a fresh one is created when omitted.
        Pre-assigned users are adopted as marked leaves.
    method:
        Step-3 partition semantics (:mod:`repro.clustering.centralized`).
    tree:
        An existing :class:`ClusterTree` over ``graph`` to adopt; built
        fresh when omitted.
    """

    def __init__(
        self,
        graph: WeightedProximityGraph,
        k: int,
        registry: Optional[ClusterRegistry] = None,
        method: Method = "greedy",
        tree: Optional[ClusterTree] = None,
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self._graph = graph
        self._k = k
        self._registry = registry if registry is not None else ClusterRegistry()
        self._method = method
        if tree is None:
            with obs.span(metric.SPAN_TREE_BUILD):
                tree = ClusterTree(graph)
        self._tree = tree
        self._fallback = DistributedClustering(
            graph, k, self._registry, method=method, closure=True
        )
        if self._registry.assigned_count:
            self._tree.mark(self._registry.assigned_view())

    @property
    def registry(self) -> ClusterRegistry:
        """The shared cluster-assignment registry."""
        return self._registry

    @property
    def k(self) -> int:
        """The anonymity requirement."""
        return self._k

    @property
    def tree(self) -> ClusterTree:
        """The underlying cluster tree (shared, live)."""
        return self._tree

    def request(self, host: int) -> ClusterResult:
        """Serve one cloaking request; registers every cluster it forms."""
        if host not in self._graph:
            raise ClusteringError(f"unknown host {host}")
        cached = self._registry.cluster_of(host)
        if cached is not None:
            if obs.enabled():
                obs.inc(metric.CLUSTERING_REQUESTS)
                obs.inc(metric.CLUSTERING_CACHE_HITS)
            return ClusterResult(host, cached, involved=0, from_cache=True)
        result = self._fast_request(host)
        if result is None:
            result = self._fallback_request(host)
        return result

    def adopt(self, members: Iterable[int]) -> None:
        """Mark members of an externally registered cluster.

        The engine's replica-sync path (``CloakingEngine.adopt_cluster``)
        registers the cluster in the shared registry and then calls this
        hook so the tree's marked-leaf bookkeeping matches what it would
        be had this service formed the cluster itself.
        """
        self._tree.mark(members)

    def apply_churn_patch(self, patch: ChurnPatch) -> int:
        """Consume a churn patch: re-derive the disturbed component trees.

        Returns the number of component trees rebuilt.  The engine calls
        this from ``apply_moves`` right after the incremental WPG patch,
        so the tree tracks the live graph batch for batch.
        """
        with obs.span(metric.SPAN_TREE_PATCH):
            rebuilt = self._tree.apply_patch(patch)
        if rebuilt and obs.enabled():
            obs.inc(metric.CLUSTERING_TREE_REBUILDS, rebuilt)
        return rebuilt

    # -- the tree fast path ----------------------------------------------------

    def _fast_request(self, host: int) -> Optional[ClusterResult]:
        """Resolve by tree walks, or None when a marked node forces fallback."""
        tree, k = self._tree, self._k
        with obs.span(metric.SPAN_PROPOSE):
            # Step 1: the lowest ancestor with >= k leaves IS the closed
            # smallest valid cluster.  A component below k fails cleanly
            # with the distributed path's exact message (marks can only
            # shrink the reachable set further, so no fallback needed).
            node = tree.smallest_valid_node(host, k)
            if node is None:
                if obs.enabled():
                    obs.inc(metric.CLUSTERING_REQUESTS)
                raise ClusteringError(
                    f"host {host}: fewer than k={k} reachable users remain"
                )
            if tree.marked_below(node):
                return None
            grown = self._enforce_isolation_by_tree(host, node)
            if grown is None:
                return None
            cluster_node, t, involved = grown
            # Step 3: memoized partition of the gathered node.  Every
            # group is conflict-free (the node is unmarked) and k-valid.
            groups = tree.node_partition(cluster_node, k, self._method)
        host_cluster: Optional[frozenset[int]] = None
        for group in groups:
            cluster_id = self._registry.register(group)
            if host in group:
                host_cluster = self._registry.cluster_by_id(cluster_id)
        if host_cluster is None:  # pragma: no cover - partition covers the node
            raise ClusteringError(
                f"partition of the gathered cluster lost host {host}"
            )
        tree.mark(tree.leaves(cluster_node))
        if obs.enabled():
            obs.inc(metric.CLUSTERING_REQUESTS)
            obs.inc(metric.CLUSTERING_INVOLVED_USERS, involved)
            obs.inc(metric.CLUSTERING_TREE_FAST)
        return ClusterResult(
            host, host_cluster, involved=involved, connectivity=t
        )

    def _enforce_isolation_by_tree(
        self, host: int, node: NodeRef
    ) -> Optional[tuple[NodeRef, float, int]]:
        """Step 2's border loop with tree lookups for every decision.

        Mirrors ``DistributedClustering._enforce_isolation`` under
        closure: the queue, pass/merge decisions and re-closure all
        resolve through the tree.  Returns ``(cluster node, t,
        involved)`` or None when any consulted node is marked.
        ``involved`` counts the distinct non-host users the distributed
        protocol would touch: cluster members plus checked borders.
        """
        tree, k, graph = self._tree, self._k, self._graph
        t = tree.weight(node)
        members = tree.leaves(node)
        involved: set[int] = set(members)
        queue = deque(sorted(self._border_of(members)))
        passed: set[int] = set()
        checks = 0
        merges = 0
        while queue:
            vertex = queue.popleft()
            if vertex in members or vertex in passed:
                continue
            involved.add(vertex)
            checks += 1
            # Line 11: b's t-component in the remaining WPG.  Same-level
            # t-components are disjoint, so the host's cluster never
            # intersects it and the raw tree node is the exact flood —
            # unless marked leaves would have been excluded.
            border_node = tree.node_at(vertex, t)
            if tree.marked_below(border_node):
                return None
            if tree.size(border_node) >= k:
                passed.add(vertex)
                continue
            merges += 1
            # Merge and re-close: the connecting weight exceeds t (the
            # vertex was outside the t-component), so t grows strictly
            # and the re-closed cluster is node_at(host, new t).
            connect_weight = min(
                weight
                for neighbor, weight in graph.neighbor_weights(vertex)
                if neighbor in members
            )
            t = max(t, connect_weight)
            node = tree.node_at(host, t)
            if tree.marked_below(node):
                return None
            members = tree.leaves(node)
            involved.update(members)
            queue.extend(sorted(self._border_of(members) - passed))
        if checks and obs.enabled():
            obs.inc(metric.CLUSTERING_ISOLATION_CHECKS, checks)
            obs.inc(metric.CLUSTERING_ISOLATION_MERGES, merges)
        involved.discard(host)
        return node, t, len(involved)

    def _border_of(self, members: frozenset[int]) -> set[int]:
        """External border minus assigned users, as the distributed path."""
        return {
            v
            for v in external_border(self._graph, members, members)
            if v not in self._registry
        }

    # -- the exclusion-aware fallback ------------------------------------------

    def _fallback_request(self, host: int) -> ClusterResult:
        """Delegate to the real distributed path (marked node en route)."""
        if obs.enabled():
            obs.inc(metric.CLUSTERING_TREE_FALLBACKS)
        proposal = self._fallback.propose(host)
        result = self._fallback.commit(proposal)
        self._tree.mark(proposal.members())
        return result
