"""Message-level execution of the distributed clustering (Fig. 3, path 2).

The analytic :class:`~repro.clustering.distributed.DistributedClustering`
reads the WPG directly; here the *same algorithm code* runs over a
:class:`~repro.network.remote_graph.RemoteGraphView`, so every adjacency
read the host performs becomes an ``adjacency`` RPC on the peer network —
with real message counting and real failure injection.  The test suite
asserts the message-level run produces the identical cluster and that
its distinct-fetch count equals the analytic involved-user count.

With a :class:`~repro.network.reliability.ReliabilityPolicy` the request
degrades gracefully instead of propagating transport failures: calls go
through a :class:`~repro.network.reliability.ReliableTransport` (retries
with backoff, idempotent redelivery, crash detection), a peer declared
crashed is *evicted* — excluded from every traversal — and the cluster
re-forms from scratch among the survivors.  When fewer than k reachable
users remain, or the re-formation budget runs out, the request raises a
typed clean :class:`~repro.network.reliability.ProtocolAbort`; the
registry is never touched by a failed request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro import obs
from repro.errors import ClusteringError
from repro.clustering.base import ClusterRegistry, ClusterResult
from repro.clustering.centralized import Method
from repro.clustering.distributed import DistributedClustering
from repro.graph.wpg import WeightedProximityGraph
from repro.network.reliability import (
    ABORT_BELOW_K,
    ABORT_HOST_FAILED,
    ABORT_MESSAGE_LOSS,
    ABORT_REFORM_BUDGET,
    ReliabilityPolicy,
    ReliableTransport,
    abort,
    resolve,
)
from repro.network.remote_graph import RemoteGraphView
from repro.network.simulator import MessageDropped, PeerCrashed, PeerNetwork
from repro.obs import names as metric
from repro.obs import trace as _trace

_EMPTY: frozenset[int] = frozenset()


@dataclass(frozen=True, slots=True)
class ProtocolRunReport:
    """Outcome of one message-level clustering request.

    ``evicted`` and ``reforms`` are only ever non-trivial under a
    reliability policy: the peers removed for unresponsiveness and the
    number of from-scratch re-formations the request needed.
    """

    result: ClusterResult
    adjacency_fetches: int
    messages_sent: int
    messages_dropped: int
    evicted: frozenset[int] = _EMPTY
    reforms: int = 0


class P2PClusteringProtocol:
    """Runs distributed t-connectivity k-clustering over a peer network."""

    def __init__(
        self,
        network: PeerNetwork,
        graph: WeightedProximityGraph,
        k: int,
        registry: Optional[ClusterRegistry] = None,
        method: Method = "greedy",
        retries: int = 0,
        reliability: Optional[ReliabilityPolicy] = None,
        transport: Optional[ReliableTransport] = None,
    ) -> None:
        self._network = network
        self._graph = graph  # only consulted for the host's own adjacency
        self._k = k
        self._registry = registry if registry is not None else ClusterRegistry()
        self._method = method
        self._retries = retries
        self._reliability = resolve(reliability)
        if self._reliability is not None:
            self._transport = (
                transport
                if transport is not None
                else ReliableTransport(network, self._reliability)
            )
        else:
            self._transport = None
        self._evicted: set[int] = set()

    @property
    def registry(self) -> ClusterRegistry:
        """The shared cluster-assignment registry."""
        return self._registry

    @property
    def evicted(self) -> frozenset[int]:
        """Peers evicted for unresponsiveness (reliability runs only)."""
        return frozenset(self._evicted)

    def request(self, host: int) -> ProtocolRunReport:
        """Serve one request entirely through network messages.

        Without a reliability policy a transport failure (dropped beyond
        the retry budget, crashed peer) propagates as a
        :class:`~repro.errors.ProtocolError`; with one, the protocol
        evicts crashed peers and re-forms, aborting cleanly with
        :class:`~repro.network.reliability.ProtocolAbort` only when the
        survivors cannot satisfy k.  Either way the registry is only
        updated on success, so a failed request leaves no partial state.
        """
        if host not in self._graph:
            raise ClusteringError(f"unknown host {host}")
        if self._reliability is None:
            return self._request_once(host, self._network, self._retries)
        return self._request_reliable(host)

    # -- failure-oblivious path (the seed behavior) ------------------------------

    def _request_once(
        self,
        host: int,
        network: "PeerNetwork | ReliableTransport",
        retries: int,
        reforms: int = 0,
    ) -> ProtocolRunReport:
        sent_before = network.stats.sent
        dropped_before = network.stats.dropped
        view = RemoteGraphView(
            network,
            host,
            self._host_adjacency(host),
            retries=retries,
        )
        # The algorithm is oblivious to where adjacency comes from: give
        # it the remote view in place of the graph.  Step 3 (the final
        # centralized partition) runs on the gathered subgraph, which we
        # materialise from the view's cache — no extra messages.
        runner = DistributedClustering(
            _MaterializingView(view, self._graph, self._evicted),  # type: ignore[arg-type]
            self._k,
            registry=self._registry,
            method=self._method,
        )
        result = runner.request(host)
        recorder = _trace._recorder
        if recorder is not None:
            recorder.record(
                _trace.EVT_CLUSTER_FORMED, host=host, size=result.size,
                from_cache=result.from_cache, fetches=view.fetched,
                reforms=reforms,
            )
        return ProtocolRunReport(
            result=result,
            adjacency_fetches=view.fetched,
            messages_sent=network.stats.sent - sent_before,
            messages_dropped=network.stats.dropped - dropped_before,
            evicted=frozenset(self._evicted),
            reforms=reforms,
        )

    def _host_adjacency(self, host: int) -> dict[int, float]:
        adjacency = self._graph.adjacency_message(host)
        if not self._evicted:
            return adjacency
        return {v: w for v, w in adjacency.items() if v not in self._evicted}

    # -- fault-tolerant path -----------------------------------------------------

    def _request_reliable(self, host: int) -> ProtocolRunReport:
        policy = self._reliability
        transport = self._transport
        assert policy is not None and transport is not None
        recording = obs.enabled()
        reforms = 0
        while True:
            try:
                return self._request_once(host, transport, 0, reforms)
            except PeerCrashed as exc:
                peer = exc.peer
                if peer is None or peer == host:
                    raise abort(
                        ABORT_HOST_FAILED,
                        f"host {host} cannot reach the network: {exc}",
                        host=host,
                        evicted=self._evicted,
                    ) from exc
                if peer not in self._evicted:
                    self._evicted.add(peer)
                    recorder = _trace._recorder
                    if recorder is not None:
                        recorder.record(
                            _trace.EVT_EVICTION, peer=peer, host=host,
                            phase="clustering",
                        )
                if recording:
                    obs.inc(metric.CLUSTERING_EVICTIONS)
            except MessageDropped as exc:
                # Persistent loss below the suspicion threshold: nobody
                # to evict, but a fresh formation redraws the dice.
                if reforms >= policy.max_reforms:
                    raise abort(
                        ABORT_MESSAGE_LOSS,
                        f"host {host}: message loss persisted through "
                        f"{reforms} re-formation(s): {exc}",
                        host=host,
                        evicted=self._evicted,
                    ) from exc
            except ClusteringError as exc:
                # The algorithm itself gave up: with evictions applied the
                # remaining reachable WPG cannot produce a >= k cluster.
                raise abort(
                    ABORT_BELOW_K,
                    f"host {host}: {exc}",
                    host=host,
                    evicted=self._evicted,
                ) from exc
            reforms += 1
            if reforms > policy.max_reforms:
                raise abort(
                    ABORT_REFORM_BUDGET,
                    f"host {host}: re-formation budget "
                    f"({policy.max_reforms}) exhausted",
                    host=host,
                    evicted=self._evicted,
                )
            if recording:
                obs.inc(metric.CLUSTERING_REFORMS)
            recorder = _trace._recorder
            if recorder is not None:
                recorder.record(
                    _trace.EVT_CLUSTER_REFORMED, host=host, reforms=reforms,
                    evicted=len(self._evicted),
                )


class _MaterializingView:
    """Adapter giving the remote view the full WPG read surface.

    Traversals only need ``neighbor_weights``/``neighbors``/``__contains__``,
    which route through the remote view (and therefore the network).  The
    final ``subgraph`` call — Algorithm 2's step 3, running on data the
    host has already gathered — is served from the fetch cache via the
    underlying graph, costing no additional messages.

    ``evicted`` peers are filtered from every read: an evicted peer is
    invisible to the traversal, exactly as if its radio went silent.
    """

    def __init__(
        self,
        view: RemoteGraphView,
        graph: WeightedProximityGraph,
        evicted: "set[int] | frozenset[int]" = _EMPTY,
    ) -> None:
        self._view = view
        self._graph = graph
        self._evicted = evicted

    def __contains__(self, vertex: int) -> bool:
        return vertex not in self._evicted and vertex in self._graph

    def neighbor_weights(self, vertex: int) -> Iterator[tuple[int, float]]:
        """Iterate ``(neighbor, weight)`` pairs of ``vertex``."""
        if not self._evicted:
            return self._view.neighbor_weights(vertex)
        return (
            (neighbor, weight)
            for neighbor, weight in self._view.neighbor_weights(vertex)
            if neighbor not in self._evicted
        )

    def neighbors(self, vertex: int) -> Iterator[int]:
        """Iterate the neighbors of ``vertex``."""
        if not self._evicted:
            return self._view.neighbors(vertex)
        return (n for n in self._view.neighbors(vertex) if n not in self._evicted)

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``."""
        return self._view.weight(u, v)

    def degree(self, vertex: int) -> int:
        """Number of neighbors of ``vertex``."""
        if not self._evicted:
            return self._view.degree(vertex)
        return sum(1 for _ in self.neighbors(vertex))

    def subgraph(self, vertices):
        """The induced subgraph on ``vertices``."""
        return self._graph.subgraph(vertices)

    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return self._graph.vertex_count
