"""Message-level execution of the distributed clustering (Fig. 3, path 2).

The analytic :class:`~repro.clustering.distributed.DistributedClustering`
reads the WPG directly; here the *same algorithm code* runs over a
:class:`~repro.network.remote_graph.RemoteGraphView`, so every adjacency
read the host performs becomes an ``adjacency`` RPC on the peer network —
with real message counting and real failure injection.  The test suite
asserts the message-level run produces the identical cluster and that
its distinct-fetch count equals the analytic involved-user count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ClusteringError
from repro.clustering.base import ClusterRegistry, ClusterResult
from repro.clustering.centralized import Method
from repro.clustering.distributed import DistributedClustering
from repro.graph.wpg import WeightedProximityGraph
from repro.network.remote_graph import RemoteGraphView
from repro.network.simulator import PeerNetwork


@dataclass(frozen=True, slots=True)
class ProtocolRunReport:
    """Outcome of one message-level clustering request."""

    result: ClusterResult
    adjacency_fetches: int
    messages_sent: int
    messages_dropped: int


class P2PClusteringProtocol:
    """Runs distributed t-connectivity k-clustering over a peer network."""

    def __init__(
        self,
        network: PeerNetwork,
        graph: WeightedProximityGraph,
        k: int,
        registry: Optional[ClusterRegistry] = None,
        method: Method = "greedy",
        retries: int = 0,
    ) -> None:
        self._network = network
        self._graph = graph  # only consulted for the host's own adjacency
        self._k = k
        self._registry = registry if registry is not None else ClusterRegistry()
        self._method = method
        self._retries = retries

    @property
    def registry(self) -> ClusterRegistry:
        """The shared cluster-assignment registry."""
        return self._registry

    def request(self, host: int) -> ProtocolRunReport:
        """Serve one request entirely through network messages.

        A transport failure (dropped beyond the retry budget, crashed
        peer) propagates as a :class:`~repro.errors.ProtocolError`; the
        registry is only updated on success, so a failed request leaves
        no partial state behind.
        """
        if host not in self._graph:
            raise ClusteringError(f"unknown host {host}")
        sent_before = self._network.stats.sent
        dropped_before = self._network.stats.dropped
        view = RemoteGraphView(
            self._network,
            host,
            self._graph.adjacency_message(host),
            retries=self._retries,
        )
        # The algorithm is oblivious to where adjacency comes from: give
        # it the remote view in place of the graph.  Step 3 (the final
        # centralized partition) runs on the gathered subgraph, which we
        # materialise from the view's cache — no extra messages.
        runner = DistributedClustering(
            _MaterializingView(view, self._graph),  # type: ignore[arg-type]
            self._k,
            registry=self._registry,
            method=self._method,
        )
        result = runner.request(host)
        return ProtocolRunReport(
            result=result,
            adjacency_fetches=view.fetched,
            messages_sent=self._network.stats.sent - sent_before,
            messages_dropped=self._network.stats.dropped - dropped_before,
        )


class _MaterializingView:
    """Adapter giving the remote view the full WPG read surface.

    Traversals only need ``neighbor_weights``/``neighbors``/``__contains__``,
    which route through the remote view (and therefore the network).  The
    final ``subgraph`` call — Algorithm 2's step 3, running on data the
    host has already gathered — is served from the fetch cache via the
    underlying graph, costing no additional messages.
    """

    def __init__(self, view: RemoteGraphView, graph: WeightedProximityGraph) -> None:
        self._view = view
        self._graph = graph

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._graph

    def neighbor_weights(self, vertex: int):
        """Iterate ``(neighbor, weight)`` pairs of ``vertex``."""
        return self._view.neighbor_weights(vertex)

    def neighbors(self, vertex: int):
        """Iterate the neighbors of ``vertex``."""
        return self._view.neighbors(vertex)

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``."""
        return self._view.weight(u, v)

    def degree(self, vertex: int) -> int:
        """Number of neighbors of ``vertex``."""
        return self._view.degree(vertex)

    def subgraph(self, vertices):
        """The induced subgraph on ``vertices``."""
        return self._graph.subgraph(vertices)

    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return self._graph.vertex_count
