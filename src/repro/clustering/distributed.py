"""Distributed t-connectivity k-clustering (paper Algorithm 2).

The host user finds its *smallest valid t-connectivity cluster* locally
(step 1), enlarges it until Theorem 4.4's sufficient condition for
cluster-isolation holds (step 2), and finally runs the centralized
Algorithm 1 on the gathered cluster to carve out the minimum-MEW cluster
containing the host (step 3).

Step 1 is a Prim-style span: repeatedly absorb the minimum-weight frontier
edge until |C| = k.  By the minimax-path property of Prim's algorithm, the
maximum weight popped so far is then exactly the minimal connectivity t
whose t-component around the host holds >= k users.

Two readings of "the smallest valid t-connectivity cluster" exist and we
implement both (``closure`` flag):

* ``closure=False`` (default) — C is the bare Prim result of size k.
  This matches the paper's Fig. 7 walkthrough (a vertex adjacent to the
  grown cluster stays an *external border vertex* instead of being
  absorbed) and its measured communication costs (~2-3x k involved
  users); the theoretical t-component can be 50x larger near the
  percolation threshold of rank-weighted WPGs, which would contradict
  Fig. 9a.
* ``closure=True`` — C is closed under t-reachability, i.e. the full
  t-connectivity equivalence class Theorem 4.4 is stated over.  Used by
  the isolation property tests and the closure ablation benchmark.

Step 2 checks every external border vertex v: if v has no t-connectivity
cluster of size >= k in the remaining WPG, v is merged into C, t grows to
the connecting weight (re-closing when ``closure=True``), and newly
exposed border vertices join the queue.  A vertex that passes once is
never re-checked (the paper's observation: t only increases).

All traversals exclude already-assigned users (the registry), because a
user belongs to exactly one cluster forever (reciprocity).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Container, Optional

from repro import obs
from repro.errors import ClusteringError, ConfigurationError
from repro.clustering.base import ClusterRegistry, ClusterResult, InvolvementMeter
from repro.obs import names as metric
from repro.clustering.centralized import Method, centralized_k_clustering
from repro.graph.components import external_border, t_component
from repro.graph.wpg import WeightedProximityGraph

if TYPE_CHECKING:  # pragma: no cover - typing only (no runtime import)
    from repro.graph.cluster_tree import ClusterTree

_EMPTY: frozenset[int] = frozenset()


@dataclass(frozen=True, slots=True)
class ClusterProposal:
    """The uncommitted outcome of one distributed clustering computation."""

    host: int
    groups: tuple[frozenset[int], ...] | list[frozenset[int]]
    involved: int
    connectivity: float

    def members(self) -> frozenset[int]:
        """Every user any of the proposal's groups would claim."""
        result: set[int] = set()
        for group in self.groups:
            result |= group
        return frozenset(result)


class DistributedClustering:
    """Answers k-clustering requests one host at a time (Algorithm 2).

    Parameters
    ----------
    graph:
        The WPG; never mutated.
    k:
        Anonymity requirement.
    registry:
        Cluster assignments shared across requests; a fresh one is created
        when omitted.  Cached hosts are answered at zero cost.
    method:
        Partition semantics for step 3 (see
        :mod:`repro.clustering.centralized`).
    tree:
        Optional :class:`~repro.graph.cluster_tree.ClusterTree` over the
        same graph.  Only consulted for step 1 under ``closure=True``
        while no user is assigned yet (the tree is assignment-oblivious;
        with exclusions in play the Prim span runs as before): the
        closed smallest valid cluster is then the host's lowest
        dendrogram ancestor with >= k leaves, one O(depth) walk instead
        of a Prim span plus t-flood.
    """

    def __init__(
        self,
        graph: WeightedProximityGraph,
        k: int,
        registry: Optional[ClusterRegistry] = None,
        method: Method = "greedy",
        closure: bool = False,
        tree: "Optional[ClusterTree]" = None,
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self._graph = graph
        self._k = k
        self._registry = registry if registry is not None else ClusterRegistry()
        self._method = method
        self._closure = closure
        self._tree = tree

    @property
    def registry(self) -> ClusterRegistry:
        """The shared cluster-assignment registry."""
        return self._registry

    @property
    def k(self) -> int:
        """The anonymity requirement."""
        return self._k

    def request(self, host: int) -> ClusterResult:
        """Serve one cloaking request; registers every cluster it forms."""
        cached = self._cached_result(host)
        if cached is not None:
            return cached
        return self.commit(self.propose(host))

    def _cached_result(self, host: int) -> Optional[ClusterResult]:
        if host not in self._graph:
            raise ClusteringError(f"unknown host {host}")
        cached = self._registry.cluster_of(host)
        if cached is not None:
            if obs.enabled():
                obs.inc(metric.CLUSTERING_REQUESTS)
                obs.inc(metric.CLUSTERING_CACHE_HITS)
            return ClusterResult(host, cached, involved=0, from_cache=True)
        return None

    def propose(self, host: int) -> "ClusterProposal":
        """Compute the clusters one request would form, without committing.

        The propose/commit split exists for the concurrency controller
        (Section VII): several hosts may propose against the same registry
        snapshot, and only the commit detects conflicts.
        """
        if host not in self._graph:
            raise ClusteringError(f"unknown host {host}")
        if host in self._registry:
            raise ClusteringError(f"host {host} is already clustered")
        with obs.span(metric.SPAN_PROPOSE):
            exclude = self._registry.assigned_view()
            meter = InvolvementMeter(host)
            cluster, t = self._smallest_valid_cluster(host, exclude, meter)
            cluster, t = self._enforce_isolation(cluster, t, exclude, meter)

            # Step 3: carve the minimum-MEW clusters out of the gathered set.
            partition = centralized_k_clustering(
                self._graph, self._k, method=self._method, vertices=cluster
            )
            partition.validate()
        if obs.enabled():
            obs.inc(metric.CLUSTERING_REQUESTS)
            obs.inc(metric.CLUSTERING_INVOLVED_USERS, meter.count)
        return ClusterProposal(
            host=host,
            groups=[frozenset(group) for group in partition.clusters],
            involved=meter.count,
            connectivity=t,
        )

    def commit(self, proposal: "ClusterProposal") -> ClusterResult:
        """Register a proposal's clusters; fails cleanly on any conflict.

        A conflict (some member was clustered by a concurrent request
        between propose and commit) raises :class:`ClusteringError` with
        nothing registered, so the caller can recompute and retry.
        """
        conflicted = [
            v for group in proposal.groups for v in group if v in self._registry
        ]
        if conflicted:
            raise ClusteringError(
                f"stale proposal: users {sorted(conflicted)[:5]} were "
                "clustered concurrently"
            )
        host_cluster: Optional[frozenset[int]] = None
        for group in proposal.groups:
            cluster_id = self._registry.register(group)
            if proposal.host in group:
                host_cluster = self._registry.cluster_by_id(cluster_id)
        if host_cluster is None:
            raise ClusteringError(
                f"partition of the gathered cluster lost host {proposal.host}"
            )
        return ClusterResult(
            proposal.host,
            host_cluster,
            involved=proposal.involved,
            connectivity=proposal.connectivity,
        )

    # -- step 1 ---------------------------------------------------------------

    def _smallest_valid_cluster(
        self, host: int, exclude: Container[int], meter: InvolvementMeter
    ) -> tuple[set[int], float]:
        """Prim span to size k, then closure under t-reachability."""
        if self._tree is not None and self._closure and len(exclude) == 0:
            resolved = self._tree.smallest_valid_cluster(host, self._k)
            if resolved is None:
                raise ClusteringError(
                    f"host {host}: fewer than k={self._k} reachable users remain"
                )
            members, t = resolved
            cluster = set(members)
            # Exactly who the span-and-close would touch: every member
            # except the host (Prim pops k - 1, closure pops the rest).
            meter.touch_all(cluster)
            if self._k > 1 and obs.enabled():
                obs.inc(metric.CLUSTERING_MEW_ITERATIONS, self._k - 1)
            return cluster, t
        cluster = {host}
        heap: list[tuple[float, int, int]] = []  # (weight, vertex, via)
        self._push_neighbors(host, cluster, exclude, heap)
        t = 0.0
        absorbed = 0
        while len(cluster) < self._k:
            popped = self._pop_new(heap, cluster)
            if popped is None:
                raise ClusteringError(
                    f"host {host}: fewer than k={self._k} reachable users remain"
                )
            weight, vertex = popped
            t = max(t, weight)
            cluster.add(vertex)
            absorbed += 1
            meter.touch(vertex)
            self._push_neighbors(vertex, cluster, exclude, heap)
        if absorbed and obs.enabled():
            # One MEW absorption per Prim pop; reported per run, not per
            # loop iteration, to keep the hot path clean.
            obs.inc(metric.CLUSTERING_MEW_ITERATIONS, absorbed)
        if self._closure:
            # Absorb everything still t-reachable (full equivalence class).
            while heap and heap[0][0] <= t:
                popped = self._pop_new(heap, cluster, limit=t)
                if popped is None:
                    break
                _weight, vertex = popped
                cluster.add(vertex)
                meter.touch(vertex)
                self._push_neighbors(vertex, cluster, exclude, heap)
        return cluster, t

    def _push_neighbors(
        self,
        vertex: int,
        cluster: set[int],
        exclude: Container[int],
        heap: list[tuple[float, int, int]],
    ) -> None:
        for neighbor, weight in self._graph.neighbor_weights(vertex):
            if neighbor not in cluster and neighbor not in exclude:
                heapq.heappush(heap, (weight, neighbor, vertex))

    @staticmethod
    def _pop_new(
        heap: list[tuple[float, int, int]],
        cluster: set[int],
        limit: float = math.inf,
    ) -> Optional[tuple[float, int]]:
        """Pop the lightest heap entry for a vertex not yet in the cluster."""
        while heap:
            if heap[0][0] > limit:
                return None
            weight, vertex, _via = heapq.heappop(heap)
            if vertex not in cluster:
                return weight, vertex
        return None

    # -- step 2 ---------------------------------------------------------------

    def _enforce_isolation(
        self,
        cluster: set[int],
        t: float,
        exclude: Container[int],
        meter: InvolvementMeter,
    ) -> tuple[set[int], float]:
        """Grow the cluster until Theorem 4.4's border condition holds."""
        queue = deque(sorted(self._border_of(cluster, exclude)))
        passed: set[int] = set()
        checks = 0
        merges = 0
        while queue:
            vertex = queue.popleft()
            if vertex in cluster or vertex in passed:
                continue
            meter.touch(vertex)
            checks += 1
            if self._has_valid_t_cluster(vertex, t, cluster, exclude, meter):
                passed.add(vertex)
                continue
            merges += 1
            # Merge the failing border vertex and re-close at the new t.
            connect_weight = min(
                weight
                for neighbor, weight in self._graph.neighbor_weights(vertex)
                if neighbor in cluster
            )
            t = max(t, connect_weight)
            before = set(cluster)
            cluster.add(vertex)
            if self._closure:
                # Re-close: span from all members at the (possibly) new t.
                cluster = t_component_multi(self._graph, cluster, t, exclude)
            meter.touch_all(cluster - before)
            queue.extend(sorted(self._border_of(cluster, exclude) - passed))
        if checks and obs.enabled():
            obs.inc(metric.CLUSTERING_ISOLATION_CHECKS, checks)
            obs.inc(metric.CLUSTERING_ISOLATION_MERGES, merges)
        return cluster, t

    def _border_of(self, cluster: set[int], exclude: Container[int]) -> set[int]:
        return {
            v
            for v in external_border(self._graph, cluster, cluster)
            if v not in exclude
        }

    def _has_valid_t_cluster(
        self,
        vertex: int,
        t: float,
        cluster: set[int],
        exclude: Container[int],
        meter: InvolvementMeter,
    ) -> bool:
        """Algorithm 2 line 11: does v reach k users at t in the remaining WPG?"""
        component = t_component(
            self._graph,
            vertex,
            t,
            exclude=_UnionContainer(cluster, exclude),
            spy=meter,
            size_limit=self._k,
        )
        return len(component) >= self._k


def t_component_multi(
    graph: WeightedProximityGraph,
    seeds: set[int],
    t: float,
    exclude: Container[int],
) -> set[int]:
    """The union of t-components of all ``seeds`` (seeds stay included)."""
    component = set(seeds)
    stack = list(seeds)
    while stack:
        vertex = stack.pop()
        for neighbor, weight in graph.neighbor_weights(vertex):
            if weight <= t and neighbor not in component and neighbor not in exclude:
                component.add(neighbor)
                stack.append(neighbor)
    return component


class _UnionContainer:
    """Membership test over the union of two containers, without copying."""

    __slots__ = ("_a", "_b")

    def __init__(self, a: Container[int], b: Container[int]) -> None:
        self._a = a
        self._b = b

    def __contains__(self, item: int) -> bool:
        return item in self._a or item in self._b
