"""Proximity minimum k-clustering (Section IV): the paper's first phase."""

from repro.clustering.base import (
    ClusterRegistry,
    ClusterResult,
    InvolvementMeter,
    Partition,
)
from repro.clustering.centralized import (
    centralized_k_clustering,
    greedy_partition,
    strict_partition,
)
from repro.clustering.distributed import ClusterProposal, DistributedClustering
from repro.clustering.hilbert_asr import HilbertASRClustering
from repro.clustering.knn import KNNClustering, revised_knn_cluster
from repro.clustering.quadtree import QuadtreeCloaking, reciprocity_violations
from repro.clustering.isolation import is_cluster_isolated, isolation_counterexample
from repro.clustering.registry_io import load_registry, save_registry

__all__ = [
    "ClusterProposal",
    "ClusterRegistry",
    "ClusterResult",
    "DistributedClustering",
    "HilbertASRClustering",
    "InvolvementMeter",
    "KNNClustering",
    "Partition",
    "QuadtreeCloaking",
    "centralized_k_clustering",
    "greedy_partition",
    "is_cluster_isolated",
    "load_registry",
    "isolation_counterexample",
    "reciprocity_violations",
    "revised_knn_cluster",
    "save_registry",
    "strict_partition",
]
