"""Quadtree spatio-temporal cloaking (Gruteser & Grunwald, related work).

The first cloaking algorithm in the literature (Section II): a trusted
middleware indexes all user locations in a quadtree and, per request,
"traverses the tree until it finds a quadrant containing the requesting
user and other k-1 users" — the deepest quadrant around the host still
holding at least k users is the cloaked region.

This baseline exists here for two reasons:

* it is the classic coordinate-exposing comparator every cloaking paper
  measures against, and
* it famously does **not** satisfy the reciprocity property Theorem 4.1
  requires: two users in the same returned quadrant can receive
  *different* quadrants for their own requests (when one of them sits in
  a sub-quadrant that is itself k-populated), so an adversary observing
  a request can eliminate some of the k candidates.
  :func:`reciprocity_violations` finds such witnesses — the executable
  version of the paper's criticism of non-reciprocal schemes.
"""

from __future__ import annotations

from typing import Optional

from repro.datasets.base import PointDataset
from repro.errors import ClusteringError, ConfigurationError
from repro.geometry.rect import Rect
from repro.spatial.grid import GridIndex


class QuadtreeCloaking:
    """Per-request quadrant cloaking over a static population.

    Unlike the registry-based schemes there is no cluster state: each
    request independently descends the (implicit) quadtree.  The maximum
    depth bounds the recursion on degenerate data (many users stacked on
    one point).
    """

    def __init__(
        self,
        dataset: PointDataset,
        k: int,
        max_depth: int = 20,
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if k > len(dataset):
            raise ConfigurationError(
                f"k ({k}) exceeds the population ({len(dataset)})"
            )
        if max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {max_depth}")
        self._dataset = dataset
        self._k = k
        self._max_depth = max_depth
        self._index = GridIndex(dataset.points, cell_size=0.01)

    @property
    def k(self) -> int:
        """The anonymity requirement."""
        return self._k

    def region_for(self, host: int) -> Rect:
        """The deepest quadrant around ``host`` holding >= k users."""
        if not 0 <= host < len(self._dataset):
            raise ClusteringError(f"unknown host {host}")
        position = self._dataset[host]
        quadrant = Rect.unit_square()
        for _depth in range(self._max_depth):
            child = self._child_containing(quadrant, position)
            if self._index.count_rect(child) < self._k:
                break
            quadrant = child
        return quadrant

    def anonymity_set(self, host: int) -> frozenset[int]:
        """The users inside the host's returned quadrant."""
        return frozenset(self._index.query_rect(self.region_for(host)))

    @staticmethod
    def _child_containing(quadrant: Rect, position) -> Rect:
        mid_x = (quadrant.x_min + quadrant.x_max) / 2.0
        mid_y = (quadrant.y_min + quadrant.y_max) / 2.0
        x_lo = position.x < mid_x
        y_lo = position.y < mid_y
        return Rect(
            quadrant.x_min if x_lo else mid_x,
            mid_x if x_lo else quadrant.x_max,
            quadrant.y_min if y_lo else mid_y,
            mid_y if y_lo else quadrant.y_max,
        )


def reciprocity_violations(
    cloaking: QuadtreeCloaking, host: int, limit: Optional[int] = None
) -> list[int]:
    """Members of the host's quadrant who would get a *different* region.

    A non-empty result is an attack witness: the adversary intercepting
    the host's request can discard those users as possible requesters
    (they would have sent a smaller quadrant), shrinking the effective
    anonymity set below k — precisely why the paper's Theorem 4.1
    demands reciprocity.
    """
    region = cloaking.region_for(host)
    violators: list[int] = []
    for member in sorted(cloaking.anonymity_set(host)):
        if member == host:
            continue
        if cloaking.region_for(member) != region:
            violators.append(member)
            if limit is not None and len(violators) >= limit:
                break
    return violators


def effective_anonymity(cloaking: QuadtreeCloaking, host: int) -> int:
    """Users in the host's quadrant who would send the *same* quadrant.

    The adversary's surviving candidate set; reciprocity holds iff this
    equals the quadrant's population.
    """
    region = cloaking.region_for(host)
    return sum(
        1
        for member in cloaking.anonymity_set(host)
        if cloaking.region_for(member) == region
    )
