"""The hilbASR baseline (related work, Section II).

Ghinita et al.'s hilbASR sorts all users by Hilbert space-filling-curve
order and groups every k consecutive users into a bucket; a host's
cloaked set is its bucket.  Buckets are fixed for everyone, so the
scheme satisfies reciprocity by construction, and the curve's locality
keeps buckets geometrically compact.

The paper cites hilbASR as the strongest prior cloaking scheme — and as
one that requires users to expose their coordinates (to build the sorted
order).  It is included here as an extra comparator: an *upper* baseline
for region quality that the non-exposure algorithms can be measured
against, complementing kNN as the lower baseline.

The ``start_offset`` parameter reproduces the scheme's randomised bucket
boundary (a privacy measure in the original): buckets begin at a random
offset along the curve, and the trailing fewer-than-2k users wrap into
the final bucket so every bucket has >= k members.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.clustering.base import ClusterRegistry, ClusterResult
from repro.datasets.base import PointDataset
from repro.errors import ClusteringError, ConfigurationError
from repro.spatial.hilbert import DEFAULT_ORDER, point_to_index


class HilbertASRClustering:
    """Answers k-clustering requests from precomputed Hilbert buckets.

    Unlike the non-exposure algorithms this baseline *sees coordinates*
    (it needs them to compute curve positions) — exactly the trust
    assumption the paper eliminates.  The interface matches the other
    phase-1 services so the experiment harness can drive it unchanged.

    Cost model: like the centralized anonymizer, the first request pays
    one position submission per user; later requests are free.
    """

    def __init__(
        self,
        dataset: PointDataset,
        k: int,
        registry: Optional[ClusterRegistry] = None,
        order: int = DEFAULT_ORDER,
        start_offset: int = 0,
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if k > len(dataset):
            raise ConfigurationError(
                f"k ({k}) exceeds the population ({len(dataset)})"
            )
        if start_offset < 0:
            raise ConfigurationError(
                f"start_offset must be >= 0, got {start_offset}"
            )
        self._dataset = dataset
        self._k = k
        self._registry = registry if registry is not None else ClusterRegistry()
        self._order = order
        self._offset = start_offset % len(dataset)
        self._bucketed = False

    @property
    def registry(self) -> ClusterRegistry:
        """The shared cluster-assignment registry."""
        return self._registry

    @property
    def k(self) -> int:
        """The anonymity requirement."""
        return self._k

    def request(self, host: int) -> ClusterResult:
        """Serve one request; the first one builds all buckets."""
        if not 0 <= host < len(self._dataset):
            raise ClusteringError(f"unknown host {host}")
        involved = 0
        if not self._bucketed:
            involved = len(self._dataset) - 1
            self._build_buckets()
        cluster = self._registry.cluster_of(host)
        if cluster is None:  # cannot happen: buckets cover everyone
            raise ClusteringError(f"host {host} missing from the bucketing")
        return ClusterResult(
            host,
            cluster,
            involved=involved,
            from_cache=involved == 0,
        )

    def _build_buckets(self) -> None:
        order = sorted(
            range(len(self._dataset)),
            key=lambda i: (point_to_index(self._dataset[i], self._order), i),
        )
        rotated = order[self._offset :] + order[: self._offset]
        for bucket in _buckets_of_k(rotated, self._k):
            self._registry.register(bucket)
        self._bucketed = True


def _buckets_of_k(ordered: Sequence[int], k: int) -> list[list[int]]:
    """Split a sequence into consecutive groups of k, last group >= k.

    The trailing ``len % k`` users merge into the final bucket so every
    bucket satisfies the anonymity requirement.
    """
    buckets: list[list[int]] = []
    full = len(ordered) // k
    for b in range(full):
        buckets.append(list(ordered[b * k : (b + 1) * k]))
    leftover = list(ordered[full * k :])
    if leftover:
        if buckets:
            buckets[-1].extend(leftover)
        else:
            buckets.append(leftover)  # fewer than k users in total
    return buckets
