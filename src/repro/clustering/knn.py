"""The kNN clustering baseline (Section IV and the experiments).

kNN "clusters the host vertex and its k-1 nearest neighbors that have not
yet been clustered in the WPG".  Nearness is WPG shortest-path distance
(Dijkstra over the rank weights), so as more users get clustered the host
must span farther and farther to find unclustered peers — the effect that
makes kNN's cloaked regions blow up with k and with the number of
requests (Figs. 11b and 12b).

Cost accounting: the paper's kNN curves are flat at ~k messages even when
76% of the population is already clustered (Fig. 12a, S=8000), so its
"involved users" are the chosen members only.  ``cost_mode="members"``
(default) reproduces that; ``cost_mode="explored"`` counts every vertex
the search expanded, for the ablation benchmark.
"""

from __future__ import annotations

import heapq
from typing import Literal, Optional

from repro.errors import ClusteringError, ConfigurationError
from repro.clustering.base import ClusterRegistry, ClusterResult
from repro.graph.wpg import WeightedProximityGraph

CostMode = Literal["members", "explored"]
Traversal = Literal["relay", "removal"]


class KNNClustering:
    """Answers k-clustering requests with the kNN baseline."""

    def __init__(
        self,
        graph: WeightedProximityGraph,
        k: int,
        registry: Optional[ClusterRegistry] = None,
        cost_mode: CostMode = "members",
        traversal: Traversal = "relay",
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if cost_mode not in ("members", "explored"):
            raise ConfigurationError(f"unknown cost_mode {cost_mode!r}")
        if traversal not in ("relay", "removal"):
            raise ConfigurationError(f"unknown traversal {traversal!r}")
        self._graph = graph
        self._k = k
        self._registry = registry if registry is not None else ClusterRegistry()
        self._cost_mode = cost_mode
        self._traversal = traversal

    @property
    def registry(self) -> ClusterRegistry:
        """The shared cluster-assignment registry."""
        return self._registry

    @property
    def k(self) -> int:
        """The anonymity requirement."""
        return self._k

    def request(self, host: int) -> ClusterResult:
        """Serve one cloaking request for ``host``."""
        if host not in self._graph:
            raise ClusteringError(f"unknown host {host}")
        cached = self._registry.cluster_of(host)
        if cached is not None:
            return ClusterResult(host, cached, involved=0, from_cache=True)
        if host in self._registry:
            raise ClusteringError(f"host {host} already assigned")  # unreachable

        members, explored = self._nearest_unclustered(host)
        self._registry.register(members)
        involved = (
            len(members) - 1 if self._cost_mode == "members" else len(explored) - 1
        )
        return ClusterResult(host, frozenset(members), involved=involved)

    def _nearest_unclustered(self, host: int) -> tuple[set[int], set[int]]:
        """Greedy nearest-neighbour (Prim-style) expansion from the host.

        "Nearest in the WPG" is resolved the way both of the paper's
        worked examples demand: repeatedly absorb the minimum-weight
        frontier edge of the group grown so far, ties broken by vertex id
        (Fig. 4(a)'s plain kNN) — the revised variant of Fig. 4(b) breaks
        ties by degree instead, see :func:`revised_knn_cluster`.  A
        Dijkstra path-sum reading is inconsistent with Fig. 4(b), where
        u6 (path length 2) is chosen over the directly-adjacent u3 (path
        length 1).

        Only unclustered users become members.  Traversal of clustered
        users depends on the mode: ``"relay"`` (default) lets the
        expansion pass through them — they still forward messages — so a
        host in a depleted neighbourhood "has to further span the WPG to
        find k-1 un-clustered users, which might be far away" (Section
        VI-A), inflating the cloaked region; ``"removal"`` treats them as
        removed from the WPG (the strict reading of Section IV), which
        converts far spans into clean failures when the remaining graph
        fragments.  Returns (members incl. host, vertices expanded).
        """
        members = {host}
        explored = {host}
        visited = {host}  # all spanned vertices, including relay-only ones
        heap: list[tuple[float, int]] = []
        removal = self._traversal == "removal"

        def push_frontier(vertex: int) -> None:
            for neighbor, weight in self._graph.neighbor_weights(vertex):
                if neighbor in visited:
                    continue
                if removal and neighbor in self._registry:
                    continue
                heapq.heappush(heap, (weight, neighbor))

        push_frontier(host)
        while heap and len(members) < self._k:
            _weight, vertex = heapq.heappop(heap)
            if vertex in visited:
                continue
            visited.add(vertex)
            explored.add(vertex)
            if vertex not in self._registry:
                members.add(vertex)
            push_frontier(vertex)
        if len(members) < self._k:
            raise ClusteringError(
                f"host {host}: fewer than k={self._k} unclustered users reachable"
            )
        return members, explored


def revised_knn_cluster(
    graph: WeightedProximityGraph, host: int, k: int
) -> set[int]:
    """The revised kNN of Fig. 4(b): weight ties broken by smaller degree.

    The same greedy nearest-neighbour expansion as plain kNN, except that
    equal-weight frontier edges prefer the vertex with the smallest
    degree.  On Fig. 4's WPG this clusters {u4, u5, u6} where plain kNN
    clusters {u4, u3, u5}; the paper uses it to show tie-breaking can
    accidentally achieve cluster-isolation on some WPGs while not being
    cluster-isolated in general.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if host not in graph:
        raise ClusteringError(f"unknown host {host}")
    members = {host}
    heap: list[tuple[float, int, int]] = []  # (weight, degree, vertex)

    def push_frontier(vertex: int) -> None:
        for neighbor, weight in graph.neighbor_weights(vertex):
            if neighbor not in members:
                heapq.heappush(heap, (weight, graph.degree(neighbor), neighbor))

    push_frontier(host)
    while heap and len(members) < k:
        _weight, _degree, vertex = heapq.heappop(heap)
        if vertex in members:
            continue
        members.add(vertex)
        push_frontier(vertex)
    if len(members) < k:
        raise ClusteringError(
            f"host {host}: fewer than k={k} reachable users in its component"
        )
    return members
