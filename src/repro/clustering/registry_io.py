"""Cluster-registry persistence.

Reciprocity makes cluster membership permanent, so a deployment must
durably remember who is clustered with whom across restarts — otherwise
a re-clustered user could receive a different region and break the
indistinguishability argument.  The format is JSON: a list of clusters
in registration order (ids are positional, matching
:class:`~repro.clustering.base.ClusterRegistry` semantics).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.clustering.base import ClusterRegistry
from repro.errors import ClusteringError


def save_registry(registry: ClusterRegistry, path: str | Path) -> None:
    """Write the registry's clusters, in registration order."""
    clusters = [
        sorted(registry.cluster_by_id(cid)) for cid in range(len(registry))
    ]
    Path(path).write_text(
        json.dumps({"format": "cluster-registry-v1", "clusters": clusters})
    )


def load_registry(path: str | Path) -> ClusterRegistry:
    """Rebuild a registry written by :func:`save_registry`.

    Cluster ids are preserved (same registration order), so any cached
    region keyed by cluster id remains valid.
    """
    source = Path(path)
    if not source.exists():
        raise ClusteringError(f"registry file not found: {source}")
    try:
        payload = json.loads(source.read_text())
    except json.JSONDecodeError as exc:
        raise ClusteringError(f"{source}: not valid JSON") from exc
    if not isinstance(payload, dict) or payload.get("format") != "cluster-registry-v1":
        raise ClusteringError(f"{source}: unknown registry format")
    clusters = payload.get("clusters")
    if not isinstance(clusters, list):
        raise ClusteringError(f"{source}: malformed clusters payload")
    registry = ClusterRegistry()
    for group in clusters:
        registry.register(group)
    return registry
