"""Centralized t-connectivity k-clustering (paper Algorithm 1).

Algorithm 1 partitions each connected component of the WPG by removing
edges in descending weight order until the component disconnects, then
recurses into the pieces, stopping when "a further partition will lead to
an invalid cluster" (size < k).  Two faithful readings exist (see
DESIGN.md, "Partition semantics of Algorithm 1"):

``strict``
    A partition step lowers the connectivity threshold t to the next
    weight level, so pieces are genuine t-connectivity clusters
    (Definition 4.1), and the step is accepted only when *every* piece is
    valid.  Matches the proofs; can freeze large components when a single
    straggler piece is invalid.

``greedy``
    Edge removals are attempted one at a time in descending (weight, key)
    order and skipped when they would create a piece smaller than k;
    passes repeat until a fixpoint.  Produces near-k clusters in practice
    and reproduces the paper's measured cluster sizes.

Both have a naive implementation (literal graph surgery, quadratic-ish)
and a fast implementation (dendrogram cut, plus local refinement for
greedy).  Naive and fast are cross-validated by the test suite.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Literal, Optional

from repro.errors import ConfigurationError
from repro.clustering.base import Partition
from repro.graph.components import connected_components
from repro.graph.dendrogram import cut_smallest_valid, single_linkage_dendrogram
from repro.graph.wpg import Edge, WeightedProximityGraph

if TYPE_CHECKING:  # pragma: no cover - typing only (no runtime import)
    from repro.graph.cluster_tree import ClusterTree

Method = Literal["strict", "greedy"]


def centralized_k_clustering(
    graph: WeightedProximityGraph,
    k: int,
    method: Method = "greedy",
    vertices: Optional[Iterable[int]] = None,
    naive: bool = False,
    tree: "Optional[ClusterTree]" = None,
) -> Partition:
    """Partition ``graph`` (or the induced subgraph on ``vertices``).

    Returns a :class:`Partition`: valid clusters of size >= k plus the
    components that simply do not contain k users.

    ``tree`` routes a whole-graph partition through a persistent
    :class:`~repro.graph.cluster_tree.ClusterTree` built over ``graph``:
    memoized tree cuts (and memoized greedy refinements) replace the
    per-call dendrogram build, so repeated partitions are near-free.
    Same clusters either way; ignored for subgraph or naive requests.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if tree is not None and vertices is None and not naive:
        if method not in ("strict", "greedy"):
            raise ConfigurationError(f"unknown method {method!r}")
        groups = (
            tree.strict_partition(k)
            if method == "strict"
            else tree.greedy_partition(k)
        )
        partition = Partition(k=k)
        for group in groups:
            (
                partition.clusters if len(group) >= k else partition.invalid
            ).append(group)
        return partition
    target = graph if vertices is None else graph.subgraph(vertices)
    if method == "strict":
        groups = (
            _strict_partition_naive(target, k)
            if naive
            else _strict_partition_dendrogram(target, k)
        )
    elif method == "greedy":
        groups = (
            _greedy_partition_naive(target, k)
            if naive
            else _greedy_partition_fast(target, k)
        )
    else:
        raise ConfigurationError(f"unknown method {method!r}")
    partition = Partition(k=k)
    for group in groups:
        (partition.clusters if len(group) >= k else partition.invalid).append(group)
    return partition


def strict_partition(
    graph: WeightedProximityGraph, k: int, naive: bool = False
) -> Partition:
    """Algorithm 1 under strict t-component semantics."""
    return centralized_k_clustering(graph, k, method="strict", naive=naive)


def greedy_partition(
    graph: WeightedProximityGraph, k: int, naive: bool = False
) -> Partition:
    """Algorithm 1 under greedy edge-skip semantics (experiment default)."""
    return centralized_k_clustering(graph, k, method="greedy", naive=naive)


# -- strict semantics ---------------------------------------------------------


def _strict_partition_dendrogram(
    graph: WeightedProximityGraph, k: int
) -> list[set[int]]:
    return cut_smallest_valid(single_linkage_dendrogram(graph), k)


def _strict_partition_naive(graph: WeightedProximityGraph, k: int) -> list[set[int]]:
    """Literal Algorithm 1: recursive descending weight-class removal."""
    result: list[set[int]] = []
    work = connected_components(graph)
    while work:
        component = work.pop()
        pieces = _strict_split_once(graph, component, k)
        if pieces is None:
            result.append(component)
        else:
            work.extend(pieces)
    return result


def _strict_split_once(
    graph: WeightedProximityGraph, component: set[int], k: int
) -> Optional[list[set[int]]]:
    """One strict partition step, or None when the component is final.

    Lower t level by level (remove the heaviest remaining weight class)
    until the component disconnects; accept only an all-valid split.
    """
    if len(component) < 2 * k:
        return None  # cannot split into two valid pieces
    sub = graph.subgraph(component)
    levels = sorted({edge.weight for edge in sub.edges()}, reverse=True)
    for level in levels:
        for edge in [e for e in sub.edges() if e.weight == level]:
            sub.remove_edge(edge.u, edge.v)
        pieces = connected_components(sub)
        if len(pieces) > 1:
            if all(len(piece) >= k for piece in pieces):
                return pieces
            return None  # a further partition leads to an invalid cluster
    return None  # edgeless without ever disconnecting: single vertex


# -- greedy semantics ---------------------------------------------------------


def _greedy_partition_naive(graph: WeightedProximityGraph, k: int) -> list[set[int]]:
    """Greedy Algorithm 1 straight over connected components."""
    result: list[set[int]] = []
    for component in connected_components(graph):
        result.extend(_greedy_refine_naive(graph.subgraph(component), k))
    return result


def _greedy_partition_fast(graph: WeightedProximityGraph, k: int) -> list[set[int]]:
    """Strict dendrogram cut first, then greedy refinement of each cluster.

    Every strict split is also accepted by greedy (each intermediate
    binary disconnection separates unions of valid t-components, so both
    sides have >= k vertices); refinement therefore only has to work
    inside the usually-small strict clusters.
    """
    result: list[set[int]] = []
    for cluster in _strict_partition_dendrogram(graph, k):
        if len(cluster) < 2 * k:
            result.append(cluster)
        else:
            result.extend(_greedy_refine(graph.subgraph(cluster), k))
    return result


def _greedy_refine(sub: WeightedProximityGraph, k: int) -> list[set[int]]:
    """Greedy fixpoint passes over one connected cluster (mutates ``sub``).

    Each pass walks the remaining edges in descending (weight, key) order;
    a removal that disconnects the edge's component is kept only if both
    sides hold >= k vertices (the split is then final and both sides are
    processed independently).  Passes repeat while any edge was removed:
    an earlier-skipped bridge can become validly removable after a sibling
    split shrinks its side.

    This is the fast form: each component carries its edge list as plain
    ``(weight, u, v)`` tuples sorted once in removal order, and a split
    partitions the list between the two sides (an accepted split never
    leaves a cross edge, so the partition is exact and order-preserving).
    Re-enumerating and re-sorting the component's edges every pass — the
    literal reading kept in :func:`_greedy_refine_naive` — dominates the
    runtime on large components; the test suite cross-validates that both
    forms remove exactly the same edges and return the same clusters in
    the same order.
    """
    result: list[set[int]] = []
    work: list[tuple[set[int], list[tuple[float, int, int]]]] = [
        (component, _removal_order_edges(sub, component))
        for component in connected_components(sub)
    ]
    while work:
        component, edges = work.pop()
        if len(component) < 2 * k:
            result.append(component)
            continue
        split = _greedy_pass_until_fixpoint(sub, component, edges, k)
        if split is None:
            result.append(component)
        else:
            work.extend(split)
    return result


def _removal_order_edges(
    sub: WeightedProximityGraph, component: set[int]
) -> list[tuple[float, int, int]]:
    """``component``'s live edges as (weight, u, v) with u < v, sorted by
    descending weight with the (u, v) key as tie-break — the greedy
    removal order."""
    edges = [
        (w, u, v)
        for u in component
        for v, w in sub.neighbor_weights(u)
        if u < v
    ]
    edges.sort(key=lambda e: (-e[0], e[1], e[2]))
    return edges


def _greedy_pass_until_fixpoint(
    sub: WeightedProximityGraph,
    component: set[int],
    edges: list[tuple[float, int, int]],
    k: int,
) -> Optional[list[tuple[set[int], list[tuple[float, int, int]]]]]:
    """Run descending removal passes on ``component`` until a split or fixpoint.

    ``edges`` must be exactly the component's live edges in removal order
    (see :func:`_removal_order_edges`).  Returns the two sides of the
    first accepted split, each paired with its share of the remaining
    edge list (caller recurses), or None when no further removal is
    possible.  Non-disconnecting removals mutate ``sub`` permanently —
    they only ever shrink future work.
    """
    while True:
        removed_any = False
        kept: list[tuple[float, int, int]] = []
        for index, edge in enumerate(edges):
            weight, u, v = edge
            sub.remove_edge(u, v)
            side = _side_of(sub, u, v, component)
            if side is None:
                removed_any = True  # still connected; removal stands
                continue
            other = component - side
            if len(side) >= k and len(other) >= k:
                # A filtered subsequence of a sorted list stays sorted, so
                # neither side ever needs re-sorting.
                remaining = kept + edges[index + 1 :]
                return [
                    (side, [e for e in remaining if e[1] in side]),
                    (other, [e for e in remaining if e[1] not in side]),
                ]
            sub.add_edge(u, v, weight)  # invalid split: skip
            kept.append(edge)
        if not removed_any:
            return None
        edges = kept


def _greedy_refine_naive(sub: WeightedProximityGraph, k: int) -> list[set[int]]:
    """The literal pass semantics of :func:`_greedy_refine` (reference form).

    Re-enumerates and re-sorts the component's current edges at the start
    of every pass, exactly as the prose of the algorithm reads.  Kept as
    the differential reference for the fast form (and as the engine of
    the ``naive`` greedy path): both must remove the same edges and
    produce the same clusters in the same order.
    """
    result: list[set[int]] = []
    work: list[set[int]] = connected_components(sub)
    while work:
        component = work.pop()
        if len(component) < 2 * k:
            result.append(component)
            continue
        split = _naive_pass_until_fixpoint(sub, component, k)
        if split is None:
            result.append(component)
        else:
            work.extend(split)
    return result


def _naive_pass_until_fixpoint(
    sub: WeightedProximityGraph, component: set[int], k: int
) -> Optional[list[set[int]]]:
    """One-component fixpoint loop of :func:`_greedy_refine_naive`."""
    while True:
        removed_any = False
        # Enumerate only this component's edges (sub is shared between the
        # worklist's components; iterating all of sub would be quadratic).
        edges = sorted(
            (
                Edge(u, v, w)
                for u in component
                for v, w in sub.neighbor_weights(u)
                if u < v
            ),
            key=lambda e: (-e.weight, e.key()),
        )
        for edge in edges:
            sub.remove_edge(edge.u, edge.v)
            side = _side_of(sub, edge.u, edge.v, component)
            if side is None:
                removed_any = True  # still connected; removal stands
                continue
            other = component - side
            if len(side) >= k and len(other) >= k:
                return [side, other]
            sub.add_edge(edge.u, edge.v, edge.weight)  # invalid split: skip
        if not removed_any:
            return None


def _side_of(
    sub: WeightedProximityGraph, u: int, v: int, component: set[int]
) -> Optional[set[int]]:
    """After removing (u, v): None if u~v still connected, else u's side.

    Bidirectional BFS: grows both frontiers in lockstep so a true bridge
    costs O(min side) and a non-bridge exits as soon as the frontiers
    touch (cheap in dense rank-weighted WPGs).
    """
    seen_u: set[int] = {u}
    seen_v: set[int] = {v}
    frontier_u: list[int] = [u]
    frontier_v: list[int] = [v]
    while frontier_u and frontier_v:
        # Expand the smaller frontier.
        if len(frontier_u) <= len(frontier_v):
            frontier_u = _expand(sub, frontier_u, seen_u)
            if seen_u & seen_v:
                return None
        else:
            frontier_v = _expand(sub, frontier_v, seen_v)
            if seen_u & seen_v:
                return None
    if not frontier_u:
        return seen_u
    # v's side exhausted first: u's side is the complement.
    if seen_u & seen_v:
        return None
    return component - seen_v


def _expand(
    sub: WeightedProximityGraph, frontier: list[int], seen: set[int]
) -> list[int]:
    new_frontier: list[int] = []
    for vertex in frontier:
        for neighbor in sub.neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                new_frontier.append(neighbor)
    return new_frontier
