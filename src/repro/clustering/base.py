"""Shared clustering types: results, the assignment registry, cost meters.

The reciprocity property (Section IV) demands that every user in a
cluster S(u) maps to the same S(u); once a cluster forms, all its members
are *assigned* and reuse the cluster (and its cloaked region) for their
own requests.  :class:`ClusterRegistry` is the bookkeeping that enforces
this across a workload of requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.errors import ClusteringError


@dataclass(frozen=True, slots=True)
class ClusterResult:
    """The outcome of one k-clustering request.

    ``members`` always contains the host.  ``involved`` is the number of
    distinct users who had to send their adjacency message to the host (the
    paper's communication cost, Section VI); it is 0 when the request was
    answered from the registry.  ``connectivity`` is the t at which the
    cluster's members are t-connected (0 when unknown/irrelevant, e.g. for
    the kNN baseline).
    """

    host: int
    members: frozenset[int]
    involved: int
    connectivity: float = 0.0
    from_cache: bool = False

    def __post_init__(self) -> None:
        if self.host not in self.members:
            raise ClusteringError(
                f"host {self.host} is not a member of its own cluster"
            )

    @property
    def size(self) -> int:
        """Number of members in the cluster."""
        return len(self.members)


@dataclass(slots=True)
class Partition:
    """A partition of (part of) the WPG into clusters.

    ``invalid`` holds pieces smaller than k — components of the WPG that
    simply do not contain k users (paper Fig. 5's isolated vertex g).  They
    are reported rather than silently merged so callers can count failed
    requests.
    """

    k: int
    clusters: list[set[int]] = field(default_factory=list)
    invalid: list[set[int]] = field(default_factory=list)

    def all_groups(self) -> Iterator[set[int]]:
        """Iterate valid clusters, then invalid pieces."""
        yield from self.clusters
        yield from self.invalid

    @property
    def covered(self) -> int:
        """Total number of vertices across all groups."""
        return sum(len(g) for g in self.all_groups())

    def cluster_of(self, vertex: int) -> Optional[set[int]]:
        """The valid cluster containing ``vertex``, or None."""
        for cluster in self.clusters:
            if vertex in cluster:
                return cluster
        return None

    def validate(self) -> None:
        """Check the partition invariants; raises :class:`ClusteringError`.

        Every valid cluster must have >= k members, groups must be
        disjoint, and no vertex may appear twice.
        """
        seen: set[int] = set()
        for cluster in self.clusters:
            if len(cluster) < self.k:
                raise ClusteringError(
                    f"cluster of size {len(cluster)} violates k={self.k}"
                )
            if cluster & seen:
                raise ClusteringError("clusters overlap")
            seen |= cluster
        for piece in self.invalid:
            if len(piece) >= self.k:
                raise ClusteringError("piece marked invalid but has >= k members")
            if piece & seen:
                raise ClusteringError("invalid piece overlaps a cluster")
            seen |= piece


class ClusterRegistry:
    """Tracks which users are already clustered and in what cluster.

    Cluster ids are dense integers in registration order.  Registering a
    group containing an already-assigned user is an error: reciprocity
    makes cluster membership permanent.
    """

    def __init__(self) -> None:
        self._clusters: list[frozenset[int]] = []
        self._assignment: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._clusters)

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._assignment

    @property
    def assigned_count(self) -> int:
        """Total number of users assigned to any cluster."""
        return len(self._assignment)

    @property
    def assigned(self) -> frozenset[int]:
        """All currently assigned users (snapshot)."""
        return frozenset(self._assignment)

    def assigned_view(self) -> dict[int, int].keys:  # type: ignore[valid-type]
        """A live, read-only view of assigned users (no copying).

        The distributed algorithm excludes assigned users from every
        traversal; copying 100k ids per request would dominate runtime.
        """
        return self._assignment.keys()

    def register(self, members: Iterable[int]) -> int:
        """Record a new cluster; returns its id."""
        group = frozenset(members)
        if not group:
            raise ClusteringError("cannot register an empty cluster")
        already = [v for v in group if v in self._assignment]
        if already:
            raise ClusteringError(
                f"users already clustered: {sorted(already)[:5]} (reciprocity)"
            )
        cluster_id = len(self._clusters)
        self._clusters.append(group)
        for vertex in group:
            self._assignment[vertex] = cluster_id
        return cluster_id

    def clusters(self, start: int = 0) -> Iterator[frozenset[int]]:
        """Iterate clusters in registration order, from id ``start``.

        The sharded service's replica-sync barrier uses the suffix form
        (``start`` = the id watermark of the last sync) to export only
        the clusters formed since.
        """
        yield from self._clusters[start:]

    def cluster_of(self, vertex: int) -> Optional[frozenset[int]]:
        """The registered cluster of ``vertex``, or None if unassigned."""
        cluster_id = self._assignment.get(vertex)
        if cluster_id is None:
            return None
        return self._clusters[cluster_id]

    def cluster_by_id(self, cluster_id: int) -> frozenset[int]:
        """The members of cluster ``cluster_id``."""
        return self._clusters[cluster_id]

    def check_reciprocity(self) -> None:
        """Verify S(v) = S(u) for all v in S(u); raises on violation."""
        for cluster_id, group in enumerate(self._clusters):
            for vertex in group:
                if self._assignment.get(vertex) != cluster_id:
                    raise ClusteringError(
                        f"reciprocity violated at user {vertex}: assigned to "
                        f"{self._assignment.get(vertex)}, expected {cluster_id}"
                    )


class InvolvementMeter:
    """Counts the distinct users involved in answering one request.

    Section VI: "the communication cost essentially equals the number of
    involved users" because each involved user sends exactly one adjacency
    message to the host.  The meter is passed as the ``spy`` callback of
    the graph traversals.
    """

    def __init__(self, host: int) -> None:
        self._host = host
        self._involved: set[int] = set()

    def __call__(self, vertex: int) -> None:
        self.touch(vertex)

    def touch(self, vertex: int) -> None:
        """Record ``vertex`` as involved (the host itself is free)."""
        if vertex != self._host:
            self._involved.add(vertex)

    def touch_all(self, vertices: Iterable[int]) -> None:
        """Record every vertex in ``vertices`` as involved."""
        for vertex in vertices:
            self.touch(vertex)

    @property
    def count(self) -> int:
        """Number of distinct involved users so far."""
        return len(self._involved)

    @property
    def involved(self) -> frozenset[int]:
        """The involved users (snapshot)."""
        return frozenset(self._involved)
