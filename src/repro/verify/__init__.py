"""Differential verification: exact oracles, fuzzed worlds, invariants.

The optimized pipeline (vectorized WPG construction, dendrogram
clustering, progressive bounding, message-level protocols) is checked
against independent from-definition implementations:

* :mod:`repro.verify.oracles` — brute-force/level-scan oracles that are
  *exact* on small instances and share no code with the algorithms they
  audit;
* :mod:`repro.verify.transcript` — a wire-level tap that recomputes each
  user's agreement interval from the yes/no messages alone;
* :mod:`repro.verify.worlds` — seeded and Hypothesis-driven generation of
  whole simulation worlds (dataset x radio model x k x policy x faults);
* :mod:`repro.verify.invariants` — the registry of end-to-end properties
  every served world must satisfy;
* :mod:`repro.verify.fuzz` — the seed-replay CLI
  (``python -m repro.verify.fuzz``) that runs N worlds through the real
  engines, checks every registered invariant, and dumps a minimal JSON
  repro on failure.
"""

from repro.verify.oracles import (
    ORACLE_MAX_VERTICES,
    bottleneck_connectivity,
    oracle_bounding_box,
    oracle_isolation_violations,
    oracle_min_mew_clusters,
    oracle_smallest_cluster,
)
from repro.verify.transcript import (
    TranscriptRecorder,
    VerificationMessage,
    audit_intervals,
)
from repro.verify.worlds import World, build_world, random_world
from repro.verify.invariants import (
    Violation,
    WorldRun,
    check_world,
    registered_invariants,
)

__all__ = [
    "ORACLE_MAX_VERTICES",
    "TranscriptRecorder",
    "VerificationMessage",
    "Violation",
    "World",
    "WorldRun",
    "audit_intervals",
    "bottleneck_connectivity",
    "build_world",
    "check_world",
    "oracle_bounding_box",
    "oracle_isolation_violations",
    "oracle_min_mew_clusters",
    "oracle_smallest_cluster",
    "random_world",
    "registered_invariants",
]
