"""The invariant registry: what every served world must satisfy.

Each invariant is a function over a :class:`WorldRun` (one fuzzed world
plus everything the engines produced for it) returning a list of
human-readable violation details — empty when the property holds.
:func:`check_world` runs every registered invariant and folds the
results into :class:`Violation` records carrying the world's JSON repro.

A violation is *data*, not an exception: the fuzz CLI keeps checking the
remaining invariants and worlds so one bug surfaces with its full blast
radius, then exits nonzero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.clustering.centralized import centralized_k_clustering, strict_partition
from repro.clustering.isolation import (
    border_condition_holds,
    isolation_counterexample,
    smallest_valid_cluster_rule,
)
from repro.cloaking.engine import CloakingEngine, CloakingResult
from repro.cloaking.p2p_engine import P2PCloakingResult
from repro.datasets.base import PointDataset
from repro.errors import VerificationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.graph.build import build_wpg_fast
from repro.graph.cluster_tree import ClusterTree
from repro.graph.wpg import WeightedProximityGraph
from repro.network.node import UserDevice
from repro.network.simulator import PeerNetwork
from repro.obs import names as metric
from repro.obs import trace as trace_mod
from repro.verify.oracles import (
    ORACLE_MAX_VERTICES,
    oracle_bounding_box,
    oracle_isolation_violations,
    oracle_min_mew_clusters,
    oracle_smallest_cluster,
)
from repro.verify.transcript import (
    TranscriptRecorder,
    audit_intervals,
    DIRECTION_PAYLOAD,
)
from repro.verify.worlds import BuiltWorld

#: Worlds larger than this skip the exhaustive isolation sweep (it is
#: quadratic in users times a level scan each — exact, not fast).
ISOLATION_SWEEP_MAX_USERS = 40


@dataclass(frozen=True, slots=True)
class Violation:
    """One invariant failure, carrying everything needed to replay it."""

    invariant: str
    detail: str
    world: dict


@dataclass(slots=True)
class RequestRecord:
    """One request served during a fuzzed world, with its prior state."""

    host: int
    assigned_before: frozenset[int]
    result: Optional[CloakingResult] = None
    error: Optional[str] = None
    error_kind: Optional[str] = None  # "clustering" | "abort" | "unexpected"


@dataclass(slots=True)
class P2PObservation:
    """The message-level replay of a world: traffic, tap, devices."""

    results: List[P2PCloakingResult]
    recorder: TranscriptRecorder
    devices: Dict[int, UserDevice]
    analytic: List[CloakingResult]
    #: Hosts where exactly one of the two protocols failed.
    mismatches: List[str] = field(default_factory=list)
    #: Flight recorder active during this pass (trace-ledger-agree).
    flight: Optional[trace_mod.FlightRecorder] = None
    #: The network the session ran over (its stats reconcile the flight).
    network: Optional[PeerNetwork] = None


@dataclass(slots=True)
class ChurnObservation:
    """What a churn world's movement phase produced.

    ``final_points`` are the population's positions after the full
    schedule ran; ``post_records`` the second serving pass over the same
    hosts, served from the incrementally-patched world.
    """

    final_points: tuple[Point, ...]
    moves_applied: int
    post_records: List[RequestRecord] = field(default_factory=list)


@dataclass(slots=True)
class TreeObservation:
    """The cluster-tree differential replay of a world.

    Two extra engines serve the same request sequence — one on the
    persistent cluster tree (``clustering="tree"``), one on the plain
    closure reading of Algorithm 2
    (``DistributedClustering(closure=True)``) — and for churn worlds
    both consume the identical movement schedule, the tree engine
    patching its tree incrementally.  The ``cluster-tree-equal``
    invariant compares the two record streams and the patched tree
    against a fresh build.
    """

    engine: CloakingEngine  # clustering="tree"
    reference: CloakingEngine  # DistributedClustering(closure=True)
    records: List[RequestRecord]
    reference_records: List[RequestRecord]
    post_records: Optional[List[RequestRecord]] = None
    reference_post_records: Optional[List[RequestRecord]] = None


@dataclass(slots=True)
class WorldRun:
    """Everything one fuzzed world produced, ready for invariant checks."""

    built: BuiltWorld
    engine: Optional[CloakingEngine]
    records: List[RequestRecord] = field(default_factory=list)
    replay_records: Optional[List[RequestRecord]] = None
    p2p: Optional[P2PObservation] = None
    churn: Optional[ChurnObservation] = None
    tree: Optional[TreeObservation] = None
    #: Flight recorder active during the FIRST serving pass only.
    flight: Optional[trace_mod.FlightRecorder] = None


Invariant = Callable[[WorldRun], List[str]]

_REGISTRY: Dict[str, Invariant] = {}


def invariant(name: str) -> Callable[[Invariant], Invariant]:
    """Register an invariant under ``name`` (decorator)."""

    def _register(func: Invariant) -> Invariant:
        if name in _REGISTRY:
            raise ValueError(f"invariant {name!r} registered twice")
        _REGISTRY[name] = func
        return func

    return _register


def registered_invariants() -> tuple[str, ...]:
    """The names of every registered invariant, in registration order."""
    return tuple(_REGISTRY)


def check_world(run: WorldRun, names: Optional[List[str]] = None) -> List[Violation]:
    """Run the registered invariants over one world's outcomes."""
    violations: List[Violation] = []
    world_dict = run.built.world.to_dict()
    recording = obs.enabled()
    for name, func in _REGISTRY.items():
        if names is not None and name not in names:
            continue
        if recording:
            obs.inc(metric.VERIFY_INVARIANT_CHECKS)
        try:
            details = func(run)
        except Exception as exc:  # an invariant crashing IS a finding
            details = [f"invariant crashed: {type(exc).__name__}: {exc}"]
        for detail in details:
            violations.append(Violation(name, detail, world_dict))
        if details and recording:
            obs.inc(metric.VERIFY_VIOLATIONS, len(details))
    return violations


def _successes(run: WorldRun) -> List[CloakingResult]:
    return [r.result for r in run.records if r.result is not None]


# -- WPG construction ---------------------------------------------------------------


def graph_equality_details(
    a: WeightedProximityGraph,
    b: WeightedProximityGraph,
    label_a: str = "left",
    label_b: str = "right",
) -> List[str]:
    """Human-readable differences between two WPGs (empty when equal).

    The shared equality oracle of the differential invariants and the
    churn property suites: vertex sets and the full edge->weight maps
    must match exactly — weights are compared as floats, bit for bit.
    """
    details: List[str] = []
    if set(a.vertices()) != set(b.vertices()):
        details.append(f"{label_a}/{label_b} WPG vertex sets differ")
        return details
    a_edges = {e.key(): e.weight for e in a.edges()}
    b_edges = {e.key(): e.weight for e in b.edges()}
    if a_edges != b_edges:
        diff = set(a_edges.items()) ^ set(b_edges.items())
        details.append(
            f"{label_a}/{label_b} WPG edge maps differ on {len(diff)} "
            f"entries (e.g. {sorted(diff)[:3]})"
        )
    return details


@invariant("wpg-fast-scalar-equal")
def _wpg_differential(run: WorldRun) -> List[str]:
    """The vectorized and scalar WPG builders must agree exactly."""
    return graph_equality_details(
        run.built.graph, run.built.scalar_graph, "fast", "scalar"
    )


# -- anonymity and containment ------------------------------------------------------


@invariant("k-anonymity")
def _k_anonymity(run: WorldRun) -> List[str]:
    """Every served region provides k-anonymity; the registry reciprocates."""
    k = run.built.config.k
    faulty = run.built.world.faulty
    details: List[str] = []
    for result in _successes(run):
        if result.host not in result.cluster.members:
            details.append(f"host {result.host} missing from its own cluster")
        if result.cluster.size < k:
            details.append(
                f"host {result.host}: cluster of {result.cluster.size} < k={k}"
            )
        if result.region.anonymity < k:
            details.append(
                f"host {result.host}: region anonymity "
                f"{result.region.anonymity} < k={k}"
            )
        if not faulty and result.region.anonymity != result.cluster.size:
            details.append(
                f"host {result.host}: anonymity {result.region.anonymity} "
                f"!= cluster size {result.cluster.size}"
            )
    if run.engine is not None:
        try:
            run.engine.clustering.registry.check_reciprocity()
        except Exception as exc:
            details.append(f"registry reciprocity violated: {exc}")
    return details


@invariant("member-containment")
def _containment(run: WorldRun) -> List[str]:
    """The cloak contains every member's true coordinate.

    Skipped for fault worlds: an evicted member is no longer covered by
    design (graceful degradation keeps anonymity >= k over survivors).
    """
    if run.built.world.faulty:
        return []
    dataset = run.built.dataset
    details: List[str] = []
    for result in _successes(run):
        for member in sorted(result.cluster.members):
            if not result.region.rect.contains(dataset[member]):
                details.append(
                    f"host {result.host}: member {member} at "
                    f"{dataset[member]} outside cloak {result.region.rect}"
                )
    return details


@invariant("cloak-vs-oracle-box")
def _cloak_vs_oracle(run: WorldRun) -> List[str]:
    """The cloak matches the direct-coordinate oracle box.

    With the ``optimal`` policy the cloak must *equal* the oracle box
    exactly (same floats).  Progressive policies only ever overshoot, so
    the cloak must contain it; the granularity expansion preserves that.
    """
    if run.built.world.faulty:
        return []
    dataset = run.built.dataset
    optimal = run.built.world.policy == "optimal"
    details: List[str] = []
    for result in _successes(run):
        points = [dataset[m] for m in sorted(result.cluster.members)]
        oracle = oracle_bounding_box(points)
        cloak = result.region.rect
        if optimal:
            if cloak != oracle:
                details.append(
                    f"host {result.host}: optimal cloak {cloak} != "
                    f"oracle box {oracle}"
                )
        elif not cloak.contains_rect(oracle):
            details.append(
                f"host {result.host}: cloak {cloak} does not contain "
                f"oracle box {oracle}"
            )
    return details


@invariant("region-reciprocity")
def _region_reciprocity(run: WorldRun) -> List[str]:
    """One cluster, one region: every member sees the identical rectangle."""
    seen: Dict[frozenset, Rect] = {}
    details: List[str] = []
    for result in _successes(run):
        members = result.cluster.members
        previous = seen.get(members)
        if previous is None:
            seen[members] = result.region.rect
        elif previous != result.region.rect:
            details.append(
                f"cluster {sorted(members)[:6]}... served two regions: "
                f"{previous} and {result.region.rect}"
            )
    return details


# -- clustering oracles -------------------------------------------------------------


@invariant("clustering-level-scan")
def _clustering_level_scan(run: WorldRun) -> List[str]:
    """Dendrogram rule == from-definition level scan, per requested host."""
    graph = run.built.graph
    k = run.built.config.k
    details: List[str] = []
    for host in run.built.hosts:
        rule = smallest_valid_cluster_rule(graph, host, k)
        scan = oracle_smallest_cluster(graph, host, k)
        scan_set = None if scan is None else set(scan[0])
        if rule != scan_set:
            details.append(
                f"host {host}: dendrogram rule {rule and sorted(rule)} != "
                f"level scan {scan_set and sorted(scan_set)}"
            )
    return details


@invariant("min-mew-exhaustive")
def _min_mew(run: WorldRun) -> List[str]:
    """Subset-enumeration min-MEW agrees with the level scan (small comps)."""
    graph = run.built.graph
    k = run.built.config.k
    details: List[str] = []
    for host in run.built.hosts:
        scan = oracle_smallest_cluster(graph, host, k)
        try:
            exact = oracle_min_mew_clusters(graph, host, k)
        except VerificationError:
            continue  # component above the exact regime; skip
        if (exact is None) != (scan is None):
            details.append(
                f"host {host}: exhaustive oracle "
                f"{'found no' if exact is None else 'found a'} cluster but "
                f"level scan disagrees"
            )
            continue
        if exact is None or scan is None:
            continue
        t_exact, minimizers = exact
        cluster, t_scan = scan
        if t_exact != t_scan:
            details.append(
                f"host {host}: exhaustive min-MEW t={t_exact} != "
                f"level-scan t={t_scan}"
            )
        for subset in minimizers:
            if not subset <= cluster:
                details.append(
                    f"host {host}: minimizer {sorted(subset)} escapes the "
                    f"level-scan cluster {sorted(cluster)}"
                )
                break
    return details


@invariant("isolation-theorem-4.4")
def _isolation(run: WorldRun) -> List[str]:
    """Theorem 4.4 plus checker cross-validation on small worlds.

    For every strict t-component cluster: the repo's
    :func:`isolation_counterexample` and the independent level-scan
    auditor must agree on whether the cluster is isolated, and whenever
    the border condition holds at the cluster's internal t, both must
    find it isolated.
    """
    graph = run.built.graph
    if graph.vertex_count > ISOLATION_SWEEP_MAX_USERS:
        return []
    k = run.built.config.k
    details: List[str] = []
    partition = strict_partition(graph, k)
    for cluster in partition.clusters:
        oracle = oracle_isolation_violations(graph, cluster, k)
        witness = isolation_counterexample(graph, cluster, k)
        if (witness is None) != (not oracle):
            details.append(
                f"cluster {sorted(cluster)[:6]}: repo checker says "
                f"{witness!r}, oracle says {oracle[:4]!r}"
            )
        sub = graph.subgraph(cluster)
        t = max((e.weight for e in sub.edges()), default=0.0)
        if border_condition_holds(graph, cluster, t, k) and oracle:
            details.append(
                f"Theorem 4.4 violated: border condition holds for "
                f"{sorted(cluster)[:6]} at t={t} yet vertices {oracle[:4]} "
                "change cluster on removal"
            )
    return details


@invariant("clean-failure-justified")
def _clean_failures(run: WorldRun) -> List[str]:
    """A refused request must be genuinely unservable (oracle-confirmed)."""
    if run.built.world.faulty:
        return []  # network failures are their own justification
    graph = run.built.graph
    k = run.built.config.k
    details: List[str] = []
    for record in run.records:
        if record.error_kind != "clustering":
            continue
        scan = oracle_smallest_cluster(
            graph, record.host, k, exclude=record.assigned_before
        )
        if scan is not None:
            details.append(
                f"host {record.host} was refused ({record.error}) but the "
                f"oracle finds a valid cluster {sorted(scan[0])[:6]}"
            )
    return details


@invariant("unexpected-errors")
def _unexpected_errors(run: WorldRun) -> List[str]:
    """Only typed clean failures may surface from a request."""
    return [
        f"host {record.host}: {record.error}"
        for record in run.records
        if record.error_kind == "unexpected"
    ]


# -- determinism --------------------------------------------------------------------


@invariant("deterministic-replay")
def _deterministic_replay(run: WorldRun) -> List[str]:
    """Serving the identical world twice is bit-identical (policy off)."""
    if run.replay_records is None:
        return []
    details: List[str] = []
    if len(run.replay_records) != len(run.records):
        return [
            f"replay served {len(run.replay_records)} requests, "
            f"first run {len(run.records)}"
        ]
    for first, second in zip(run.records, run.replay_records):
        if (first.error is None) != (second.error is None):
            details.append(
                f"host {first.host}: first run "
                f"{'failed' if first.error else 'succeeded'}, replay did not"
            )
            continue
        if first.result is None or second.result is None:
            if first.error != second.error:
                details.append(
                    f"host {first.host}: failure differs between runs: "
                    f"{first.error!r} vs {second.error!r}"
                )
            continue
        a, b = first.result, second.result
        if (
            a.region.rect != b.region.rect
            or a.cluster.members != b.cluster.members
            or a.clustering_messages != b.clustering_messages
            or a.bounding_messages != b.bounding_messages
            or a.region_from_cache != b.region_from_cache
        ):
            details.append(
                f"host {first.host}: replay diverged "
                f"({a.region.rect} vs {b.region.rect}, "
                f"messages {a.total_phase_messages} vs {b.total_phase_messages})"
            )
    return details


# -- message-level replay -----------------------------------------------------------


@invariant("p2p-matches-analytic")
def _p2p_matches_analytic(run: WorldRun) -> List[str]:
    """Fault-free wire protocol == analytic protocol, result for result."""
    if run.p2p is None:
        return []
    details: List[str] = list(run.p2p.mismatches)
    for wire, analytic in zip(run.p2p.results, run.p2p.analytic):
        if wire.cluster.members != analytic.cluster.members:
            details.append(
                f"host {wire.host}: p2p cluster "
                f"{sorted(wire.cluster.members)[:6]} != analytic "
                f"{sorted(analytic.cluster.members)[:6]}"
            )
            continue
        if wire.region.rect != analytic.region.rect:
            details.append(
                f"host {wire.host}: p2p region {wire.region.rect} != "
                f"analytic {analytic.region.rect}"
            )
    return details


@invariant("transcript-audit")
def _transcript_audit(run: WorldRun) -> List[str]:
    """The wire transcript alone reproduces the protocol's disclosure.

    Three checks per p2p world: (a) the auditor's recomputed agreement
    intervals are consistent and contain each member's true signed
    coordinate; (b) every device's disclosure ledger equals its wire
    transcript — no hidden question, no unrecorded answer; (c) the
    auditor never derives an interval for a user the ledger says was
    never asked.
    """
    if run.p2p is None:
        return []
    dataset = run.built.dataset
    details: List[str] = []
    try:
        intervals = audit_intervals(run.p2p.recorder.messages)
    except Exception as exc:
        return [f"transcript self-contradictory: {exc}"]
    for (user, direction), (low, high) in intervals.items():
        axis, sign = DIRECTION_PAYLOAD[direction]
        value = sign * dataset[user].coordinate(axis)
        if not (low < value <= high):
            details.append(
                f"user {user} {direction}: true signed coordinate {value} "
                f"outside audited interval ({low}, {high}]"
            )
    for user, device in run.p2p.devices.items():
        transcript_questions = run.p2p.recorder.question_set(user)
        if device.questions_answered != transcript_questions:
            missing = device.questions_answered - transcript_questions
            extra = transcript_questions - device.questions_answered
            details.append(
                f"user {user}: ledger/transcript mismatch "
                f"(ledger-only {sorted(missing)[:3]}, "
                f"transcript-only {sorted(extra)[:3]})"
            )
    return details


# -- dynamic populations ------------------------------------------------------------


@invariant("churn-incremental-equal")
def _churn_incremental_equal(run: WorldRun) -> List[str]:
    """The incrementally-patched world equals a from-scratch rebuild.

    After the churn schedule ran: (a) the engine's live WPG must be
    bit-identical to ``build_wpg_fast`` over the final positions — so
    every post-churn cloak equals what a rebuild-per-tick engine with the
    same request history would serve; (b) the engine's dataset must hold
    exactly the final positions; (c) every post-churn result satisfies
    containment, k-anonymity and the oracle-box relation at those
    positions; (d) no cached region is stale — each one still contains
    all its members.
    """
    if run.churn is None or run.engine is None:
        return []
    final = PointDataset(list(run.churn.final_points), name="post-churn")
    world = run.built.world
    details: List[str] = []

    rebuilt = build_wpg_fast(final, world.delta, world.max_peers)
    details.extend(
        graph_equality_details(
            run.engine.graph, rebuilt, "incremental", "rebuild"
        )
    )
    for user, point in enumerate(run.churn.final_points):
        if run.engine.dataset[user] != point:
            details.append(
                f"user {user}: engine dataset {run.engine.dataset[user]} "
                f"!= final position {point}"
            )
            break

    k = run.built.config.k
    optimal = world.policy == "optimal"
    for record in run.churn.post_records:
        result = record.result
        if result is None:
            continue
        members = sorted(result.cluster.members)
        if result.cluster.size < k:
            details.append(
                f"post-churn host {result.host}: cluster of "
                f"{result.cluster.size} < k={k}"
            )
        outside = [m for m in members if not result.region.rect.contains(final[m])]
        if outside:
            details.append(
                f"post-churn host {result.host}: members {outside[:4]} "
                f"outside cloak {result.region.rect}"
            )
        oracle = oracle_bounding_box([final[m] for m in members])
        if optimal and result.region.rect != oracle:
            details.append(
                f"post-churn host {result.host}: optimal cloak "
                f"{result.region.rect} != oracle box {oracle}"
            )
        elif not optimal and not result.region.rect.contains_rect(oracle):
            details.append(
                f"post-churn host {result.host}: cloak {result.region.rect} "
                f"does not contain oracle box {oracle}"
            )
    for members, region in run.engine.cached_regions().items():
        stale = [m for m in sorted(members) if not region.rect.contains(final[m])]
        if stale:
            details.append(
                f"stale cached region for cluster {sorted(members)[:6]}: "
                f"members {stale[:4]} moved out without invalidation"
            )
    return details


# -- cluster-tree fast path ---------------------------------------------------------


def _canonical_partition(groups) -> list[tuple[int, ...]]:
    """Order-free canonical form of a partition.

    Never compare group containers with ``sorted()`` directly: sets and
    frozensets order by the *subset* relation, a partial order that makes
    list comparisons meaningless.
    """
    return sorted(tuple(sorted(group)) for group in groups)


def _tree_record_diffs(
    tree_records: List[RequestRecord],
    reference_records: List[RequestRecord],
    label: str,
) -> List[str]:
    """Record-by-record differences between the two tree-replay passes."""
    if len(tree_records) != len(reference_records):
        return [
            f"{label}: tree pass produced {len(tree_records)} records, "
            f"reference {len(reference_records)}"
        ]
    details: List[str] = []
    for ours, ref in zip(tree_records, reference_records):
        if ours.error != ref.error:
            details.append(
                f"{label} host {ours.host}: tree pass "
                f"{ours.error or 'succeeded'!r} vs reference "
                f"{ref.error or 'succeeded'!r}"
            )
            continue
        if ours.result is None or ref.result is None:
            continue
        a, b = ours.result, ref.result
        if a.cluster.members != b.cluster.members:
            details.append(
                f"{label} host {ours.host}: tree cluster "
                f"{sorted(a.cluster.members)[:6]} != reference "
                f"{sorted(b.cluster.members)[:6]}"
            )
        elif a.region.rect != b.region.rect:
            details.append(
                f"{label} host {ours.host}: tree region {a.region.rect} "
                f"!= reference {b.region.rect}"
            )
        elif a.region_from_cache != b.region_from_cache:
            details.append(
                f"{label} host {ours.host}: region_from_cache "
                f"{a.region_from_cache} != reference {b.region_from_cache}"
            )
        elif a.cluster.from_cache != b.cluster.from_cache:
            details.append(
                f"{label} host {ours.host}: cluster from_cache "
                f"{a.cluster.from_cache} != reference {b.cluster.from_cache}"
            )
    return details


@invariant("cluster-tree-equal")
def _cluster_tree_equal(run: WorldRun) -> List[str]:
    """The persistent cluster tree is exactly the dendrogram/oracle math.

    Four layers, all on the same fuzzed world: (a) whole-graph strict and
    greedy partitions routed through the tree equal the direct
    ``centralized_k_clustering`` runs; (b) every requested host's tree
    ancestor walk equals the from-definition level-scan oracle, cluster
    and t both; (c) on small worlds, the tree's Property 4.1 isolation
    bits along each host's ancestor path match the exhaustive removal
    oracle; (d) the tree-replay engine pass (including post-churn, where
    the tree was patched incrementally) matches the closure-reference
    pass record for record, and the patched tree equals a fresh build
    over the churned graph node for node.
    """
    graph = run.built.graph
    k = run.built.config.k
    details: List[str] = []
    tree = ClusterTree(graph)

    for method in ("strict", "greedy"):
        direct = centralized_k_clustering(graph, k, method=method)
        routed = centralized_k_clustering(graph, k, method=method, tree=tree)
        if _canonical_partition(direct.all_groups()) != _canonical_partition(
            routed.all_groups()
        ):
            details.append(
                f"whole-graph {method} partition differs between the tree "
                "route and the direct dendrogram path"
            )

    for host in run.built.hosts:
        scan = oracle_smallest_cluster(graph, host, k)
        walk = tree.smallest_valid_cluster(host, k)
        if (scan is None) != (walk is None):
            details.append(
                f"host {host}: level scan "
                f"{'found no' if scan is None else 'found a'} cluster, "
                f"tree walk disagrees"
            )
        elif scan is not None and walk is not None:
            if set(scan[0]) != set(walk[0]) or scan[1] != walk[1]:
                details.append(
                    f"host {host}: tree walk ({sorted(walk[0])[:6]}, "
                    f"t={walk[1]}) != level scan ({sorted(scan[0])[:6]}, "
                    f"t={scan[1]})"
                )

    if graph.vertex_count <= ISOLATION_SWEEP_MAX_USERS:
        checked: set = set()
        for host in run.built.hosts:
            node = tree.smallest_valid_node(host, k)
            while node is not None:
                if node not in checked:
                    checked.add(node)
                    leaves = set(tree.leaves(node))
                    bit = tree.is_isolated(node, k)
                    violators = oracle_isolation_violations(graph, leaves, k)
                    if bit != (not violators):
                        details.append(
                            f"node {sorted(leaves)[:6]}: isolation bit "
                            f"{bit} but oracle violators {violators[:4]}"
                        )
                node = tree.parent(node)

    if run.tree is not None:
        details.extend(
            _tree_record_diffs(
                run.tree.records, run.tree.reference_records, "pass 1"
            )
        )
        if run.tree.post_records is not None:
            details.extend(
                _tree_record_diffs(
                    run.tree.post_records,
                    run.tree.reference_post_records or [],
                    "post-churn",
                )
            )
            live = run.tree.engine.clustering.tree  # type: ignore[attr-defined]
            fresh = ClusterTree(run.tree.engine.graph)
            if sorted(live.node_signatures()) != sorted(
                fresh.node_signatures()
            ):
                details.append(
                    "incrementally-patched cluster tree differs from a "
                    "fresh build over the churned graph"
                )
    return details


# -- flight-recorder reconciliation -------------------------------------------------


def _message_event_tally(events) -> tuple[int, int, int, int, Dict[tuple, int]]:
    """Fold message events into (sent, dropped, crashed, deduped, delivered).

    ``delivered`` maps ``(kind, recipient)`` to the number of request
    legs that reached the recipient's handler — the quantity each
    device's disclosure ledger counts.
    """
    sent = dropped = crashed = deduped = 0
    delivered: Dict[tuple, int] = {}
    for event in events:
        if event.kind != trace_mod.EVT_MESSAGE:
            continue
        sent += 1
        fields = event.fields
        if fields.get("dropped"):
            dropped += 1
            if fields.get("crashed"):
                crashed += 1
        elif fields.get("deduped"):
            deduped += 1
        elif fields.get("leg") == "request":
            key = (fields.get("kind"), fields.get("recipient"))
            delivered[key] = delivered.get(key, 0) + 1
    return sent, dropped, crashed, deduped, delivered


def _reconcile_traffic(
    events,
    network: PeerNetwork,
    label: str,
) -> List[str]:
    """Flight-recorder message events == the network's own counters."""
    details: List[str] = []
    stats = network.stats
    sent, dropped, crashed, deduped, _ = _message_event_tally(events)
    for name, from_events, from_stats in (
        ("sent", sent, stats.sent),
        ("dropped", dropped, stats.dropped),
        ("crash_dropped", crashed, stats.crash_dropped),
        ("deduped", deduped, stats.deduped),
    ):
        if from_events != from_stats:
            details.append(
                f"{label}: flight recorder saw {from_events} {name} "
                f"message(s), network counted {from_stats}"
            )
    if stats.unattributed:
        details.append(
            f"{label}: {stats.unattributed} message(s) crossed the wire "
            "without a trace id"
        )
    return details


def _request_event_details(events, expected: int, label: str) -> List[str]:
    """Start/end pairing and per-request trace-id uniqueness."""
    details: List[str] = []
    starts = [e for e in events if e.kind == trace_mod.EVT_REQUEST_START]
    ends = [e for e in events if e.kind == trace_mod.EVT_REQUEST_END]
    if len(starts) != expected:
        details.append(
            f"{label}: {len(starts)} request_start event(s) for "
            f"{expected} request(s) served"
        )
    if len(ends) != len(starts):
        details.append(
            f"{label}: {len(starts)} request_start vs {len(ends)} "
            "request_end event(s)"
        )
    distinct = {e.trace_id for e in starts}
    if len(distinct) != len(starts):
        details.append(
            f"{label}: {len(starts)} request_start event(s) share only "
            f"{len(distinct)} trace id(s)"
        )
    return details


@invariant("trace-ledger-agree")
def _trace_ledger_agree(run: WorldRun) -> List[str]:
    """The flight-recorder stream reconciles with ledgers and counters.

    Phantom events and unattributed traffic are both findings: (a) no
    event may overflow the ring or miss a trace id; (b) request start/end
    events pair up, one distinct trace per request; (c) message events
    equal the network's sent/dropped/crash/dedup counters exactly, and no
    message crosses the wire without a trace id; (d) each device's
    disclosure ledger (handler invocations) equals the delivered
    non-deduped request legs the flight recorder attributes to it;
    (e) aborts, clustering evictions, retries and churn patches in the
    stream match what the runtime actually did.
    """
    details: List[str] = []

    flight = run.flight
    if flight is not None:
        events = list(flight.events())
        if flight.dropped:
            details.append(
                f"first pass: flight recorder overflowed, {flight.dropped} "
                "event(s) lost"
            )
        orphans = sum(1 for e in events if e.trace_id is None)
        if orphans:
            details.append(
                f"first pass: {orphans} event(s) recorded without a trace id"
            )
        expected = len(run.records)
        if run.churn is not None:
            expected += len(run.churn.post_records)
        details.extend(_request_event_details(events, expected, "first pass"))
        aborts = sum(1 for e in events if e.kind == trace_mod.EVT_ABORT)
        abort_records = sum(
            1
            for record in run.records
            + (run.churn.post_records if run.churn is not None else [])
            if record.error_kind == "abort"
        )
        if aborts != abort_records:
            details.append(
                f"first pass: {aborts} abort event(s) vs "
                f"{abort_records} aborted request(s)"
            )
        if run.built.world.churn_moves:
            from repro.verify.worlds import churn_schedule

            batches = len(list(churn_schedule(run.built.world)))
            patches = sum(
                1 for e in events if e.kind == trace_mod.EVT_CHURN_PATCH
            )
            if patches != batches:
                details.append(
                    f"first pass: {patches} churn_patch event(s) for "
                    f"{batches} applied batch(es)"
                )
        session = (
            run.engine.reliable_session if run.engine is not None else None
        )
        if session is not None:
            details.extend(
                _reconcile_traffic(events, session.network, "first pass")
            )
            transport = session.transport
            if transport is not None:
                retries = sum(
                    1 for e in events if e.kind == trace_mod.EVT_RETRY
                )
                if retries != transport.retries:
                    details.append(
                        f"first pass: {retries} retry event(s) vs "
                        f"{transport.retries} transport retransmissions"
                    )
            evictions = sum(
                1
                for e in events
                if e.kind == trace_mod.EVT_EVICTION
                and e.fields.get("phase") == "clustering"
            )
            if evictions != len(session.evicted):
                details.append(
                    f"first pass: {evictions} clustering eviction event(s) "
                    f"vs {len(session.evicted)} evicted peer(s)"
                )

    p2p = run.p2p
    if p2p is not None and p2p.flight is not None:
        events = list(p2p.flight.events())
        if p2p.flight.dropped:
            details.append(
                f"p2p pass: flight recorder overflowed, "
                f"{p2p.flight.dropped} event(s) lost"
            )
        orphans = sum(1 for e in events if e.trace_id is None)
        if orphans:
            details.append(
                f"p2p pass: {orphans} event(s) recorded without a trace id"
            )
        # Each host is attempted twice: once over the wire, once by the
        # analytic comparison engine — two traces per host.
        details.extend(
            _request_event_details(
                events, 2 * len(run.built.hosts), "p2p pass"
            )
        )
        if p2p.network is not None:
            details.extend(
                _reconcile_traffic(events, p2p.network, "p2p pass")
            )
        _, _, _, _, delivered = _message_event_tally(events)
        for user, device in p2p.devices.items():
            for kind, ledger in (
                ("verify_bound", device.verify_invocations),
                ("adjacency", device.adjacency_invocations),
            ):
                attributed = delivered.get((kind, user), 0)
                if attributed != ledger:
                    details.append(
                        f"p2p pass: user {user} ledger counts {ledger} "
                        f"{kind} invocation(s), flight recorder attributes "
                        f"{attributed}"
                    )
    return details


# -- durable state (repro.persist) --------------------------------------------------


def _serve_outcomes(engine: CloakingEngine, hosts) -> list:
    """Canonical per-host outcomes, via the batch fast path when clean.

    ``request_many`` is attempted first (it is the production batch
    surface and exercises the registry/region fast path a restored
    engine must reproduce); worlds containing unservable hosts fall back
    to per-host requests so typed clean failures become comparable
    outcomes instead of aborting the whole batch.
    """
    try:
        results = engine.request_many(list(hosts))
    except Exception:
        outcomes = []
        for host in hosts:
            try:
                r = engine.request(host)
                outcomes.append(
                    (
                        "ok",
                        tuple(sorted(r.cluster.members)),
                        r.region.rect,
                        r.region.anonymity,
                        r.region_from_cache,
                    )
                )
            except Exception as exc:
                outcomes.append(("err", type(exc).__name__, str(exc)))
        return outcomes
    return [
        (
            "ok",
            tuple(sorted(r.cluster.members)),
            r.region.rect,
            r.region.anonymity,
            r.region_from_cache,
        )
        for r in results
    ]


def _engine_state_diffs(
    restored: CloakingEngine, reference: CloakingEngine, label: str
) -> List[str]:
    """Bit-level state comparison: graph, regions, registry, tree."""
    details = graph_equality_details(
        restored.graph, reference.graph, f"{label} restored", "reference"
    )
    if restored.cached_regions() != reference.cached_regions():
        details.append(f"{label}: cached region maps differ")
    reg_a = restored.clustering.registry
    reg_b = reference.clustering.registry
    clusters_a = [sorted(reg_a.cluster_by_id(c)) for c in range(len(reg_a))]
    clusters_b = [sorted(reg_b.cluster_by_id(c)) for c in range(len(reg_b))]
    if clusters_a != clusters_b:
        details.append(
            f"{label}: registries differ ({len(clusters_a)} vs "
            f"{len(clusters_b)} clusters)"
        )
    tree_a = getattr(restored.clustering, "tree", None)
    tree_b = getattr(reference.clustering, "tree", None)
    if tree_a is not None and tree_b is not None:
        if sorted(tree_a.node_signatures()) != sorted(tree_b.node_signatures()):
            details.append(f"{label}: cluster-tree node signatures differ")
    if restored.dataset.points != reference.dataset.points:
        details.append(f"{label}: dataset positions differ")
    return details


@invariant("snapshot-replay-equal")
def _snapshot_replay_equal(run: WorldRun) -> List[str]:
    """Crash anywhere, restore, and the engine is bit-identical.

    A self-contained differential replay per world: a persisted engine
    and an uninterrupted reference serve the same requests and consume
    the same churn schedule.  The persisted engine checkpoints at
    seeded-random batch indices and "crashes" at a seeded-random point
    (sometimes with garbage bytes torn onto the journal tail); the
    engine restored from its store must match the reference bit for bit
    — graph, cached regions, registry, tree signatures, request_many
    answers — both at the crash point and after the two engines consume
    the remainder of the schedule side by side.
    """
    world = run.built.world
    if world.faulty or world.p2p:
        return []  # reliability sessions are not replayable by design
    import random as _random
    import tempfile

    from repro.datasets.base import MutablePointDataset
    from repro.persist import PersistentStore
    from repro.verify.worlds import churn_schedule

    built = run.built
    rng = _random.Random(world.seed + 50423)
    use_tree = world.radio == "ideal" and rng.random() < 0.4

    def make() -> CloakingEngine:
        dataset = MutablePointDataset.from_dataset(built.dataset)
        graph = built.graph.copy()
        if use_tree:
            return CloakingEngine(
                dataset, graph, built.config,
                clustering="tree", policy=world.policy,
            )
        return CloakingEngine(
            dataset, graph, built.config,
            mode=world.mode, policy=world.policy,
        )

    details: List[str] = []
    with tempfile.TemporaryDirectory(prefix="persist-fuzz-") as tmp:
        store = PersistentStore(tmp)
        live = make()
        reference = make()
        live.enable_persistence(store)

        first_live = _serve_outcomes(live, built.hosts)
        first_ref = _serve_outcomes(reference, built.hosts)
        if first_live != first_ref:
            # Not a persistence property; bail out with the real finding.
            return ["twin engines diverged before any crash was simulated"]

        batches = list(churn_schedule(world)) if world.churn_moves else []
        crash_idx = rng.randint(0, len(batches))
        checkpoints: set = set()
        if crash_idx:
            checkpoints = {rng.randrange(crash_idx)}
            if rng.random() < 0.5:
                checkpoints.add(rng.randrange(crash_idx))
        elif rng.random() < 0.5:
            live.checkpoint()  # static world: checkpoint right after serving
        else:
            live.checkpoint()
            live.checkpoint()  # rotation: restore must pick the newest

        for index in range(crash_idx):
            live.apply_moves(batches[index])
            reference.apply_moves(batches[index])
            if index in checkpoints:
                live.checkpoint()

        # Crash: abandon the live engine; sometimes tear garbage onto the
        # journal tail (a record cut mid-write must be discarded cleanly).
        live.disable_persistence()
        if rng.random() < 0.3:
            with open(store.journal.path, "ab") as handle:
                handle.write(b"\x99\x00\x00\x00torn")

        restored = CloakingEngine.restore(PersistentStore(tmp))
        details.extend(_engine_state_diffs(restored, reference, "at crash"))
        after_live = _serve_outcomes(restored, built.hosts)
        after_ref = _serve_outcomes(reference, built.hosts)
        if after_live != after_ref:
            details.append(
                "restored engine answers request_many differently at the "
                "crash point"
            )

        for index in range(crash_idx, len(batches)):
            restored.apply_moves(batches[index])
            reference.apply_moves(batches[index])
        if crash_idx < len(batches):
            details.extend(
                _engine_state_diffs(restored, reference, "post-crash churn")
            )
            final_live = _serve_outcomes(restored, built.hosts)
            final_ref = _serve_outcomes(reference, built.hosts)
            if final_live != final_ref:
                details.append(
                    "restored engine diverged from the reference after "
                    "consuming the post-crash churn schedule"
                )
        restored.disable_persistence()
    return details


# -- the sharded service runtime ----------------------------------------------------


@invariant("service-shard-equal")
def _service_shard_equal(run: WorldRun) -> List[str]:
    """The shard count is unobservable: service == single engine.

    A self-contained differential run per world: a multi-process
    :class:`~repro.service.CloakingService` at a seeded shard count and
    a single in-process engine built from the same spec serve the same
    hosts, consume the same churn schedule, and serve again.  Every
    outcome dict must match bit for bit, the merged registry must equal
    the reference's as a SET of clusters (registration order is the one
    thing that legitimately differs between replicas), the merged region
    cache must match rect for rect, and the per-shard geometric graph
    views must stitch back into the reference graph exactly.

    Faulty/p2p worlds are skipped: reliability sessions hold per-device
    protocol state that is not part of the serving surface the service
    shards (the same exclusion ``snapshot-replay-equal`` makes).
    """
    world = run.built.world
    if world.faulty or world.p2p:
        return []
    import random as _random

    from repro.service import CloakingService, build_engine, spec_from_world
    from repro.service.worker import outcomes_of
    from repro.verify.worlds import churn_schedule

    built = run.built
    rng = _random.Random(world.seed + 77003)
    shards = rng.randint(2, 3)
    spec = spec_from_world(world, shards=shards)
    reference = build_engine(spec)
    hosts = list(built.hosts)
    details: List[str] = []
    service = CloakingService(spec)
    try:
        if [service.request(h) for h in hosts] != outcomes_of(reference, hosts):
            details.append(
                f"{shards}-shard service diverged from the single engine "
                "on the first serving pass"
            )
        batches = list(churn_schedule(world)) if world.churn_moves else []
        for index, batch in enumerate(batches):
            service.apply_moves(batch)
            reference.apply_moves(batch)
            if service.request_many(hosts) != outcomes_of(reference, hosts):
                details.append(
                    f"{shards}-shard service diverged after churn batch "
                    f"{index + 1}/{len(batches)}"
                )
                break
        if not details:
            if service.registry_clusters() != set(
                reference.clustering.registry.clusters()
            ):
                details.append(
                    f"{shards}-shard merged registry differs from the "
                    "reference as a set of clusters"
                )
            if service.cached_regions() != {
                members: (region.rect, region.anonymity)
                for members, region in reference.cached_regions().items()
            }:
                details.append(
                    f"{shards}-shard merged region cache differs from the "
                    "reference"
                )
            views = service.shard_graph_views()
            for view in views:
                if not view["halo_ok"]:
                    details.append(
                        f"delta-halo invariant violated: {view['violations'][:3]}"
                    )
            stitched = WeightedProximityGraph.from_edges(
                (
                    (u, v, w)
                    for view in views
                    for u, v, w in view["edges"]
                ),
                vertices=range(world.n),
            )
            details.extend(
                graph_equality_details(
                    stitched, reference.graph, "stitched-shards", "reference"
                )
            )
    finally:
        service.close()
    return details


# -- online adaptive tuning ---------------------------------------------------------


def _comparable_outcome(engine: CloakingEngine, host: int):
    """One host's answer, stripped of cache/cost provenance.

    The sharing differential compares *answers*: cluster membership,
    region bits, anonymity, and typed failures.  Whether the answer came
    from a shared slot, the demand cache, or a fresh bound — and how
    many messages it cost — is exactly what sharing is allowed to
    change.
    """
    try:
        r = engine.request(host)
    except Exception as exc:
        return ("err", type(exc).__name__, str(exc))
    return (
        "ok",
        tuple(sorted(r.cluster.members)),
        r.region.rect,
        r.region.anonymity,
    )


def _stale_slot_details(engine: CloakingEngine, label: str) -> List[str]:
    """From-definition freshness check of every shared slot.

    A slot must hold either the cluster's currently cached region (bit
    for bit) or, when churn invalidated it, the rect *this member's*
    on-demand request would compute over the current positions.  Any
    other content is a stale shared region waiting to be served.
    """
    details: List[str] = []
    regions = engine.cached_regions()
    registry = engine.clustering.registry
    for member, (members, rect) in sorted(engine.shared_slots().items()):
        if member not in members:
            details.append(
                f"{label}: user {member}'s slot names a cluster that "
                f"does not contain them"
            )
            continue
        if registry.cluster_of(member) != members:
            details.append(
                f"{label}: user {member}'s slot cluster is not their "
                f"registered cluster"
            )
            continue
        cached = regions.get(members)
        if cached is not None:
            if rect != cached.rect:
                details.append(
                    f"{label}: user {member}'s slot rect differs from "
                    f"the cluster's cached region"
                )
            continue
        fresh, _ = engine._bound(members, member)
        fresh = engine._enforce_granularity(fresh, member)
        if rect != fresh:
            details.append(
                f"{label}: user {member}'s slot holds a stale rect "
                f"(recomputing their on-demand region over the current "
                f"positions gives different bits)"
            )
    return details


@invariant("region-share-equal")
def _region_share_equal(run: WorldRun) -> List[str]:
    """Proactive region sharing never changes an answer.

    A self-contained twin differential per world: an engine with
    ``share_regions`` on and an untuned twin serve the same hosts in the
    same order, consume the same churn schedule, and serve again — every
    answer (members, region bits, anonymity, typed failures) must match
    bit for bit; only hit/miss provenance may differ.  After every churn
    batch and serving pass the sharing engine's slots are audited from
    definition: each slot holds either the cluster's live cached region
    or the exact rect its member's on-demand request would compute over
    the current positions — churn must drain (or refresh) every shared
    copy, and no stale shared region may ever serve.
    """
    world = run.built.world
    if world.faulty or world.p2p:
        return []  # tuning is refused for reliability sessions by design
    import random as _random

    from repro.datasets.base import MutablePointDataset
    from repro.tuning import TuningPolicy
    from repro.verify.worlds import churn_schedule

    built = run.built
    rng = _random.Random(world.seed + 61211)
    use_tree = world.radio == "ideal" and rng.random() < 0.4

    def make(tuning: Optional[TuningPolicy]) -> CloakingEngine:
        dataset = MutablePointDataset.from_dataset(built.dataset)
        graph = built.graph.copy()
        if use_tree:
            return CloakingEngine(
                dataset, graph, built.config,
                clustering="tree", policy=world.policy, tuning=tuning,
            )
        return CloakingEngine(
            dataset, graph, built.config,
            mode=world.mode, policy=world.policy, tuning=tuning,
        )

    sharing = make(TuningPolicy(share_regions=True))
    plain = make(None)
    hosts = list(built.hosts)
    details: List[str] = []

    def serve_pass(label: str) -> None:
        for host in hosts:
            got = _comparable_outcome(sharing, host)
            want = _comparable_outcome(plain, host)
            if got != want:
                details.append(
                    f"{label}: host {host} answered {got!r} with sharing "
                    f"on but {want!r} on demand"
                )
        details.extend(_stale_slot_details(sharing, label))

    serve_pass("first pass")
    batches = list(churn_schedule(world)) if world.churn_moves else []
    for index, batch in enumerate(batches):
        sharing.apply_moves(batch)
        plain.apply_moves(batch)
        details.extend(
            _stale_slot_details(sharing, f"after churn batch {index + 1}")
        )
        if details:
            break
        serve_pass(f"pass after churn batch {index + 1}")
        if details:
            break
    if not details and sharing.cached_regions() != plain.cached_regions():
        details.append(
            "sharing engine's final region cache differs from the "
            "on-demand twin's"
        )
    return details


@invariant("tuning-sound")
def _tuning_sound(run: WorldRun) -> List[str]:
    """Every tuned answer is provably as strict as the untuned one.

    Two legs, each a self-contained twin differential:

    * **k-relaxation** — an engine with ``relax_k`` on serves the
      world's hosts (and re-serves through the churn schedule).  For
      every relaxed answer, the exact level-scan oracle is re-run over
      the *pre-request* assignment frontier: it must confirm no k-valid
      cluster existed at the original k (a relaxation that masks a
      findable k-cluster is a defect), and the relaxed cluster must be
      genuinely valid — host included, size >= the per-density-cell
      floor, members previously unassigned, region covering every
      member.

    * **adaptive δ** — an engine with ``adapt_delta`` on and a positive
      granularity floor, against an untuned twin at the same floor:
      every tuned region must be contained in the untuned one (denser
      cells only ever shrink the padding) while still covering all
      members.
    """
    world = run.built.world
    if world.faulty or world.p2p:
        return []
    from repro.datasets.base import MutablePointDataset
    from repro.errors import ClusteringError
    from repro.tuning import TuningPolicy
    from repro.verify.worlds import churn_schedule

    built = run.built
    hosts = list(built.hosts)
    details: List[str] = []
    batches = list(churn_schedule(world)) if world.churn_moves else []

    def make(tuning: Optional[TuningPolicy], min_area: float) -> CloakingEngine:
        dataset = MutablePointDataset.from_dataset(built.dataset)
        graph = built.graph.copy()
        return CloakingEngine(
            dataset, graph, built.config,
            mode=world.mode, policy=world.policy,
            min_area=min_area, tuning=tuning,
        )

    # Leg 1: oracle-gated k-relaxation.
    relaxing = make(TuningPolicy(relax_k=True), 0.0)
    k = built.config.k
    registry = relaxing.clustering.registry

    def audit_relaxations(label: str) -> None:
        for host in hosts:
            assigned_before = frozenset(registry.assigned_view())
            try:
                result = relaxing.request(host)
            except ClusteringError:
                continue  # rejected or exhausted: the failure propagated
            except Exception:
                continue  # other typed failures are out of scope here
            if result.relaxed_k is None:
                continue
            members = result.cluster.members
            if not result.relaxed_k < k:
                details.append(
                    f"{label}: host {host} relaxed to k'={result.relaxed_k} "
                    f">= k={k}"
                )
            if host not in members:
                details.append(
                    f"{label}: host {host} missing from its relaxed cluster"
                )
            if len(members) < result.relaxed_k:
                details.append(
                    f"{label}: host {host}'s relaxed cluster of "
                    f"{len(members)} < k'={result.relaxed_k}"
                )
            plan = relaxing.delta_plan()
            floor = plan.relax_floor_at(
                relaxing.dataset[host], k, relaxing.tuning.k_floor
            )
            if result.relaxed_k < floor:
                details.append(
                    f"{label}: host {host} relaxed below the density "
                    f"floor ({result.relaxed_k} < {floor})"
                )
            overlap = members & assigned_before
            if host in assigned_before or (overlap - {host}):
                details.append(
                    f"{label}: host {host}'s relaxed cluster reused "
                    f"already-assigned users {sorted(overlap)[:5]}"
                )
            for member in sorted(members):
                if not result.region.rect.contains(relaxing.dataset[member]):
                    details.append(
                        f"{label}: relaxed region for host {host} does "
                        f"not cover member {member}"
                    )
            found = oracle_smallest_cluster(
                relaxing.graph, host, k, exclude=assigned_before
            )
            if found is not None:
                details.append(
                    f"{label}: host {host} was relaxed to "
                    f"k'={result.relaxed_k} but the oracle finds a k-valid "
                    f"cluster {sorted(found[0])[:6]} at k={k}"
                )

    audit_relaxations("pre-churn")
    for index, batch in enumerate(batches):
        relaxing.apply_moves(batch)
        audit_relaxations(f"after churn batch {index + 1}")
        if details:
            break

    # Leg 2: adaptive δ only ever tightens the granularity padding.
    min_area = (world.delta * 2.0) ** 2
    tuned = make(TuningPolicy(adapt_delta=True), min_area)
    static = make(None, min_area)
    for host in hosts:
        got = _comparable_outcome(tuned, host)
        want = _comparable_outcome(static, host)
        if got[0] != want[0]:
            details.append(
                f"adaptive δ changed host {host}'s outcome kind: "
                f"{got!r} vs {want!r}"
            )
            continue
        if got[0] != "ok":
            continue
        if got[1] != want[1]:
            details.append(
                f"adaptive δ changed host {host}'s cluster membership"
            )
            continue
        tuned_rect, static_rect = got[2], want[2]
        if not static_rect.contains_rect(tuned_rect):
            details.append(
                f"host {host}: tuned region {tuned_rect} is not contained "
                f"in the untuned region {static_rect}"
            )
        for member in got[1]:
            if not tuned_rect.contains(tuned.dataset[member]):
                details.append(
                    f"host {host}: tuned region does not cover member "
                    f"{member}"
                )
    return details
