"""The seed-replay invariant fuzzer: ``python -m repro.verify.fuzz``.

Runs N seeded worlds end to end through the real engines
(:class:`~repro.cloaking.engine.CloakingEngine`, and
:class:`~repro.cloaking.p2p_engine.P2PCloakingSession` for the worlds
flagged for message-level replay), checks every registered invariant,
and:

* prints a per-invariant summary;
* dumps a minimal JSON repro (the world dict plus the violations) for
  every failing world into ``--repro-dir``;
* exits nonzero when anything failed.

``world = random_world(seed)`` is a pure function, so replaying a
failure needs only its seed (``--seed S --worlds 1``) or its repro file
(``--replay path.json``).  The harness reports its own activity through
the observability registry under ``verify.*``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro import obs
from repro.cloaking.engine import CloakingEngine
from repro.cloaking.p2p_engine import P2PCloakingSession
from repro.clustering.distributed import DistributedClustering
from repro.errors import ClusteringError
from repro.network.failures import FailurePlan
from repro.network.node import populate_network
from repro.network.reliability import ProtocolAbort, ReliabilityPolicy
from repro.network.simulator import PeerNetwork
from repro.obs import names as metric
from repro.obs import trace as _trace
from repro.verify.invariants import (
    ChurnObservation,
    P2PObservation,
    RequestRecord,
    TreeObservation,
    Violation,
    WorldRun,
    check_world,
    registered_invariants,
)
from repro.verify.transcript import TranscriptRecorder
from repro.verify.worlds import (
    BuiltWorld,
    World,
    build_world,
    churn_schedule,
    random_world,
)


def _make_engine(built: BuiltWorld) -> CloakingEngine:
    world = built.world
    if world.churn_moves:
        # The churn runtime patches the engine's graph in place; each
        # serving pass gets its own copy so built.graph stays the
        # pristine t=0 graph the differential invariants compare against.
        return CloakingEngine(
            built.dataset,
            built.graph.copy(),
            built.config,
            mode=world.mode,
            policy=world.policy,
        )
    if world.faulty:
        return CloakingEngine(
            built.dataset,
            built.graph,
            built.config,
            mode="distributed",
            policy=world.policy,
            reliability=ReliabilityPolicy(),
            failure_plan=FailurePlan(
                world.drop_probability, crashed=world.crashed, seed=world.seed
            ),
        )
    return CloakingEngine(
        built.dataset, built.graph, built.config, mode=world.mode, policy=world.policy
    )


def _request_loop(
    engine: CloakingEngine, hosts: Sequence[int]
) -> List[RequestRecord]:
    """Serve ``hosts`` in order, recording results and typed failures."""
    registry = engine.clustering.registry
    records: List[RequestRecord] = []
    recording = obs.enabled()
    for host in hosts:
        record = RequestRecord(
            host=host, assigned_before=frozenset(registry.assigned_view())
        )
        if recording:
            obs.inc(metric.VERIFY_REQUESTS)
        try:
            record.result = engine.request(host)
        except ClusteringError as exc:
            record.error = f"{type(exc).__name__}: {exc}"
            record.error_kind = "clustering"
        except ProtocolAbort as exc:
            record.error = f"{type(exc).__name__}: {exc}"
            record.error_kind = "abort"
        except Exception as exc:  # anything else is itself a finding
            record.error = f"{type(exc).__name__}: {exc}"
            record.error_kind = "unexpected"
        if record.error is not None and recording:
            obs.inc(metric.VERIFY_CLEAN_FAILURES)
        records.append(record)
    return records


def _serve(
    built: BuiltWorld,
) -> tuple[CloakingEngine, List[RequestRecord], Optional[ChurnObservation]]:
    """One full pass over the world's request sequence (plus churn).

    Churn worlds continue after the first pass: the seeded movement
    schedule streams through ``engine.apply_moves`` and the same hosts
    are served again from the incrementally-patched world — the
    ``churn-incremental-equal`` invariant then compares that world
    against a from-scratch rebuild.
    """
    engine = _make_engine(built)
    records = _request_loop(engine, built.hosts)
    churn: Optional[ChurnObservation] = None
    if built.world.churn_moves:
        moves_applied = 0
        for batch in churn_schedule(built.world):
            engine.apply_moves(batch)
            moves_applied += len(batch)
        churn = ChurnObservation(
            final_points=engine.dataset.points,
            moves_applied=moves_applied,
            post_records=_request_loop(engine, built.hosts),
        )
    return engine, records, churn


def _serve_tree(built: BuiltWorld) -> TreeObservation:
    """Serve the world twice more: cluster-tree fast path vs its reference.

    Runs independently of the world's own mode: both engines use the
    distributed closure reading of Algorithm 2 — one resolved on the
    persistent cluster tree, one by Prim spans and t-floods — over
    private graph copies, so churn worlds patch the tree incrementally
    while the pristine ``built.graph`` stays untouched.  The
    ``cluster-tree-equal`` invariant compares the record streams.
    """
    world = built.world
    tree_engine = CloakingEngine(
        built.dataset,
        built.graph.copy(),
        built.config,
        policy=world.policy,
        clustering="tree",
    )
    reference_graph = built.graph.copy()
    reference = CloakingEngine(
        built.dataset,
        reference_graph,
        built.config,
        policy=world.policy,
        clustering=DistributedClustering(
            reference_graph, built.config.k, closure=True
        ),
    )
    observation = TreeObservation(
        engine=tree_engine,
        reference=reference,
        records=_request_loop(tree_engine, built.hosts),
        reference_records=_request_loop(reference, built.hosts),
    )
    if world.churn_moves:
        for batch in churn_schedule(world):
            tree_engine.apply_moves(batch)
            reference.apply_moves(batch)
        observation.post_records = _request_loop(tree_engine, built.hosts)
        observation.reference_post_records = _request_loop(
            reference, built.hosts
        )
    return observation


#: Flight-recorder capacity for fuzzed worlds: far above any world's
#: event volume, so an overflow inside a run is itself a finding.
_FUZZ_FLIGHT_CAPACITY = 1 << 20


def _serve_p2p(built: BuiltWorld) -> P2PObservation:
    """Replay the same request sequence message-level, with a wire tap.

    A fresh flight recorder is active for the whole pass; the
    ``trace-ledger-agree`` invariant reconciles its event stream against
    the network counters and every device's disclosure ledger.
    """
    network = PeerNetwork()
    devices = populate_network(network, built.graph, list(built.dataset.points))
    recorder = TranscriptRecorder()
    recorder.tap_network(network, devices)
    session = P2PCloakingSession(
        network,
        built.graph,
        built.dataset,
        built.config,
        policy_name=built.world.policy,
    )
    analytic_engine = CloakingEngine(
        built.dataset,
        built.graph,
        built.config,
        mode="distributed",
        policy=built.world.policy,
    )
    flight = _trace.install_recorder(
        _trace.FlightRecorder(capacity=_FUZZ_FLIGHT_CAPACITY)
    )
    observation = P2PObservation(
        results=[],
        recorder=recorder,
        devices=devices,
        analytic=[],
        flight=flight,
        network=network,
    )
    try:
        for host in built.hosts:
            wire = wire_error = None
            analytic = analytic_error = None
            try:
                wire = session.request(host)
            except ClusteringError as exc:
                wire_error = str(exc)
            try:
                analytic = analytic_engine.request(host)
            except ClusteringError as exc:
                analytic_error = str(exc)
            if (wire is None) != (analytic is None):
                observation.mismatches.append(
                    f"host {host}: wire "
                    f"{'failed: ' + str(wire_error) if wire is None else 'succeeded'}"
                    f", analytic "
                    f"{'failed: ' + str(analytic_error) if analytic is None else 'succeeded'}"
                )
                continue
            if wire is not None and analytic is not None:
                observation.results.append(wire)
                observation.analytic.append(analytic)
    finally:
        _trace.uninstall_recorder()
    return observation


def run_world(world: World) -> WorldRun:
    """Build and serve one world, twice (determinism), plus p2p replay.

    The first serving pass runs under a fresh flight recorder (stashed on
    the :class:`WorldRun` for ``trace-ledger-agree``); the determinism
    replay runs without one, so it also witnesses that recording does not
    change results.
    """
    built = build_world(world)
    with obs.span(metric.SPAN_VERIFY_WORLD):
        flight = _trace.install_recorder(
            _trace.FlightRecorder(capacity=_FUZZ_FLIGHT_CAPACITY)
        )
        try:
            engine, records, churn = _serve(built)
        finally:
            _trace.uninstall_recorder()
        _replay_engine, replay_records, _replay_churn = _serve(built)
        tree = _serve_tree(built)
        p2p = None
        if world.p2p:
            if obs.enabled():
                obs.inc(metric.VERIFY_P2P_WORLDS)
            p2p = _serve_p2p(built)
    if obs.enabled():
        obs.inc(metric.VERIFY_WORLDS)
    return WorldRun(
        built=built,
        engine=engine,
        records=records,
        replay_records=replay_records,
        p2p=p2p,
        churn=churn,
        tree=tree,
        flight=flight,
    )


def _dump_repro(
    directory: Path, world: World, violations: List[Violation]
) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"world-{world.seed}.json"
    payload = {
        "world": world.to_dict(),
        "violations": [
            {"invariant": v.invariant, "detail": v.detail} for v in violations
        ],
        "replay": (
            f"python -m repro.verify.fuzz --replay {path}"
        ),
    }
    path.write_text(json.dumps(payload, indent=2))
    return path


def fuzz(
    worlds: int,
    seed: int,
    repro_dir: Path,
    invariants: Optional[List[str]] = None,
    verbose: bool = False,
    replay_worlds: Optional[List[World]] = None,
) -> int:
    """Run the fuzzer; returns the number of failing worlds."""
    if not obs.enabled():
        obs.enable()
    failures = 0
    checked = 0
    per_invariant: dict[str, int] = {}
    pool = (
        replay_worlds
        if replay_worlds is not None
        else [random_world(seed + i) for i in range(worlds)]
    )
    for world in pool:
        run = run_world(world)
        violations = check_world(run, names=invariants)
        checked += 1
        if verbose:
            served = sum(1 for r in run.records if r.result is not None)
            print(
                f"world seed={world.seed} kind={world.kind} n={world.n} "
                f"k={world.k} policy={world.policy} served={served}/"
                f"{len(run.records)}"
                + (" [p2p]" if world.p2p else "")
                + (" [faults]" if world.faulty else "")
                + (f" [churn={world.churn_moves}]" if world.churn_moves else "")
            )
        if violations:
            failures += 1
            path = _dump_repro(repro_dir, world, violations)
            print(f"FAIL world seed={world.seed}: repro written to {path}")
            for violation in violations:
                per_invariant[violation.invariant] = (
                    per_invariant.get(violation.invariant, 0) + 1
                )
                print(f"  [{violation.invariant}] {violation.detail}")
    checked_names = (
        invariants if invariants is not None else registered_invariants()
    )
    print(
        f"fuzz: {checked} worlds, {len(checked_names)} invariants, "
        f"{failures} failing world(s)"
    )
    if per_invariant:
        for name, count in sorted(per_invariant.items()):
            print(f"  {name}: {count} violation(s)")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.fuzz",
        description="Seed-replay invariant fuzzer over end-to-end worlds.",
    )
    parser.add_argument(
        "--worlds", type=int, default=50, help="number of worlds to run"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed of the first world"
    )
    parser.add_argument(
        "--repro-dir",
        type=Path,
        default=Path("fuzz-failures"),
        help="directory for failing-world JSON repros",
    )
    parser.add_argument(
        "--invariant",
        action="append",
        dest="invariants",
        metavar="NAME",
        help="check only this invariant (repeatable)",
    )
    parser.add_argument(
        "--replay",
        type=Path,
        default=None,
        help="replay one failing-world JSON repro instead of fuzzing",
    )
    parser.add_argument(
        "--list-invariants",
        action="store_true",
        help="print the registered invariants and exit",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.list_invariants:
        for name in registered_invariants():
            print(name)
        return 0
    if args.invariants:
        unknown = set(args.invariants) - set(registered_invariants())
        if unknown:
            parser.error(f"unknown invariant(s): {sorted(unknown)}")
    replay_worlds = None
    if args.replay is not None:
        payload = json.loads(args.replay.read_text())
        replay_worlds = [World.from_dict(payload["world"])]
    failures = fuzz(
        worlds=args.worlds,
        seed=args.seed,
        repro_dir=args.repro_dir,
        invariants=args.invariants,
        verbose=args.verbose,
        replay_worlds=replay_worlds,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
