"""Property-based world generation for the verification harness.

A *world* is everything one end-to-end cloaking simulation needs: a
dataset kind and size, the WPG construction parameters, the anonymity
requirement, the bounding increment policy, the radio model, and an
optional fault plan.  Worlds are plain frozen data with
``to_dict``/``from_dict``, so a failing fuzz seed can be dumped as JSON
and replayed bit-for-bit.

Two generators produce them:

* :func:`random_world` — one seeded draw, used by the fuzz CLI
  (``world seed -> world`` is a pure function);
* :func:`world_strategy` — a Hypothesis strategy over the same space,
  used by the property suites (shrinking finds minimal counterexamples).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, replace
from typing import Optional

import numpy as np

from repro.config import SimulationConfig
from repro.datasets import gaussian_clusters, grid_points, uniform_points
from repro.datasets.base import PointDataset
from repro.errors import VerificationError
from repro.graph.build import build_wpg, build_wpg_fast
from repro.graph.wpg import WeightedProximityGraph
from repro.radio.measurement import ProximityMeter
from repro.radio.rss import LogDistanceRSSModel
from repro.radio.tdoa import TDOAModel

DATASET_KINDS = ("uniform", "gaussian", "grid")
RADIO_MODELS = ("ideal", "shadowing", "tdoa")
POLICIES = ("linear", "exponential", "secure", "secure-exact", "optimal")
#: Policies the message-level / reliability paths accept (progressive
#: presets only — "optimal" exposes coordinates and has no wire protocol).
PROGRESSIVE_POLICIES = ("linear", "exponential", "secure", "secure-exact")
MODES = ("distributed", "centralized")


@dataclass(frozen=True, slots=True)
class World:
    """One fully specified simulation world (JSON-serialisable)."""

    seed: int
    kind: str = "uniform"
    n: int = 48
    k: int = 3
    delta: float = 0.12
    max_peers: int = 6
    policy: str = "secure"
    mode: str = "distributed"
    radio: str = "ideal"
    requests: int = 4
    drop_probability: float = 0.0
    crashed: tuple[int, ...] = field(default_factory=tuple)
    p2p: bool = False
    #: Total user moves in the seeded churn schedule applied after the
    #: first serving pass (0 = static world, the historical default —
    #: old world JSON replays unchanged).
    churn_moves: int = 0

    def __post_init__(self) -> None:
        if self.kind not in DATASET_KINDS:
            raise VerificationError(f"unknown dataset kind {self.kind!r}")
        if self.radio not in RADIO_MODELS:
            raise VerificationError(f"unknown radio model {self.radio!r}")
        if self.policy not in POLICIES:
            raise VerificationError(f"unknown policy {self.policy!r}")
        if self.mode not in MODES:
            raise VerificationError(f"unknown mode {self.mode!r}")
        if not 1 <= self.k <= self.n:
            raise VerificationError(f"need 1 <= k <= n, got k={self.k}, n={self.n}")
        if not 0.0 <= self.drop_probability < 1.0:
            raise VerificationError(
                f"drop_probability must be in [0, 1), got {self.drop_probability}"
            )
        if (self.p2p or self.faulty) and (
            self.mode != "distributed" or self.policy not in PROGRESSIVE_POLICIES
        ):
            raise VerificationError(
                "p2p/fault worlds need the distributed mode and a "
                f"progressive policy, got mode={self.mode!r} "
                f"policy={self.policy!r}"
            )
        if self.churn_moves < 0:
            raise VerificationError(
                f"churn_moves must be non-negative, got {self.churn_moves}"
            )
        if self.churn_moves > 0 and (
            self.faulty or self.p2p or self.radio != "ideal"
        ):
            raise VerificationError(
                "churn worlds require the ideal radio model and no "
                "faults/p2p replay: incremental WPG maintenance cannot "
                "replay stateful noise streams or pinned device positions"
            )

    @property
    def faulty(self) -> bool:
        """True when the world injects message loss or crashes."""
        return self.drop_probability > 0.0 or bool(self.crashed)

    def to_dict(self) -> dict:
        """A JSON-ready representation (the fuzz repro payload)."""
        payload = asdict(self)
        payload["crashed"] = list(self.crashed)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "World":
        """Rebuild a world dumped by :meth:`to_dict`."""
        data = dict(payload)
        data["crashed"] = tuple(data.get("crashed", ()))
        return cls(**data)


@dataclass(frozen=True, slots=True)
class BuiltWorld:
    """A world realised into the objects the engines consume."""

    world: World
    dataset: PointDataset
    config: SimulationConfig
    graph: WeightedProximityGraph
    scalar_graph: WeightedProximityGraph
    hosts: tuple[int, ...]

    def meter(self) -> Optional[ProximityMeter]:
        """A fresh proximity meter for this world's radio model.

        Noisy models carry RNG state, so every WPG build needs its own
        same-seeded instance to stay bit-identical; ``None`` selects the
        builder's default ideal model.
        """
        return _meter_for(self.world, self.dataset)


def _meter_for(world: World, dataset: PointDataset) -> Optional[ProximityMeter]:
    if world.radio == "ideal":
        return None
    if world.radio == "shadowing":
        model = LogDistanceRSSModel(shadowing_sigma_db=2.0, seed=world.seed + 7)
        return ProximityMeter(dataset, model)
    if world.radio == "tdoa":
        model = TDOAModel(jitter_sigma=2e-8, seed=world.seed + 7)
        return ProximityMeter(dataset, model)
    raise VerificationError(f"unknown radio model {world.radio!r}")


def _dataset_for(world: World) -> PointDataset:
    if world.kind == "uniform":
        return uniform_points(world.n, seed=world.seed)
    if world.kind == "gaussian":
        return gaussian_clusters(world.n, clusters=4, spread=0.05, seed=world.seed)
    # Grid worlds round n down to the nearest square at generation time.
    side = math.isqrt(world.n)
    return grid_points(side, jitter=0.2, seed=world.seed)


def random_world(seed: int) -> World:
    """One seeded world draw — the fuzz CLI's generator.

    The draw covers all dataset kinds, radio models, increment policies
    and both engine modes; roughly one world in seven replays message
    -level through the peer network and one in seven injects faults.
    """
    rng = np.random.default_rng(seed)
    kind = str(rng.choice(DATASET_KINDS, p=[0.5, 0.3, 0.2]))
    if kind == "grid":
        side = int(rng.integers(5, 11))
        n = side * side
    else:
        n = int(rng.integers(24, 121))
    k = int(rng.integers(2, min(8, n) + 1))
    delta = float(rng.uniform(0.06, 0.22))
    max_peers = int(rng.integers(3, 11))
    policy = str(rng.choice(POLICIES))
    mode = str(rng.choice(MODES, p=[0.75, 0.25]))
    radio = str(rng.choice(RADIO_MODELS, p=[0.6, 0.25, 0.15]))
    requests = int(rng.integers(3, 9))
    flavor = rng.random()
    drop_probability = 0.0
    crashed: tuple[int, ...] = ()
    p2p = False
    churn_moves = 0
    if flavor < 0.15:
        p2p = True
    elif flavor < 0.30:
        drop_probability = float(rng.uniform(0.02, 0.2))
        if rng.random() < 0.4:
            crashed = tuple(
                int(v) for v in rng.choice(n, size=min(2, n - k), replace=False)
            )
    elif flavor < 0.45 and radio == "ideal":
        # Dynamic-population worlds: a seeded churn schedule runs between
        # two serving passes and the churn invariant compares the
        # incrementally-patched world against a from-scratch rebuild.
        churn_moves = int(rng.integers(5, 41))
    if p2p or drop_probability > 0.0 or crashed:
        mode = "distributed"
        if policy not in PROGRESSIVE_POLICIES:
            policy = str(rng.choice(PROGRESSIVE_POLICIES))
    return World(
        seed=seed,
        kind=kind,
        n=n,
        k=k,
        delta=delta,
        max_peers=max_peers,
        policy=policy,
        mode=mode,
        radio=radio,
        requests=requests,
        drop_probability=drop_probability,
        crashed=crashed,
        p2p=p2p,
        churn_moves=churn_moves,
    )


def churn_schedule(world: World) -> list[list[tuple[int, "Point"]]]:
    """The world's seeded churn schedule: batches of ``(user, new point)``.

    A pure function of the world (``seed``, ``n``, ``churn_moves``), so a
    replayed world re-applies the identical movement.  Moves land uniform
    in the unit square, grouped into small batches; a user appears at
    most once per batch (the ``apply_moves`` contract) but may move again
    in later batches.
    """
    from repro.geometry.point import Point

    rng = np.random.default_rng(world.seed + 86243)
    remaining = world.churn_moves
    batches: list[list[tuple[int, Point]]] = []
    while remaining > 0:
        size = int(min(remaining, rng.integers(1, 7)))
        users = rng.choice(world.n, size=size, replace=False)
        coords = rng.random((size, 2))
        batches.append(
            [
                (int(u), Point(float(x), float(y)))
                for u, (x, y) in zip(users, coords)
            ]
        )
        remaining -= size
    return batches


def build_world(world: World) -> BuiltWorld:
    """Realise ``world``: dataset, config, fast AND scalar WPGs, hosts.

    Both WPG builders run with independent same-seeded meters so the
    fast/scalar differential invariant can compare them on every fuzzed
    world, noisy radio models included.
    """
    dataset = _dataset_for(world)
    n = len(dataset)
    k = min(world.k, n)
    config = SimulationConfig(
        user_count=n,
        delta=world.delta,
        max_peers=world.max_peers,
        k=k,
        seed=world.seed,
    )
    graph = build_wpg_fast(
        dataset, world.delta, world.max_peers, meter=_meter_for(world, dataset)
    )
    scalar_graph = build_wpg(
        dataset, world.delta, world.max_peers, meter=_meter_for(world, dataset)
    )
    rng = np.random.default_rng(world.seed + 1009)
    count = min(world.requests, n)
    hosts = tuple(int(v) for v in rng.choice(n, size=count, replace=False))
    return BuiltWorld(
        world=replace(world, n=n, k=k),
        dataset=dataset,
        config=config,
        graph=graph,
        scalar_graph=scalar_graph,
        hosts=hosts,
    )


# -- Hypothesis strategies ----------------------------------------------------------
#
# Hypothesis is a dev/test dependency; everything below imports it
# lazily so the fuzz CLI and the engines stay importable without it.


def world_strategy(max_users: int = 40, allow_faults: bool = False):
    """A Hypothesis strategy drawing small, fast-to-serve worlds.

    Sized for property suites: populations stay small (shrinking then
    produces readable counterexamples) and radio defaults to the ideal
    model unless the drawn world opts into noise.
    """
    from hypothesis import strategies as st

    def _assemble(draw):
        seed = draw(st.integers(0, 2**31 - 1))
        kind = draw(st.sampled_from(DATASET_KINDS))
        n = draw(st.integers(12, max_users))
        k = draw(st.integers(2, min(6, n)))
        policy = draw(st.sampled_from(POLICIES))
        mode = draw(st.sampled_from(MODES))
        radio = draw(st.sampled_from(RADIO_MODELS))
        drop = 0.0
        crashed: tuple[int, ...] = ()
        if allow_faults and draw(st.booleans()):
            drop = draw(
                st.floats(0.02, 0.25, allow_nan=False, allow_infinity=False)
            )
        if drop > 0.0:
            mode = "distributed"
            if policy not in PROGRESSIVE_POLICIES:
                policy = "secure"
        churn = 0
        if drop == 0.0 and radio == "ideal":
            churn = draw(st.integers(0, 16))
        return World(
            seed=seed,
            kind=kind,
            n=n,
            k=k,
            delta=draw(st.floats(0.08, 0.25, allow_nan=False)),
            max_peers=draw(st.integers(3, 8)),
            policy=policy,
            mode=mode,
            radio=radio,
            requests=draw(st.integers(2, 4)),
            drop_probability=drop,
            crashed=crashed,
            p2p=False,
            churn_moves=churn,
        )

    return st.composite(lambda draw: _assemble(draw))()


def register_profiles() -> None:
    """Register the repository's Hypothesis settings profiles.

    ``repro-ci`` keeps the property suites inside the CI time budget;
    ``repro-dev`` digs deeper locally.  Select with the standard
    ``HYPOTHESIS_PROFILE`` environment variable (the test conftest loads
    ``repro-ci`` by default).
    """
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "repro-ci",
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
        derandomize=True,
    )
    settings.register_profile(
        "repro-dev",
        max_examples=150,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
