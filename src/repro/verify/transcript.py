"""Transcript-replay leakage auditing for the secure bounding protocol.

The protocol's entire disclosure is a stream of yes/no answers to bound
hypotheses.  This module records that stream — either through the
analytic protocol's ``recorder`` tap or by wrapping the live
``verify_bound`` handlers on a peer network — and *recomputes* each
user's agreement interval from the messages alone.  If the implementation
ever leaked more than it claims (an interval tighter than the recorded
answers justify, a question missing from a device's ledger), the audit
catches it without trusting a single internal data structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Sequence, Tuple

from repro.errors import VerificationError
from repro.network.node import UserDevice
from repro.network.simulator import PeerNetwork

#: The four directional runs of one bounding box, in protocol order.
DIRECTIONS = ("x_max", "x_min", "y_max", "y_min")

#: Wire payload ``(axis, sign)`` -> direction label.  The signed domain
#: convention matches :mod:`repro.bounding.boxing`: ``x_min`` bounds
#: ``-x`` from above.
PAYLOAD_DIRECTION: Dict[Tuple[int, float], str] = {
    (0, 1.0): "x_max",
    (0, -1.0): "x_min",
    (1, 1.0): "y_max",
    (1, -1.0): "y_min",
}

#: Direction label -> wire payload ``(axis, sign)``.
DIRECTION_PAYLOAD: Dict[str, Tuple[int, float]] = {
    d: p for p, d in PAYLOAD_DIRECTION.items()
}


@dataclass(frozen=True, slots=True)
class VerificationMessage:
    """One observed yes/no answer: ``user`` said ``agreed`` to ``bound``."""

    user: int
    direction: str
    bound: float
    agreed: bool


class TranscriptRecorder:
    """Accumulates every verification answer a protocol run produces."""

    def __init__(self) -> None:
        self.messages: list[VerificationMessage] = []

    def __len__(self) -> int:
        return len(self.messages)

    def record(self, direction: str, user: int, bound: float, agreed: bool) -> None:
        """Append one observed answer."""
        if direction not in DIRECTION_PAYLOAD:
            raise VerificationError(f"unknown direction {direction!r}")
        self.messages.append(
            VerificationMessage(user, direction, float(bound), bool(agreed))
        )

    def box_recorder(self, member_ids: Sequence[int]):
        """An adapter for :func:`repro.bounding.boxing.secure_bounding_box`.

        The analytic protocol reports *member indexes*; ``member_ids``
        maps them back to user ids (the engine's sorted member list).
        """
        ids = list(member_ids)

        def _record(direction: str, index: int, bound: float, agreed: bool) -> None:
            self.record(direction, ids[index], bound, agreed)

        return _record

    def tap_network(self, network: PeerNetwork, users: Iterable[int]) -> None:
        """Wrap each user's live ``verify_bound`` handler with a recorder.

        Uses :meth:`PeerNetwork.handler` to fetch the installed handler
        and re-registers a recording wrapper around it, so the transcript
        sees exactly the invocations the device sees — a request lost on
        the wire never reaches either, and a replay-cache hit bypasses
        both.  The tap therefore stays bit-for-bit comparable with the
        device's own disclosure ledger.
        """
        for user in users:
            original = network.handler(user, "verify_bound")

            def wrapped(sender: int, payload: Any, _user=user, _orig=original):
                answer = _orig(sender, payload)
                axis, sign, bound = payload
                direction = PAYLOAD_DIRECTION.get((int(axis), float(sign)))
                if direction is None:
                    raise VerificationError(
                        f"unmappable verify_bound payload: {payload!r}"
                    )
                self.record(direction, _user, float(bound), bool(answer))
                return answer

            network.register(user, "verify_bound", wrapped)

    def question_set(self, user: int) -> frozenset[tuple[int, float, float]]:
        """The ``(axis, sign, bound)`` hypotheses ``user`` answered.

        Directly comparable with
        :attr:`repro.network.node.UserDevice.questions_answered`.
        """
        questions: set[tuple[int, float, float]] = set()
        for message in self.messages:
            if message.user == user:
                axis, sign = DIRECTION_PAYLOAD[message.direction]
                questions.add((axis, sign, message.bound))
        return frozenset(questions)

    def users(self) -> frozenset[int]:
        """Every user that answered at least one hypothesis."""
        return frozenset(message.user for message in self.messages)


def audit_intervals(
    messages: Iterable[VerificationMessage],
) -> dict[tuple[int, str], tuple[float, float]]:
    """Recompute agreement intervals from the transcript alone.

    For each ``(user, direction)``, the signed coordinate is known to lie
    in ``(low, high]`` where ``low`` is the largest bound the user said
    *no* to (``-inf`` if it never disagreed) and ``high`` the smallest
    bound it said *yes* to (``+inf`` if it never agreed — a member a
    crashed network left unresolved).  A transcript where some "no" bound
    meets or exceeds a "yes" bound is self-contradictory (the answers
    cannot come from any fixed coordinate) and raises
    :class:`VerificationError`.
    """
    lows: dict[tuple[int, str], float] = {}
    highs: dict[tuple[int, str], float] = {}
    for message in messages:
        key = (message.user, message.direction)
        if message.agreed:
            current = highs.get(key, float("inf"))
            if message.bound < current:
                highs[key] = message.bound
            lows.setdefault(key, float("-inf"))
        else:
            current = lows.get(key, float("-inf"))
            if message.bound > current:
                lows[key] = message.bound
            highs.setdefault(key, float("inf"))
    intervals: dict[tuple[int, str], tuple[float, float]] = {}
    for key in lows:
        low, high = lows[key], highs[key]
        if low >= high:
            user, direction = key
            raise VerificationError(
                f"user {user} contradicted itself on {direction}: "
                f"disagreed at {low} but agreed at {high}"
            )
        intervals[key] = (low, high)
    return intervals


def ledger_matches_transcript(
    device: UserDevice, recorder: TranscriptRecorder
) -> bool:
    """True when the device's disclosure ledger equals the wire transcript."""
    return device.questions_answered == recorder.question_set(device.user_id)
