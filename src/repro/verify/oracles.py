"""Exact from-definition oracles for the clustering and bounding layers.

Every function here re-derives a quantity the optimized pipeline computes
— but straight from the paper's definitions, sharing *no* code with the
implementation under test:

* :func:`oracle_bounding_box` — direct coordinate min/max scan (no
  :meth:`Rect.from_points`);
* :func:`oracle_smallest_cluster` — Definition 4.1 level scan: ascending
  distinct edge weights, plain BFS per level, first t whose component
  reaches k (the dendrogram computes the same thing via single linkage);
* :func:`bottleneck_connectivity` — Kruskal-style union scan for the
  minimum bottleneck value connecting a subset;
* :func:`oracle_min_mew_clusters` — brute-force enumeration of every
  subset containing the host (the minimum-MEW k-cluster problem solved
  by exhaustion, exact for components up to :data:`ORACLE_MAX_VERTICES`);
* :func:`oracle_isolation_violations` — Property 4.1 checked vertex by
  vertex with the level-scan rule before/after cluster removal.

The subset enumeration is exponential by design — it is only *correct*,
never fast.  Asking it about a component larger than
:data:`ORACLE_MAX_VERTICES` raises :class:`VerificationError` instead of
silently taking minutes.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations
from typing import Container, Iterable, Optional, Sequence

from repro.errors import VerificationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.graph.wpg import WeightedProximityGraph

#: Hard cap on the component size the exponential oracles accept.  2^12
#: subsets with a Kruskal scan each stays well under a second.
ORACLE_MAX_VERTICES = 12

_EMPTY: frozenset[int] = frozenset()


def oracle_bounding_box(points: Sequence[Point]) -> Rect:
    """The exact bounding box, computed by a direct coordinate scan."""
    if not points:
        raise VerificationError("cannot box an empty point set")
    x_min = x_max = points[0].x
    y_min = y_max = points[0].y
    for p in points[1:]:
        if p.x < x_min:
            x_min = p.x
        if p.x > x_max:
            x_max = p.x
        if p.y < y_min:
            y_min = p.y
        if p.y > y_max:
            y_max = p.y
    return Rect(x_min, x_max, y_min, y_max)


def _level_component(
    graph: WeightedProximityGraph,
    start: int,
    t: float,
    exclude: Container[int] = _EMPTY,
) -> set[int]:
    """Plain BFS over edges of weight <= t (Definition 4.1, verbatim)."""
    component = {start}
    queue: deque[int] = deque([start])
    while queue:
        vertex = queue.popleft()
        for neighbor, weight in graph.neighbor_weights(vertex):
            if weight <= t and neighbor not in component and neighbor not in exclude:
                component.add(neighbor)
                queue.append(neighbor)
    return component


def oracle_smallest_cluster(
    graph: WeightedProximityGraph,
    host: int,
    k: int,
    exclude: Container[int] = _EMPTY,
) -> Optional[tuple[frozenset[int], float]]:
    """The smallest valid t-connectivity cluster of ``host``, by level scan.

    Walks the distinct edge weights in ascending order and returns the
    first t-component of ``host`` with at least ``k`` vertices, together
    with that t.  Returns ``None`` when even the full component (t = max
    weight) stays below k — the paper's Fig. 5 failure case.
    """
    if host not in graph:
        raise VerificationError(f"unknown host {host}")
    if host in exclude:
        raise VerificationError(f"host {host} is excluded")
    if k <= 1:
        return frozenset({host}), 0.0
    previous_size = 1
    for t in sorted({edge.weight for edge in graph.edges()}):
        component = _level_component(graph, host, t, exclude=exclude)
        if len(component) < previous_size:
            raise VerificationError(
                f"t-component of {host} shrank as t grew to {t}"
            )
        previous_size = len(component)
        if len(component) >= k:
            return frozenset(component), t
    return None


def bottleneck_connectivity(
    graph: WeightedProximityGraph, subset: Iterable[int]
) -> Optional[float]:
    """The minimum t at which ``subset`` is mutually t-connected *within itself*.

    Kruskal scan over the induced subgraph's edges in ascending weight
    order: the answer is the weight of the edge whose addition first puts
    all of ``subset`` in one component.  ``None`` when the induced
    subgraph never connects (paths through outside vertices don't count —
    this is the bottleneck of the subset as a standalone cluster).
    """
    members = sorted(set(subset))
    if not members:
        raise VerificationError("cannot measure an empty subset")
    if len(members) == 1:
        return 0.0
    keep = set(members)
    internal = sorted(
        (edge.weight, edge.u, edge.v)
        for edge in graph.edges()
        if edge.u in keep and edge.v in keep
    )
    parent = {v: v for v in members}

    def find(v: int) -> int:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    remaining = len(members) - 1
    for weight, u, v in internal:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            remaining -= 1
            if remaining == 0:
                return weight
    return None


def oracle_min_mew_clusters(
    graph: WeightedProximityGraph, host: int, k: int
) -> Optional[tuple[float, tuple[frozenset[int], ...]]]:
    """Brute-force the minimum-MEW k-cluster problem around ``host``.

    Enumerates every subset of the host's connected component that
    contains the host and has at least ``k`` vertices, measures each
    subset's bottleneck connectivity, and returns the minimum value with
    *every* subset achieving it.  Exact by exhaustion; raises
    :class:`VerificationError` for components larger than
    :data:`ORACLE_MAX_VERTICES`, returns ``None`` when the component is
    smaller than k (no valid cluster exists).

    By the minimax-path property this minimum equals the level-scan t of
    :func:`oracle_smallest_cluster`, and every minimizer is a subset of
    the level-scan cluster — the cross-checks the oracle test suite runs.
    """
    if k < 1:
        raise VerificationError(f"k must be >= 1, got {k}")
    component = sorted(_level_component(graph, host, float("inf")))
    if len(component) > ORACLE_MAX_VERTICES:
        raise VerificationError(
            f"component of {host} has {len(component)} vertices; the "
            f"subset oracle is exact only up to {ORACLE_MAX_VERTICES}"
        )
    if len(component) < k:
        return None
    others = [v for v in component if v != host]
    best: Optional[float] = None
    minimizers: list[frozenset[int]] = []
    for extra in range(k - 1, len(others) + 1):
        for chosen in combinations(others, extra):
            subset = frozenset((host, *chosen))
            value = bottleneck_connectivity(graph, subset)
            if value is None:
                continue
            if best is None or value < best:
                best = value
                minimizers = [subset]
            elif value == best:
                minimizers.append(subset)
    if best is None:
        return None
    return best, tuple(minimizers)


def oracle_isolation_violations(
    graph: WeightedProximityGraph,
    cluster: Iterable[int],
    k: int,
) -> list[int]:
    """Property 4.1 from the definition: vertices whose cluster changes.

    For every vertex outside ``cluster``, compares its smallest valid
    t-connectivity cluster (level scan) computed on the full graph with
    the one computed after removing ``cluster``.  Returns the violating
    vertices ("changes" includes becoming impossible — Fig. 5's vertex g).
    An empty list means ``cluster`` is isolated.
    """
    removed = frozenset(cluster)
    violations: list[int] = []
    for vertex in sorted(graph.vertices()):
        if vertex in removed:
            continue
        before = oracle_smallest_cluster(graph, vertex, k)
        after = oracle_smallest_cluster(graph, vertex, k, exclude=removed)
        before_set = None if before is None else before[0]
        after_set = None if after is None else after[0]
        if before_set != after_set:
            violations.append(vertex)
    return violations
