"""Planar geometry primitives: points, rectangles and distance metrics."""

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.distance import (
    chebyshev,
    diameter,
    euclidean,
    euclidean_squared,
    manhattan,
    pairwise_euclidean,
)

__all__ = [
    "Point",
    "Rect",
    "chebyshev",
    "diameter",
    "euclidean",
    "euclidean_squared",
    "manhattan",
    "pairwise_euclidean",
]
