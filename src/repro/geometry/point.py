"""Immutable planar point."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the plane.

    Points are immutable and hashable so they can key dictionaries and live
    in sets (the clustering registry maps users to points freely).

    >>> Point(0.25, 0.75).distance_to(Point(0.25, 0.25))
    0.5
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (cheaper; monotone in distance)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy of this point moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """The midpoint of the segment to ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def coordinate(self, axis: int) -> float:
        """The coordinate along ``axis`` (0 for x, 1 for y)."""
        if axis == 0:
            return self.x
        if axis == 1:
            return self.y
        raise ValueError(f"axis must be 0 or 1, got {axis!r}")

    def as_tuple(self) -> tuple[float, float]:
        """The point as an ``(x, y)`` tuple."""
        return (self.x, self.y)
