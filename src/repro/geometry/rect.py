"""Axis-aligned rectangles (the shape of every cloaked region)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``.

    Cloaked regions, grid cells and range queries are all rectangles.
    Degenerate rectangles (zero width or height) are legal: a cluster whose
    users are collinear produces one.

    >>> Rect(0.0, 1.0, 0.0, 0.5).area
    0.5
    """

    x_min: float
    x_max: float
    y_min: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_min > self.x_max or self.y_min > self.y_max:
            raise ValueError(
                f"inverted rectangle: [{self.x_min}, {self.x_max}] x "
                f"[{self.y_min}, {self.y_max}]"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect":
        """The tightest rectangle enclosing ``points`` (must be non-empty)."""
        xs: list[float] = []
        ys: list[float] = []
        for p in points:
            xs.append(p.x)
            ys.append(p.y)
        if not xs:
            raise ValueError("cannot bound an empty point set")
        return cls(min(xs), max(xs), min(ys), max(ys))

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        """A ``width x height`` rectangle centred on ``center``."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        return cls(
            center.x - width / 2.0,
            center.x + width / 2.0,
            center.y - height / 2.0,
            center.y + height / 2.0,
        )

    @classmethod
    def unit_square(cls) -> "Rect":
        """The unit square ``[0, 1] x [0, 1]`` all datasets normalise into."""
        return cls(0.0, 1.0, 0.0, 1.0)

    # -- measures ----------------------------------------------------------

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        """width * height."""
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        """Total boundary length."""
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        """The center point."""
        return Point((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    @property
    def diagonal(self) -> float:
        """Length of the rectangle's diagonal (its geometric diameter)."""
        return Point(self.x_min, self.y_min).distance_to(Point(self.x_max, self.y_max))

    # -- predicates ---------------------------------------------------------

    def contains(self, point: Point) -> bool:
        """True if ``point`` lies in the closed rectangle."""
        return (
            self.x_min <= point.x <= self.x_max
            and self.y_min <= point.y <= self.y_max
        )

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside this rectangle."""
        return (
            self.x_min <= other.x_min
            and other.x_max <= self.x_max
            and self.y_min <= other.y_min
            and other.y_max <= self.y_max
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the two closed rectangles share at least one point."""
        return not (
            other.x_min > self.x_max
            or other.x_max < self.x_min
            or other.y_min > self.y_max
            or other.y_max < self.y_min
        )

    # -- combinators ---------------------------------------------------------

    def union(self, other: "Rect") -> "Rect":
        """The smallest rectangle covering both rectangles."""
        return Rect(
            min(self.x_min, other.x_min),
            max(self.x_max, other.x_max),
            min(self.y_min, other.y_min),
            max(self.y_max, other.y_max),
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlap rectangle, or ``None`` if the rectangles are disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.x_min, other.x_min),
            min(self.x_max, other.x_max),
            max(self.y_min, other.y_min),
            min(self.y_max, other.y_max),
        )

    def expanded(self, margin: float) -> "Rect":
        """This rectangle grown by ``margin`` on every side."""
        if margin < 0 and (2 * -margin > self.width or 2 * -margin > self.height):
            raise ValueError("negative margin larger than the rectangle")
        return Rect(
            self.x_min - margin,
            self.x_max + margin,
            self.y_min - margin,
            self.y_max + margin,
        )

    def clipped_to(self, other: "Rect") -> "Rect":
        """This rectangle clipped to ``other`` (they must intersect)."""
        clipped = self.intersection(other)
        if clipped is None:
            raise ValueError("rectangles do not intersect; nothing to clip to")
        return clipped

    def min_distance_to(self, point: Point) -> float:
        """Distance from ``point`` to the rectangle (0 if inside)."""
        dx = max(self.x_min - point.x, 0.0, point.x - self.x_max)
        dy = max(self.y_min - point.y, 0.0, point.y - self.y_max)
        return (dx * dx + dy * dy) ** 0.5
