"""Distance metrics over points and coordinate arrays."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.geometry.point import Point


def euclidean(a: Point, b: Point) -> float:
    """Euclidean (L2) distance between two points."""
    return math.hypot(a.x - b.x, a.y - b.y)


def euclidean_squared(a: Point, b: Point) -> float:
    """Squared Euclidean distance; monotone in :func:`euclidean` but cheaper."""
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def manhattan(a: Point, b: Point) -> float:
    """Manhattan (L1) distance between two points."""
    return abs(a.x - b.x) + abs(a.y - b.y)


def chebyshev(a: Point, b: Point) -> float:
    """Chebyshev (L-infinity) distance between two points."""
    return max(abs(a.x - b.x), abs(a.y - b.y))


def pairwise_euclidean(points: Sequence[Point]) -> np.ndarray:
    """The full symmetric distance matrix of ``points``.

    Intended for small point sets (test fixtures, per-cluster diameters);
    for whole datasets use a spatial index instead.
    """
    coords = np.array([(p.x, p.y) for p in points], dtype=float)
    if coords.size == 0:
        return np.zeros((0, 0))
    deltas = coords[:, None, :] - coords[None, :, :]
    return np.sqrt((deltas**2).sum(axis=2))


def diameter(points: Sequence[Point]) -> float:
    """The maximum pairwise distance of ``points`` (0 for fewer than 2)."""
    if len(points) < 2:
        return 0.0
    return float(pairwise_euclidean(points).max())
