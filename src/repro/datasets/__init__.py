"""User/POI datasets: containers, synthetic generators and CSV I/O."""

from repro.datasets.base import PointDataset
from repro.datasets.synthetic import (
    gaussian_clusters,
    grid_points,
    uniform_points,
)
from repro.datasets.california import california_like_poi
from repro.datasets.io import load_csv, save_csv

__all__ = [
    "PointDataset",
    "california_like_poi",
    "gaussian_clusters",
    "grid_points",
    "load_csv",
    "save_csv",
    "uniform_points",
]
