"""The dataset container every generator and loader produces.

The paper normalises the 104,770 California POIs into a unit square and
treats each POI as a user standing at its coordinates.  ``PointDataset``
captures exactly that contract: an ordered, immutable sequence of points,
normalised on request into the unit square.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class PointDataset:
    """An ordered collection of planar points with ids ``0..n-1``.

    The user id in every algorithm of this library is the point's index in
    its dataset.  Instances are immutable; normalisation returns a new
    dataset.
    """

    def __init__(self, points: Sequence[Point], name: str = "dataset") -> None:
        if not points:
            raise DatasetError("a dataset must contain at least one point")
        self._points: tuple[Point, ...] = tuple(points)
        self._name = name

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self._points)

    def __getitem__(self, idx: int) -> Point:
        return self._points[idx]

    @property
    def name(self) -> str:
        """The dataset's human-readable name."""
        return self._name

    @property
    def points(self) -> tuple[Point, ...]:
        """The points as an immutable tuple."""
        return self._points

    # -- derived views ---------------------------------------------------------

    def bounds(self) -> Rect:
        """The tightest rectangle enclosing all points."""
        return Rect.from_points(self._points)

    def as_array(self) -> np.ndarray:
        """The coordinates as an ``(n, 2)`` float array."""
        return np.array([(p.x, p.y) for p in self._points], dtype=float)

    def normalized(self) -> "PointDataset":
        """This dataset rescaled to fill the unit square.

        Both axes are scaled by the same factor (the larger extent) so the
        geometry is preserved; a degenerate axis (all points collinear)
        keeps its coordinate.
        """
        box = self.bounds()
        scale = max(box.width, box.height)
        if scale == 0.0:
            raise DatasetError("cannot normalise a dataset of identical points")
        points = [
            Point((p.x - box.x_min) / scale, (p.y - box.y_min) / scale)
            for p in self._points
        ]
        return PointDataset(points, name=f"{self._name}-normalized")

    def sample(self, count: int, rng: np.random.Generator) -> list[int]:
        """``count`` distinct point ids drawn uniformly without replacement."""
        if count > len(self._points):
            raise DatasetError(
                f"cannot sample {count} ids from a dataset of {len(self._points)}"
            )
        return [int(i) for i in rng.choice(len(self._points), size=count, replace=False)]

    def subset(self, ids: Sequence[int], name: str | None = None) -> "PointDataset":
        """A new dataset containing only the points with the given ids."""
        return PointDataset(
            [self._points[i] for i in ids],
            name=name if name is not None else f"{self._name}-subset",
        )


class MutablePointDataset(PointDataset):
    """A :class:`PointDataset` whose points can move — the churn runtime's view.

    Ids stay fixed; only coordinates change.  Everything reading the
    dataset (bounding, oracles, meters) sees the current positions.  The
    ``points`` property still returns a tuple, so snapshot consumers keep
    their immutability guarantee — each call materialises the live state.
    """

    def __init__(self, points: Sequence[Point], name: str = "dataset") -> None:
        super().__init__(points, name=name)
        # Shadow the parent's tuple with a list: every inherited reader
        # (bounds, as_array, iteration, indexing) sees live positions.
        self._points = list(self._points)  # type: ignore[assignment]

    @classmethod
    def from_dataset(cls, dataset: PointDataset) -> "MutablePointDataset":
        """A mutable copy of ``dataset`` (same ids, same positions)."""
        return cls(dataset.points, name=dataset.name)

    @property
    def points(self) -> tuple[Point, ...]:
        """A snapshot of the current positions as an immutable tuple."""
        return tuple(self._points)

    def move(self, idx: int, point: Point) -> None:
        """Update user ``idx``'s position in place."""
        self._points[idx] = point  # type: ignore[index]
