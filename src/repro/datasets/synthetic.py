"""Synthetic point populations for experiments and tests.

All generators are seeded and return points inside the unit square, so
every experiment in this repository is exactly reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.datasets.base import PointDataset
from repro.geometry.point import Point


def _require_positive(count: int) -> None:
    if count <= 0:
        raise DatasetError(f"count must be positive, got {count}")


def uniform_points(count: int, seed: int = 0) -> PointDataset:
    """``count`` points i.i.d. uniform in the unit square."""
    _require_positive(count)
    rng = np.random.default_rng(seed)
    coords = rng.random((count, 2))
    return PointDataset(
        [Point(float(x), float(y)) for x, y in coords], name=f"uniform-{count}"
    )


def grid_points(side: int, jitter: float = 0.0, seed: int = 0) -> PointDataset:
    """A ``side x side`` lattice in the unit square, optionally jittered.

    A jitter of ``j`` displaces every lattice point by at most ``j`` of the
    lattice spacing in each axis.  Handy for tests needing predictable
    neighbourhood structure.
    """
    if side <= 0:
        raise DatasetError(f"side must be positive, got {side}")
    if not 0.0 <= jitter < 0.5:
        raise DatasetError(f"jitter must be in [0, 0.5), got {jitter}")
    rng = np.random.default_rng(seed)
    spacing = 1.0 / side
    points: list[Point] = []
    for i in range(side):
        for j in range(side):
            dx, dy = (rng.uniform(-jitter, jitter, 2) * spacing) if jitter else (0, 0)
            points.append(
                Point((i + 0.5) * spacing + float(dx), (j + 0.5) * spacing + float(dy))
            )
    return PointDataset(points, name=f"grid-{side}x{side}")


def gaussian_clusters(
    count: int,
    clusters: int = 8,
    spread: float = 0.03,
    seed: int = 0,
) -> PointDataset:
    """``count`` points drawn from a mixture of isotropic Gaussians.

    Cluster centres are uniform in the unit square; each point picks a
    cluster uniformly and adds N(0, spread^2) noise, clipped to the square.
    """
    _require_positive(count)
    if clusters <= 0:
        raise DatasetError(f"clusters must be positive, got {clusters}")
    if spread <= 0:
        raise DatasetError(f"spread must be positive, got {spread}")
    rng = np.random.default_rng(seed)
    centers = rng.random((clusters, 2))
    assignment = rng.integers(0, clusters, size=count)
    coords = centers[assignment] + rng.normal(0.0, spread, size=(count, 2))
    coords = np.clip(coords, 0.0, 1.0)
    return PointDataset(
        [Point(float(x), float(y)) for x, y in coords],
        name=f"gaussian-{clusters}x{count}",
    )
