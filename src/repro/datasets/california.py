"""A California-POI-like synthetic population.

The paper evaluates on the USGS "Points of Interest of California" dataset
(104,770 points, normalised to a unit square).  That file is not available
offline, so this module generates the closest synthetic equivalent: a
seeded mixture of

* dense urban blobs (Gaussian clusters of very different sizes — think LA,
  the Bay Area, San Diego, Sacramento, and many small towns),
* road corridors (points scattered along random polylines connecting
  cluster centres — POI datasets are dense along highways), and
* sparse background noise (rural POIs).

The experiments only depend on the dataset being a large, non-uniform,
clustered planar point set; this generator reproduces exactly the
structural features (heavy clustering + linear corridors + sparse rural
fill) that shape the weighted proximity graph.  See DESIGN.md,
"Faithfulness notes and substitutions".
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.datasets.base import PointDataset
from repro.geometry.point import Point

#: Cardinality of the original USGS California POI dataset.
CALIFORNIA_POI_COUNT = 104_770

#: Fractions of points assigned to each structural component.
_URBAN_FRACTION = 0.62
_CORRIDOR_FRACTION = 0.28
# The remaining fraction is background noise.


def california_like_poi(
    count: int = CALIFORNIA_POI_COUNT,
    seed: int = 2009,
    urban_centers: int = 24,
    corridors: int = 16,
) -> PointDataset:
    """Generate a clustered, corridor-structured POI population.

    Parameters
    ----------
    count:
        Total number of points; defaults to the original dataset's 104,770.
    seed:
        RNG seed; the default regenerates the exact population used by all
        recorded experiments.
    urban_centers:
        Number of urban blobs.  Blob weights follow a Zipf-like law so a
        few blobs dominate, as real city sizes do.
    corridors:
        Number of road corridors connecting random pairs of urban centres.
    """
    if count <= 0:
        raise DatasetError(f"count must be positive, got {count}")
    if urban_centers <= 1:
        raise DatasetError("need at least two urban centers to draw corridors")
    if corridors < 0:
        raise DatasetError(f"corridors must be non-negative, got {corridors}")

    rng = np.random.default_rng(seed)

    n_urban = int(count * _URBAN_FRACTION)
    n_corridor = int(count * _CORRIDOR_FRACTION) if corridors else 0
    n_background = count - n_urban - n_corridor

    centers = rng.random((urban_centers, 2))
    # Zipf-like popularity: center i gets weight ~ 1 / (i + 1).
    weights = 1.0 / np.arange(1, urban_centers + 1)
    weights /= weights.sum()
    # Big cities are geographically larger too.
    spreads = 0.008 + 0.05 * weights / weights.max()

    parts: list[np.ndarray] = []
    if n_urban:
        assignment = rng.choice(urban_centers, size=n_urban, p=weights)
        noise = rng.normal(0.0, 1.0, size=(n_urban, 2)) * spreads[assignment, None]
        parts.append(centers[assignment] + noise)

    if n_corridor:
        endpoints = _road_network(centers, corridors, rng)
        # POIs land on a road proportionally to its length, so long
        # highways are as densely covered as short connectors (a uniform
        # per-road count would leave gaps wider than the radio range).
        lengths = np.sqrt(
            ((centers[endpoints[:, 0]] - centers[endpoints[:, 1]]) ** 2).sum(axis=1)
        )
        lengths = np.maximum(lengths, 1e-9)
        which = rng.choice(len(endpoints), size=n_corridor, p=lengths / lengths.sum())
        # Jittered-stratified placement along each road: POIs hug highways
        # in runs, and a Poisson scatter would leave occasional gaps wider
        # than the radio range, cutting the road network into pieces the
        # real data does not have.  Stratification bounds the largest gap
        # by twice the mean spacing.
        t = np.empty(n_corridor)
        for road in range(len(endpoints)):
            mask = which == road
            n_road = int(mask.sum())
            if n_road == 0:
                continue
            slots = (rng.permutation(n_road) + rng.random(n_road)) / n_road
            t[mask] = slots
        a = centers[endpoints[which, 0]]
        b = centers[endpoints[which, 1]]
        direction = b - a
        direction /= np.sqrt((direction**2).sum(axis=1))[:, None]
        perpendicular = np.stack([-direction[:, 1], direction[:, 0]], axis=1)
        along = a + t[:, None] * (b - a)
        # Scatter strictly perpendicular to the road: along-axis jitter
        # would undo the stratified spacing, and a band wider than a
        # fraction of the radio range stops percolating.
        offsets = rng.normal(0.0, 0.0005, size=n_corridor)[:, None]
        parts.append(along + offsets * perpendicular)

    if n_background:
        parts.append(rng.random((n_background, 2)))

    coords = np.clip(np.concatenate(parts, axis=0), 0.0, 1.0)
    rng.shuffle(coords)
    return PointDataset(
        [Point(float(x), float(y)) for x, y in coords],
        name=f"california-like-{count}",
    )


def _road_network(
    centers: np.ndarray, extra_corridors: int, rng: np.random.Generator
) -> np.ndarray:
    """Corridor endpoint pairs forming a connected road network.

    Real POI datasets chain along highways that connect every city, so
    the road network must span all urban centres: a random-greedy
    nearest-neighbour spanning tree (each centre links to the closest
    already-connected centre) plus ``extra_corridors`` random shortcuts.
    The resulting WPG has one giant component covering the urban and
    corridor population, matching the connectivity the paper's kNN
    "span farther for unclustered users" behaviour requires.
    """
    count = len(centers)
    order = rng.permutation(count)
    connected = [int(order[0])]
    edges: list[tuple[int, int]] = []
    for raw in order[1:]:
        node = int(raw)
        deltas = centers[connected] - centers[node]
        nearest = connected[int(np.argmin((deltas**2).sum(axis=1)))]
        edges.append((node, nearest))
        connected.append(node)
    for _extra in range(extra_corridors):
        a = int(rng.integers(0, count))
        b = int(rng.integers(0, count))
        while b == a:
            b = int(rng.integers(0, count))
        edges.append((a, b))
    return np.array(edges, dtype=int)
