"""CSV persistence for point datasets.

Real POI files (e.g. the USGS California dataset the paper used) can be
dropped in as two-column CSV and loaded with :func:`load_csv`; everything
downstream is agnostic to where the points came from.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.errors import DatasetError
from repro.datasets.base import PointDataset
from repro.geometry.point import Point


def save_csv(dataset: PointDataset, path: str | Path) -> None:
    """Write ``dataset`` as ``x,y`` rows with a header line."""
    target = Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x", "y"])
        for point in dataset:
            writer.writerow([repr(point.x), repr(point.y)])


def load_csv(path: str | Path, name: str | None = None) -> PointDataset:
    """Read a dataset written by :func:`save_csv` (or any ``x,y`` CSV).

    A header row is detected and skipped if its first field is not numeric.
    """
    source = Path(path)
    if not source.exists():
        raise DatasetError(f"dataset file not found: {source}")
    points: list[Point] = []
    with source.open(newline="") as handle:
        reader = csv.reader(handle)
        for row_number, row in enumerate(reader):
            if not row:
                continue
            try:
                x, y = float(row[0]), float(row[1])
            except (ValueError, IndexError) as exc:
                if row_number == 0:
                    continue  # header
                raise DatasetError(
                    f"{source}:{row_number + 1}: malformed row {row!r}"
                ) from exc
            points.append(Point(x, y))
    if not points:
        raise DatasetError(f"{source} contains no points")
    return PointDataset(points, name=name if name is not None else source.stem)
