"""Messages and message accounting."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True, slots=True)
class Message:
    """One directed message between two peers.

    ``kind`` names the protocol step (``adjacency``, ``verify_bound``,
    ...); ``payload`` is protocol-defined.  Sizes are abstract units: the
    cost model of the paper needs only the distinction between a small
    control message (size 1) and POI content (size Cr).

    ``trace_id`` is the trace context of the request that caused the
    message (None outside any request scope) — the simulator stamps it
    so retries, replays, and aborts are attributable after the fact.
    """

    sender: int
    recipient: int
    kind: str
    payload: Any = None
    size: float = 1.0
    trace_id: Optional[int] = None


@dataclass(slots=True)
class MessageStats:
    """Running totals of network traffic, split by message kind.

    ``dropped`` counts every lost message; ``crash_dropped`` is the
    subset lost to messages addressed at a crashed peer (the simulator
    short-circuits those without consulting the failure plan, so the
    reconciliation ``dropped == plan.drop_decisions + crash_dropped``
    holds exactly).  ``deduped`` counts redelivered sequence-numbered
    requests answered from the replay cache instead of re-invoking the
    recipient's handler.
    """

    sent: int = 0
    dropped: int = 0
    crash_dropped: int = 0
    deduped: int = 0
    unattributed: int = 0
    total_size: float = 0.0
    by_kind: Counter = field(default_factory=Counter)

    def record(self, message: Message) -> None:
        """Account one sent message."""
        self.sent += 1
        self.total_size += message.size
        self.by_kind[message.kind] += 1
        if message.trace_id is None:
            self.unattributed += 1

    def record_drop(self, message: Message, crashed: bool = False) -> None:
        """Account one lost message (``crashed``: lost to a dead peer)."""
        self.dropped += 1
        if crashed:
            self.crash_dropped += 1

    def record_dedup(self) -> None:
        """Account one request replayed from the dedup cache."""
        self.deduped += 1

    def snapshot(self) -> dict[str, float]:
        """A plain-dict summary for reports and assertions."""
        return {
            "sent": self.sent,
            "dropped": self.dropped,
            "crash_dropped": self.crash_dropped,
            "deduped": self.deduped,
            "unattributed": self.unattributed,
            "total_size": self.total_size,
            **{f"kind:{kind}": count for kind, count in sorted(self.by_kind.items())},
        }

    def reset(self) -> None:
        """Zero all counters."""
        self.sent = 0
        self.dropped = 0
        self.crash_dropped = 0
        self.deduped = 0
        self.unattributed = 0
        self.total_size = 0.0
        self.by_kind.clear()
