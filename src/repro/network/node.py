"""The user device: what each peer actually exposes over the network.

A device knows (a) its adjacency in the WPG — measured locally from radio
signals — and (b) its own private coordinate.  Its handlers answer
exactly the two questions the protocols ask:

* ``adjacency`` — "send me your neighbour list and edge weights" (the
  single clustering message of Section VI);
* ``verify_bound`` — "is your coordinate's component along this axis at
  most X?" (the secure-bounding verification; a yes/no, never the value).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ProtocolError
from repro.geometry.point import Point
from repro.graph.wpg import WeightedProximityGraph
from repro.network.simulator import PeerNetwork


class UserDevice:
    """One peer: private position plus local proximity knowledge.

    The device keeps a disclosure ledger: every handler invocation is
    counted and every bound hypothesis it *answered* is remembered.  The
    fault-matrix suite reconciles these ledgers against the network's
    message counters to prove that retransmissions and protocol restarts
    never widen the designed one-bit-per-hypothesis disclosure.
    """

    def __init__(
        self,
        user_id: int,
        position: Point,
        graph: WeightedProximityGraph,
    ) -> None:
        self._id = user_id
        self._position = position
        self._adjacency = graph.adjacency_message(user_id)
        self._verify_invocations = 0
        self._adjacency_invocations = 0
        self._questions: set[tuple[int, float, float]] = set()

    @property
    def user_id(self) -> int:
        """This device's user id."""
        return self._id

    @property
    def verify_invocations(self) -> int:
        """How many times this device computed a verify answer."""
        return self._verify_invocations

    @property
    def adjacency_invocations(self) -> int:
        """How many times this device served its adjacency list."""
        return self._adjacency_invocations

    @property
    def questions_answered(self) -> frozenset[tuple[int, float, float]]:
        """Distinct ``(axis, sign, bound)`` hypotheses ever answered.

        Each answered hypothesis leaks exactly one bit; this set is the
        device's entire disclosure, whatever the network did.
        """
        return frozenset(self._questions)

    def restore_ledger(
        self,
        verify_invocations: int,
        adjacency_invocations: int,
        questions: "frozenset[tuple[int, float, float]] | set[tuple[int, float, float]]",
    ) -> None:
        """Adopt a persisted disclosure ledger (see :mod:`repro.network.ledger`).

        A freshly constructed device starts at zero; a warm restart must
        carry the pre-crash disclosure forward or the reconciliation
        audits would under-count what the user has already revealed.
        """
        self._verify_invocations = int(verify_invocations)
        self._adjacency_invocations = int(adjacency_invocations)
        self._questions = {
            (int(axis), float(sign), float(bound))
            for axis, sign, bound in questions
        }

    def attach(self, network: PeerNetwork) -> None:
        """Register this device's handlers on ``network``."""
        network.register(self._id, "adjacency", self._handle_adjacency)
        network.register(self._id, "verify_bound", self._handle_verify)

    # -- handlers -------------------------------------------------------------

    def _handle_adjacency(self, sender: int, payload: Any) -> dict[int, float]:
        self._adjacency_invocations += 1
        return dict(self._adjacency)

    def _handle_verify(self, sender: int, payload: Any) -> bool:
        """Answer a directional bound hypothesis with yes/no only.

        ``payload`` is ``(axis, sign, bound)``: the device agrees when
        ``sign * coordinate(axis) <= bound``.  The reply leaks exactly one
        bit — the semi-honest protocol's designed disclosure.
        """
        try:
            axis, sign, bound = payload
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed verify_bound payload: {payload!r}") from exc
        if axis not in (0, 1) or sign not in (-1.0, 1.0, -1, 1):
            raise ProtocolError(f"malformed verify_bound payload: {payload!r}")
        self._verify_invocations += 1
        self._questions.add((axis, float(sign), float(bound)))
        return sign * self._position.coordinate(axis) <= bound


def populate_network(
    network: PeerNetwork,
    graph: WeightedProximityGraph,
    positions: "list[Point] | dict[int, Point]",
) -> dict[int, UserDevice]:
    """Create and attach a :class:`UserDevice` for every WPG vertex."""
    devices: dict[int, UserDevice] = {}
    for vertex in graph.vertices():
        position = positions[vertex]
        device = UserDevice(vertex, position, graph)
        device.attach(network)
        devices[vertex] = device
    return devices
