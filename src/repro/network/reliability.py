"""The fault-tolerant protocol runtime (paper Section VII, future work).

"Communication failures during the clustering or bounding process should
also be concerned, and a balance must be struck between robustness and
efficiency."  This module is that balance, made explicit:

* :class:`ReliabilityPolicy` — the knob.  Off by default; when off every
  protocol behaves bit-identically to the failure-oblivious code path.
* :class:`ReliableTransport` — per-message timeouts with capped
  exponential backoff and deterministic jitter, sequence-numbered
  retransmissions (the network replays cached answers instead of
  re-invoking handlers — see
  :meth:`~repro.network.simulator.PeerNetwork.attempt`), and a failure
  detector that declares a peer crashed after enough consecutive
  exhausted retry budgets.
* :class:`ProtocolAbort` — the one clean exit.  When graceful
  degradation cannot preserve the k-anonymity guarantee (too many peers
  evicted, the host itself unreachable, no convergence), protocols raise
  this typed abort instead of hanging or returning an undersized
  cluster.  The reason codes below are the complete vocabulary.

Timeouts are *simulated*: the synchronous network either delivers or
loses a message immediately, so "a timeout" is the event of a lost leg
and the backoff delay is accumulated into :attr:`ReliableTransport
.simulated_delay` rather than slept.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import ConfigurationError, ProtocolError
from repro.network.simulator import MessageDropped, PeerCrashed, PeerNetwork
from repro.obs import names as metric
from repro.obs import trace as _trace

# -- abort reason codes (the complete vocabulary) ---------------------------------

#: Fewer than k reachable users remain after evictions.
ABORT_BELOW_K = "below_k"
#: The requesting host itself is unreachable or failed mid-protocol.
ABORT_HOST_FAILED = "host_failed"
#: Transient message loss persisted beyond every retry and re-formation.
ABORT_MESSAGE_LOSS = "message_loss"
#: The eviction/re-formation budget ran out before the cluster settled.
ABORT_REFORM_BUDGET = "reform_budget_exhausted"
#: A bounding run failed to converge within its iteration ceiling.
ABORT_NO_CONVERGENCE = "no_convergence"

#: Every reason a :class:`ProtocolAbort` may carry.
ABORT_REASONS = frozenset(
    {
        ABORT_BELOW_K,
        ABORT_HOST_FAILED,
        ABORT_MESSAGE_LOSS,
        ABORT_REFORM_BUDGET,
        ABORT_NO_CONVERGENCE,
    }
)


class ProtocolAbort(ProtocolError):
    """A protocol gave up *cleanly*: typed reason, no partial state.

    Raised only by the fault-tolerant runtime, and only after graceful
    degradation failed — the registry holds nothing from the aborted
    request, and the caller can inspect ``reason`` (one of
    :data:`ABORT_REASONS`), the requesting ``host``, and the peers that
    were ``evicted`` along the way.
    """

    def __init__(
        self,
        reason: str,
        detail: str,
        host: int | None = None,
        evicted: frozenset[int] | set[int] = frozenset(),
    ) -> None:
        if reason not in ABORT_REASONS:
            raise ConfigurationError(f"unknown abort reason {reason!r}")
        super().__init__(f"[{reason}] {detail}")
        self.reason = reason
        self.detail = detail
        self.host = host
        self.evicted = frozenset(evicted)


def abort(
    reason: str,
    detail: str,
    host: int | None = None,
    evicted: frozenset[int] | set[int] = frozenset(),
) -> ProtocolAbort:
    """Build a :class:`ProtocolAbort`, counting it through obs.

    Every raise site routes through here so ``protocol.aborts`` counts
    exactly the typed clean exits, never stray exceptions — and so each
    abort lands in the flight recorder attributed to its request.
    """
    if obs.enabled():
        obs.inc(metric.PROTOCOL_ABORTS)
    recorder = _trace._recorder
    if recorder is not None:
        recorder.record(
            _trace.EVT_ABORT, reason=reason, detail=detail, host=host,
            evicted=sorted(evicted),
        )
    return ProtocolAbort(reason, detail, host=host, evicted=evicted)


@dataclass(frozen=True, slots=True)
class ReliabilityPolicy:
    """How hard the runtime fights failures before degrading.

    Parameters
    ----------
    enabled:
        Master switch.  ``ReliabilityPolicy.off()`` (or passing ``None``
        wherever a policy is accepted) reproduces the failure-oblivious
        behavior bit-identically.
    max_attempts:
        Transmissions per logical call (1 original + retries).
    base_delay / backoff_factor / max_delay:
        Capped exponential backoff: retry ``i`` waits
        ``min(base_delay * backoff_factor**i, max_delay)`` simulated
        seconds before resending.
    jitter:
        Uniform jitter fraction applied to each delay (``0.1`` spreads a
        delay over ±10%), decorrelating retry storms.  Deterministic per
        ``seed``.
    crash_after:
        Consecutive exhausted retry budgets against one peer before the
        failure detector declares it crashed.
    max_reforms:
        Cluster re-formations (after an eviction or persistent loss) and
        bounding restarts allowed per request before a clean abort.
    seed:
        Seed of the jitter RNG; the same policy replays identically.
    """

    enabled: bool = True
    max_attempts: int = 4
    base_delay: float = 0.05
    backoff_factor: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.1
    crash_after: int = 3
    max_reforms: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay <= 0.0 or self.max_delay < self.base_delay:
            raise ConfigurationError(
                f"need 0 < base_delay <= max_delay, got "
                f"{self.base_delay}/{self.max_delay}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.crash_after < 1:
            raise ConfigurationError(
                f"crash_after must be >= 1, got {self.crash_after}"
            )
        if self.max_reforms < 0:
            raise ConfigurationError(
                f"max_reforms must be >= 0, got {self.max_reforms}"
            )

    @classmethod
    def off(cls) -> "ReliabilityPolicy":
        """The disabled policy: failure-oblivious, bit-identical to seed."""
        return cls(enabled=False)

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before re-sending attempt ``attempt + 1`` (jittered)."""
        raw = min(self.base_delay * self.backoff_factor**attempt, self.max_delay)
        if self.jitter == 0.0:
            return raw
        spread = self.jitter * raw
        return float(raw + rng.uniform(-spread, spread))


def resolve(policy: "ReliabilityPolicy | None") -> "ReliabilityPolicy | None":
    """``policy`` if it is enabled, else None (the two spellings of off)."""
    if policy is not None and policy.enabled:
        return policy
    return None


class ReliableTransport:
    """Retrying, deduplicating, crash-detecting call layer.

    Duck-types the calling surface of :class:`PeerNetwork` (``call`` /
    ``knows`` / ``stats``), so every protocol written against the plain
    network runs unmodified over the reliable transport.  Each logical
    call gets a fresh sequence number shared by all its retransmissions,
    which is what lets the recipient deduplicate redelivered requests.

    The failure detector is per-transport state: a peer that exhausts
    ``crash_after`` consecutive retry budgets is *suspected* and every
    later call to it fails fast with :class:`PeerCrashed` — feeding the
    protocol layer's eviction logic without wasting further messages.
    """

    def __init__(self, network: PeerNetwork, policy: ReliabilityPolicy) -> None:
        if not policy.enabled:
            raise ConfigurationError(
                "ReliableTransport requires an enabled ReliabilityPolicy"
            )
        self._network = network
        self._policy = policy
        self._rng = np.random.default_rng(policy.seed)
        self._suspected: set[int] = set()
        self._consecutive_failures: dict[int, int] = {}
        self._seq = 0
        self.retries = 0
        self.simulated_delay = 0.0

    @property
    def stats(self):  # noqa: ANN201 - MessageStats, mirrors PeerNetwork
        """The wrapped network's traffic counters."""
        return self._network.stats

    @property
    def policy(self) -> ReliabilityPolicy:
        """The policy this transport enforces."""
        return self._policy

    @property
    def suspected(self) -> frozenset[int]:
        """Peers the failure detector has declared crashed."""
        return frozenset(self._suspected)

    def knows(self, peer: int) -> bool:
        """True if ``peer`` is registered on the wrapped network."""
        return self._network.knows(peer)

    def call(
        self,
        sender: int,
        recipient: int,
        kind: str,
        payload: object = None,
        response_size: float = 1.0,
        retries: "int | None" = None,
    ) -> object:
        """One logical call under the reliability policy.

        ``retries`` is accepted for surface compatibility but ignored:
        the policy's ``max_attempts`` governs.  Raises
        :class:`PeerCrashed` for dead or suspected peers and
        :class:`MessageDropped` when the budget runs out below the
        suspicion threshold.
        """
        if recipient in self._suspected:
            raise PeerCrashed(
                f"peer {recipient} is suspected crashed", peer=recipient
            )
        recording = obs.enabled()
        if recording:
            obs.inc(metric.NETWORK_CALLS)
        self._seq += 1
        seq = self._seq
        policy = self._policy
        for attempt in range(policy.max_attempts):
            try:
                result = self._network.attempt(
                    sender, recipient, kind, payload, response_size, seq=seq
                )
            except PeerCrashed:
                self._suspect(recipient, recording)
                raise
            except MessageDropped:
                if attempt + 1 < policy.max_attempts:
                    delay = policy.delay(attempt, self._rng)
                    self.simulated_delay += delay
                    self.retries += 1
                    if recording:
                        obs.inc(metric.NETWORK_RETRIES)
                        obs.inc(metric.NETWORK_BACKOFF_SECONDS, delay)
                    recorder = _trace._recorder
                    if recorder is not None:
                        recorder.record(
                            _trace.EVT_RETRY, peer=recipient, kind=kind,
                            attempt=attempt + 1, backoff=delay,
                        )
                continue
            self._consecutive_failures.pop(recipient, None)
            return result
        failures = self._consecutive_failures.get(recipient, 0) + 1
        self._consecutive_failures[recipient] = failures
        if failures >= policy.crash_after:
            self._suspect(recipient, recording)
            raise PeerCrashed(
                f"peer {recipient} declared crashed after {failures} "
                f"consecutive calls of {policy.max_attempts} lost attempts each",
                peer=recipient,
            )
        raise MessageDropped(
            f"call {kind!r} from {sender} to {recipient} lost after "
            f"{policy.max_attempts} attempt(s) with backoff",
            peer=recipient,
        )

    def _suspect(self, peer: int, recording: bool) -> None:
        if peer not in self._suspected:
            self._suspected.add(peer)
            if recording:
                obs.inc(metric.NETWORK_PEERS_SUSPECTED)
            recorder = _trace._recorder
            if recorder is not None:
                recorder.record(_trace.EVT_PEER_SUSPECTED, peer=peer)
