"""A WPG view whose adjacency is fetched over the network.

The distributed clustering algorithm only reads ``neighbor_weights``;
this view implements that surface by issuing one ``adjacency`` RPC per
distinct vertex (cached afterwards — a device's answer never changes in
a static snapshot).  Running the *same* algorithm code over this view
instead of the in-memory graph turns the analytic simulation into a
message-level execution: the number of distinct fetches is the number of
involved users, and each fetch can fail under the failure plan.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import GraphError
from repro.network.simulator import PeerNetwork


class RemoteGraphView:
    """Duck-typed :class:`~repro.graph.wpg.WeightedProximityGraph` reader.

    Only the read methods the traversal layer uses are provided; anything
    mutating raises.  ``host`` is the peer issuing all fetches; its own
    adjacency is known locally and costs nothing.
    """

    def __init__(
        self,
        network: PeerNetwork,
        host: int,
        host_adjacency: dict[int, float],
        retries: int = 0,
    ) -> None:
        self._network = network
        self._host = host
        self._cache: dict[int, dict[int, float]] = {host: dict(host_adjacency)}
        self._retries = retries

    @property
    def fetched(self) -> int:
        """Distinct peers whose adjacency was fetched (involved users)."""
        return len(self._cache) - 1  # the host itself is free

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._cache or self._network.knows(vertex)

    def _adjacency(self, vertex: int) -> dict[int, float]:
        cached = self._cache.get(vertex)
        if cached is not None:
            return cached
        fetched = self._network.call(
            self._host, vertex, "adjacency", retries=self._retries
        )
        if not isinstance(fetched, dict):
            raise GraphError(f"peer {vertex} returned a malformed adjacency")
        self._cache[vertex] = fetched
        return fetched

    # -- read surface used by the traversals -----------------------------------

    def neighbor_weights(self, vertex: int) -> Iterator[tuple[int, float]]:
        """Iterate ``(neighbor, weight)`` pairs of ``vertex``."""
        return iter(self._adjacency(vertex).items())

    def neighbors(self, vertex: int) -> Iterator[int]:
        """Iterate the neighbors of ``vertex``."""
        return iter(self._adjacency(vertex))

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``."""
        adjacency = self._adjacency(u)
        if v not in adjacency:
            raise GraphError(f"no edge ({u}, {v})")
        return adjacency[v]

    def degree(self, vertex: int) -> int:
        """Number of neighbors of ``vertex``."""
        return len(self._adjacency(vertex))
