"""Length-prefixed JSON frames: the service's wire format.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding a single object.  The format is
deliberately boring: it survives any stream transport (TCP, Unix socket
pairs between the dispatcher and its shard workers), needs no external
dependency, and every field is inspectable with ``xxd`` when a wire bug
needs chasing.

Robustness contract (exercised by ``tests/test_service_protocol.py``):

* a declared length beyond ``max_bytes`` raises
  :class:`~repro.errors.FrameTooLarge` *before* any payload is read, so
  a hostile 4 GiB declaration cannot make a reader allocate;
* a connection that ends mid-frame raises
  :class:`~repro.errors.TruncatedFrame`;
* a connection that ends cleanly *between* frames reads as ``None``;
* payloads that are not valid JSON, or valid JSON that is not an
  object, raise :class:`~repro.errors.WireFormatError`.

Every frame the service sends carries a ``trace`` field (the
dispatcher's trace id), so one request's spans correlate across the
process boundary — see :func:`stamp_trace`.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

from repro.errors import FrameTooLarge, TruncatedFrame, WireFormatError
from repro.obs import trace as _trace

#: Hard cap on a frame's payload, generous enough for a 50k-user churn
#: batch or ownership table but far below anything a hostile length
#: prefix could demand.
DEFAULT_MAX_FRAME = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def encode_frame(payload: dict, max_bytes: int = DEFAULT_MAX_FRAME) -> bytes:
    """Serialise one frame (length prefix + JSON body)."""
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > max_bytes:
        raise FrameTooLarge(
            f"frame of {len(body)} bytes exceeds the {max_bytes}-byte cap"
        )
    return _LENGTH.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    """Parse a frame body; typed errors for non-JSON and non-objects."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on immediate EOF, raises mid-read."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count:
                return None
            raise TruncatedFrame(
                f"connection closed {remaining} byte(s) short of a "
                f"{count}-byte read"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket, max_bytes: int = DEFAULT_MAX_FRAME
) -> Optional[dict]:
    """Read one frame from a blocking socket.

    Returns ``None`` on a clean close (EOF at a frame boundary).  All
    other failure shapes raise a :class:`~repro.errors.WireFormatError`
    subclass — see the module docstring for the full contract.
    """
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > max_bytes:
        error = FrameTooLarge(
            f"frame declares {length} bytes, cap is {max_bytes}"
        )
        error.declared = length  # lets the reader resync, see discard_frame
        raise error
    body = _recv_exact(sock, length) if length else b""
    if body is None and length:
        raise TruncatedFrame("connection closed after the length prefix")
    return decode_payload(body or b"")


def discard_frame(sock: socket.socket, length: int) -> None:
    """Consume and drop ``length`` payload bytes to resync after an
    oversized declaration.

    A shard worker must never die because one frame was bad: after
    :class:`~repro.errors.FrameTooLarge` (whose ``declared`` attribute
    carries the offending length) the reader replies with a typed error,
    discards exactly the declared bytes, and picks up at the next frame
    boundary.  EOF mid-discard raises :class:`TruncatedFrame`.
    """
    remaining = length
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise TruncatedFrame(
                f"connection closed {remaining} byte(s) into discarding an "
                f"oversized {length}-byte frame"
            )
        remaining -= len(chunk)


def send_frame(
    sock: socket.socket, payload: dict, max_bytes: int = DEFAULT_MAX_FRAME
) -> int:
    """Encode and send one frame; returns the bytes written."""
    data = encode_frame(payload, max_bytes)
    sock.sendall(data)
    return len(data)


def stamp_trace(payload: dict) -> dict:
    """Attach the current trace id to an outgoing frame (in place).

    When no trace scope is active the frame is left unstamped — a frame
    without ``trace`` is legal, it just won't correlate.
    """
    trace_id = _trace.current_trace_id()
    if trace_id is not None:
        payload["trace"] = trace_id
    return payload
