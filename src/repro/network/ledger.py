"""Disclosure-ledger persistence.

Each :class:`~repro.network.node.UserDevice` keeps a ledger — handler
invocation counts plus the set of bound hypotheses it has answered (its
entire one-bit-per-hypothesis disclosure).  A warm restart must carry
those ledgers across the crash: a device rebuilt at zero would let the
reconciliation audits under-count what a user already revealed before
the restart.

The export is JSON-safe.  Bound values are binary64 floats encoded with
:meth:`float.hex` so the round-trip is bit-exact — a question answered
before the crash and re-asked after it must land on the *same* set
element, not a near-duplicate that double-counts the disclosure.
"""

from __future__ import annotations

from repro.errors import PersistError
from repro.network.node import UserDevice

#: Schema tag stamped on every export.
LEDGER_FORMAT = "device-ledgers-v1"


def export_ledgers(devices: dict[int, UserDevice]) -> dict:
    """All device ledgers as one JSON-safe document."""
    entries = {}
    for user_id in sorted(devices):
        device = devices[user_id]
        entries[str(user_id)] = {
            "verify": device.verify_invocations,
            "adjacency": device.adjacency_invocations,
            "questions": sorted(
                [axis, float(sign).hex(), float(bound).hex()]
                for axis, sign, bound in device.questions_answered
            ),
        }
    return {"format": LEDGER_FORMAT, "devices": entries}


def import_ledgers(devices: dict[int, UserDevice], document: dict) -> None:
    """Restore :func:`export_ledgers` output onto rebuilt ``devices``.

    Every exported user must exist in ``devices`` — a missing device
    would silently drop recorded disclosure, so it is a
    :class:`~repro.errors.PersistError` instead.
    """
    if document.get("format") != LEDGER_FORMAT:
        raise PersistError(
            f"unsupported ledger format {document.get('format')!r} "
            f"(expected {LEDGER_FORMAT!r})"
        )
    for key, entry in document["devices"].items():
        user_id = int(key)
        device = devices.get(user_id)
        if device is None:
            raise PersistError(
                f"ledger for user {user_id} has no device to restore onto"
            )
        device.restore_ledger(
            entry["verify"],
            entry["adjacency"],
            {
                (int(axis), float.fromhex(sign), float.fromhex(bound))
                for axis, sign, bound in entry["questions"]
            },
        )
