"""Message-level peer-to-peer simulation.

The clustering and bounding layers are *algorithms*; this package is the
substrate that runs them as actual message exchanges: an RPC-style
network with per-kind message accounting, failure injection (dropped
messages, crashed peers, retry budgets) and the concurrency control the
paper lists as future work (Section VII).
"""

from repro.network.message import Message, MessageStats
from repro.network.simulator import MessageDropped, PeerCrashed, PeerNetwork
from repro.network.node import UserDevice, populate_network
from repro.network.ledger import export_ledgers, import_ledgers
from repro.network.failures import FailurePlan
from repro.network.latency import (
    LatencyModel,
    bounding_run_latency,
    cloaking_latency,
    clustering_latency,
)
from repro.network.remote_graph import RemoteGraphView
from repro.network.concurrency import LockManager, ConcurrentCloakingCoordinator
from repro.network.reliability import (
    ABORT_REASONS,
    ProtocolAbort,
    ReliabilityPolicy,
    ReliableTransport,
)

__all__ = [
    "ABORT_REASONS",
    "ConcurrentCloakingCoordinator",
    "FailurePlan",
    "LatencyModel",
    "LockManager",
    "Message",
    "MessageDropped",
    "MessageStats",
    "PeerCrashed",
    "PeerNetwork",
    "ProtocolAbort",
    "ReliabilityPolicy",
    "ReliableTransport",
    "RemoteGraphView",
    "UserDevice",
    "bounding_run_latency",
    "cloaking_latency",
    "clustering_latency",
    "export_ledgers",
    "import_ledgers",
    "populate_network",
]
