"""Concurrency control for simultaneous cloaking requests (Section VII).

"Since a single user can only join one cluster but can participate [in]
the clustering process of multiple host users, our protocols must prevent
deadlocks while making the best clustering decision."

The classic fix is ordered resource acquisition: every host acquires the
vertices it wants to cluster in ascending vertex-id order, so the
waits-for graph cannot contain a cycle.  :class:`LockManager` provides
the primitive; :class:`ConcurrentCloakingCoordinator` drives a batch of
simultaneous requests to completion, restarting losers whose vertices
were claimed by an earlier-committing host — guaranteeing (a) progress,
(b) no deadlock, and (c) no user ever lands in two clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import ProtocolError
from repro.clustering.base import ClusterResult
from repro.clustering.distributed import DistributedClustering
from repro.network.reliability import ProtocolAbort


class LockManager:
    """Per-vertex exclusive locks with ordered acquisition.

    ``acquire_all`` takes the whole set atomically: it sorts the ids and
    acquires in ascending order, releasing everything and reporting the
    blocking owner on conflict.  Because every transaction orders its
    acquisitions identically, no deadlock is possible.
    """

    def __init__(self) -> None:
        self._owner: dict[int, int] = {}

    def holder(self, vertex: int) -> Optional[int]:
        """The current lock owner of ``vertex``, or None."""
        return self._owner.get(vertex)

    def acquire_all(self, owner: int, vertices: Iterable[int]) -> Optional[int]:
        """Try to lock all ``vertices`` for ``owner``.

        Returns None on success; on conflict nothing stays locked and the
        blocking owner's id is returned (re-entrant: vertices already
        held by ``owner`` pass).
        """
        taken: list[int] = []
        for vertex in sorted(set(vertices)):
            current = self._owner.get(vertex)
            if current is None:
                self._owner[vertex] = owner
                taken.append(vertex)
            elif current != owner:
                for locked in taken:
                    del self._owner[locked]
                return current
        return None

    def release_all(self, owner: int) -> None:
        """Release every lock held by ``owner``."""
        for vertex in [v for v, o in self._owner.items() if o == owner]:
            del self._owner[vertex]

    @property
    def locked_count(self) -> int:
        """Number of currently locked vertices."""
        return len(self._owner)


@dataclass(slots=True)
class ConcurrentOutcome:
    """What happened to one host in a concurrent batch.

    ``abort_reason`` distinguishes the fault-tolerant runtime's typed
    clean aborts (a :class:`~repro.network.reliability.ProtocolAbort`
    reason code) from ordinary clustering failures, which only set
    ``error``.
    """

    host: int
    result: Optional[ClusterResult] = None
    error: Optional[str] = None
    restarts: int = 0
    waited_on: list[int] = field(default_factory=list)
    abort_reason: Optional[str] = None


class ConcurrentCloakingCoordinator:
    """Runs a batch of simultaneous cloaking requests without deadlock.

    The simulation model: all hosts start at once; each computes a
    tentative cluster on the current registry state, then tries to lock
    its members.  A host blocked by another waits for that host to commit
    (ordered locking makes the waits-for relation acyclic, so waiting
    terminates) and restarts its computation — its tentative cluster may
    be stale because the winner clustered some of its members.
    """

    def __init__(
        self,
        clustering: DistributedClustering,
        max_restarts: int = 10,
    ) -> None:
        if max_restarts < 0:
            raise ProtocolError(f"max_restarts must be >= 0, got {max_restarts}")
        self._clustering = clustering
        self._locks = LockManager()
        self._max_restarts = max_restarts

    def run_batch(self, hosts: Sequence[int]) -> list[ConcurrentOutcome]:
        """Serve all ``hosts`` as if they requested simultaneously.

        Every host first *proposes* against the shared registry snapshot
        (no commitment), then races to lock the users its proposal
        claims.  The lock winner commits; losers record who they waited
        on and restart with a fresh proposal, because the winner may have
        clustered some of their members.  Ordered lock acquisition keeps
        the waits-for relation acyclic, so every host terminates with a
        result or a clean error — never a hang.
        """
        outcomes = [ConcurrentOutcome(host=host) for host in hosts]
        # Round 1: everyone proposes against the same snapshot — this is
        # the simultaneity; later rounds re-propose after conflicts.
        proposals = {
            index: self._propose(outcomes[index]) for index in range(len(hosts))
        }
        pending = [i for i in range(len(hosts)) if outcomes[i].result is None
                   and outcomes[i].error is None]
        while pending:
            index = pending.pop(0)
            outcome = outcomes[index]
            if outcome.restarts > self._max_restarts:
                outcome.error = "restart budget exhausted"
                continue
            proposal = proposals.get(index)
            if proposal is None:
                proposal = self._propose(outcome)
                proposals[index] = proposal
                if proposal is None:
                    continue  # cached or failed during re-propose
            blocker = self._locks.acquire_all(outcome.host, proposal.members())
            if blocker is not None:
                # The blocker is mid-commit; in this synchronous model it
                # has already committed by the time we retry, so just
                # restart with a fresh proposal.
                outcome.waited_on.append(blocker)
                outcome.restarts += 1
                proposals[index] = None
                pending.append(index)
                continue
            try:
                outcome.result = self._clustering.commit(proposal)
            except Exception:
                # Stale proposal: some member was clustered since we
                # proposed.  Recompute and retry.
                outcome.restarts += 1
                proposals[index] = None
                pending.append(index)
            finally:
                self._locks.release_all(outcome.host)
        return outcomes

    def _propose(self, outcome: ConcurrentOutcome):
        """Propose for one host; resolves cache hits and failures inline."""
        host = outcome.host
        try:
            cluster = self._clustering.registry.cluster_of(host)
            if cluster is not None:
                outcome.result = ClusterResult(host, cluster, 0, from_cache=True)
                return None
            return self._clustering.propose(host)
        except ProtocolAbort as exc:  # typed clean abort: keep the reason
            outcome.error = str(exc)
            outcome.abort_reason = exc.reason
            return None
        except Exception as exc:  # clustering failure is a clean outcome
            outcome.error = str(exc)
            return None


def run_concurrent_requests(
    clustering: DistributedClustering,
    hosts: Sequence[int],
    max_restarts: int = 10,
) -> list[ConcurrentOutcome]:
    """Convenience wrapper around :class:`ConcurrentCloakingCoordinator`."""
    coordinator = ConcurrentCloakingCoordinator(clustering, max_restarts)
    return coordinator.run_batch(hosts)


# Re-exported names some call sites prefer.
Callback = Callable[[ConcurrentOutcome], None]
