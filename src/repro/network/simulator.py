"""The synchronous RPC-style peer network.

Protocols in this repository are request/response shaped (fetch an
adjacency list, verify a bound), so the simulator models a *call*: a
request message, handler execution at the recipient, and a response
message.  Both legs are counted and both can be lost under a
:class:`~repro.network.failures.FailurePlan`; a caller with a retry
budget re-issues the call, and exhausting the budget raises
:class:`MessageDropped` (or :class:`PeerCrashed` when the peer is known
dead) for the protocol layer to handle.

:meth:`PeerNetwork.attempt` is the single-attempt primitive the
fault-tolerant runtime (:mod:`repro.network.reliability`) builds its
backoff/retry loop on.  An attempt may carry a *sequence number*: the
recipient keeps a replay cache keyed by ``(sender, recipient, kind,
seq)``, so a retransmitted request whose original answer was lost is
answered from the cache without re-invoking the handler — idempotent
redelivery.  A device therefore computes each sequence-numbered answer
exactly once however often the network forces a resend, which is what
keeps retries from widening the one-bit-per-hypothesis disclosure of the
secure bounding protocol.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro import obs
from repro.errors import ProtocolError
from repro.network.failures import FailurePlan
from repro.network.message import Message, MessageStats
from repro.obs import names as metric
from repro.obs import trace as _trace

Handler = Callable[[int, Any], Any]


class MessageDropped(ProtocolError):
    """A call (request or response leg) was lost and retries ran out.

    ``peer`` identifies the unresponsive recipient when known, so the
    reliability layer can attribute consecutive losses to a peer.
    """

    def __init__(self, message: str, peer: Optional[int] = None) -> None:
        super().__init__(message)
        self.peer = peer


class PeerCrashed(ProtocolError):
    """The peer is crashed; no number of retries will ever succeed.

    ``peer`` identifies the dead peer so the protocol layer can evict it
    and re-form the cluster with the survivors.
    """

    def __init__(self, message: str, peer: Optional[int] = None) -> None:
        super().__init__(message)
        self.peer = peer


class PeerNetwork:
    """Registry of peers and their RPC handlers, with traffic accounting."""

    def __init__(
        self,
        failure_plan: Optional[FailurePlan] = None,
        default_retries: int = 0,
    ) -> None:
        if default_retries < 0:
            raise ProtocolError(f"default_retries must be >= 0, got {default_retries}")
        self._handlers: dict[int, dict[str, Handler]] = {}
        self._failures = failure_plan if failure_plan is not None else FailurePlan()
        self._default_retries = default_retries
        self._replay: dict[tuple[int, int, str, int], Any] = {}
        self.stats = MessageStats()

    # -- registration -----------------------------------------------------------

    def register(self, peer: int, kind: str, handler: Handler) -> None:
        """Install ``handler`` for messages of ``kind`` addressed to ``peer``."""
        self._handlers.setdefault(peer, {})[kind] = handler

    def knows(self, peer: int) -> bool:
        """True if ``peer`` has any registered handler."""
        return peer in self._handlers

    def handler(self, peer: int, kind: str) -> Handler:
        """The handler installed for ``(peer, kind)``.

        Exists so auditing layers (the verification transcript tap) can
        wrap a live handler: fetch it, re-register a recording wrapper
        around it.  Raises :class:`ProtocolError` when nothing is
        registered.
        """
        handlers = self._handlers.get(peer)
        if handlers is None or kind not in handlers:
            raise ProtocolError(f"peer {peer} has no handler for {kind!r}")
        return handlers[kind]

    @property
    def failure_plan(self) -> FailurePlan:
        """The plan deciding which messages this network loses."""
        return self._failures

    # -- calling -----------------------------------------------------------------

    def attempt(
        self,
        sender: int,
        recipient: int,
        kind: str,
        payload: Any = None,
        response_size: float = 1.0,
        seq: Optional[int] = None,
    ) -> Any:
        """One call attempt: request leg, handler, response leg.

        Raises :class:`PeerCrashed` when the recipient is dead (the
        request message is still wasted discovering this) and
        :class:`MessageDropped` when either leg is lost.  With ``seq``,
        a retransmission whose request already reached the recipient is
        answered from the replay cache instead of re-invoking the
        handler (idempotent redelivery).
        """
        handlers = self._handlers.get(recipient)
        if handlers is None or kind not in handlers:
            raise ProtocolError(f"peer {recipient} has no handler for {kind!r}")
        recording = obs.enabled()
        recorder = _trace._recorder
        trace_id = _trace._current
        if recipient in self._failures.crashed:
            request = Message(sender, recipient, kind, payload, trace_id=trace_id)
            self.stats.record(request)
            self.stats.record_drop(request, crashed=True)
            if recording:
                obs.inc(metric.NETWORK_MESSAGES_SENT)
                obs.inc(metric.NETWORK_MESSAGES_DROPPED)
                obs.inc(metric.network_kind(kind))
            if recorder is not None:
                recorder.record(
                    _trace.EVT_MESSAGE, kind=kind, sender=sender,
                    recipient=recipient, leg="request", dropped=True,
                    crashed=True,
                )
            raise PeerCrashed(f"peer {recipient} is down", peer=recipient)
        request = Message(sender, recipient, kind, payload, trace_id=trace_id)
        self.stats.record(request)
        if recording:
            obs.inc(metric.NETWORK_MESSAGES_SENT)
            obs.inc(metric.network_kind(kind))
        if self._failures.should_drop(sender, recipient):
            self.stats.record_drop(request)
            if recording:
                obs.inc(metric.NETWORK_MESSAGES_DROPPED)
            if recorder is not None:
                recorder.record(
                    _trace.EVT_MESSAGE, kind=kind, sender=sender,
                    recipient=recipient, leg="request", dropped=True,
                )
            raise MessageDropped(
                f"request {kind!r} from {sender} to {recipient} lost",
                peer=recipient,
            )
        key = None if seq is None else (sender, recipient, kind, seq)
        deduped = key is not None and key in self._replay
        if recorder is not None:
            recorder.record(
                _trace.EVT_MESSAGE, kind=kind, sender=sender,
                recipient=recipient, leg="request", dropped=False,
                deduped=deduped,
            )
        if deduped:
            result = self._replay[key]
            self.stats.record_dedup()
            if recording:
                obs.inc(metric.NETWORK_DEDUP_REPLAYS)
        else:
            result = handlers[kind](sender, payload)
            if key is not None:
                self._replay[key] = result
        response = Message(
            recipient, sender, f"{kind}:reply", result, size=response_size,
            trace_id=trace_id,
        )
        self.stats.record(response)
        if recording:
            obs.inc(metric.NETWORK_MESSAGES_SENT)
            obs.inc(metric.network_kind(response.kind))
        response_dropped = self._failures.should_drop(recipient, sender)
        if recorder is not None:
            recorder.record(
                _trace.EVT_MESSAGE, kind=response.kind, sender=recipient,
                recipient=sender, leg="reply", dropped=response_dropped,
            )
        if response_dropped:
            self.stats.record_drop(response)
            if recording:
                obs.inc(metric.NETWORK_MESSAGES_DROPPED)
            raise MessageDropped(
                f"response {response.kind!r} from {recipient} to {sender} lost",
                peer=recipient,
            )
        return result

    def call(
        self,
        sender: int,
        recipient: int,
        kind: str,
        payload: Any = None,
        response_size: float = 1.0,
        retries: Optional[int] = None,
    ) -> Any:
        """One RPC: request leg, handler, response leg.

        Retries re-send the whole call.  Raises :class:`PeerCrashed` if
        the recipient is crashed (the caller can give up immediately) and
        :class:`MessageDropped` when transient losses exhaust the budget.
        """
        budget = self._default_retries if retries is None else retries
        if obs.enabled():
            obs.inc(metric.NETWORK_CALLS)
        crashed: Optional[PeerCrashed] = None
        for _attempt in range(budget + 1):
            try:
                return self.attempt(sender, recipient, kind, payload, response_size)
            except PeerCrashed as exc:
                # The caller still wastes its request messages discovering
                # this; re-raised once the whole budget is burnt.
                crashed = exc
            except MessageDropped:
                continue
        if crashed is not None:
            raise crashed
        raise MessageDropped(
            f"call {kind!r} from {sender} to {recipient} lost after "
            f"{budget + 1} attempt(s)",
            peer=recipient,
        )
