"""The synchronous RPC-style peer network.

Protocols in this repository are request/response shaped (fetch an
adjacency list, verify a bound), so the simulator models a *call*: a
request message, handler execution at the recipient, and a response
message.  Both legs are counted and both can be lost under a
:class:`~repro.network.failures.FailurePlan`; a caller with a retry
budget re-issues the call, and exhausting the budget raises
:class:`MessageDropped` (or :class:`PeerCrashed` when the peer is known
dead) for the protocol layer to handle.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro import obs
from repro.errors import ProtocolError
from repro.network.failures import FailurePlan
from repro.network.message import Message, MessageStats
from repro.obs import names as metric

Handler = Callable[[int, Any], Any]


class MessageDropped(ProtocolError):
    """A call (request or response leg) was lost and retries ran out."""


class PeerCrashed(ProtocolError):
    """The peer is crashed; no number of retries will ever succeed."""


class PeerNetwork:
    """Registry of peers and their RPC handlers, with traffic accounting."""

    def __init__(
        self,
        failure_plan: Optional[FailurePlan] = None,
        default_retries: int = 0,
    ) -> None:
        if default_retries < 0:
            raise ProtocolError(f"default_retries must be >= 0, got {default_retries}")
        self._handlers: dict[int, dict[str, Handler]] = {}
        self._failures = failure_plan if failure_plan is not None else FailurePlan()
        self._default_retries = default_retries
        self.stats = MessageStats()

    # -- registration -----------------------------------------------------------

    def register(self, peer: int, kind: str, handler: Handler) -> None:
        """Install ``handler`` for messages of ``kind`` addressed to ``peer``."""
        self._handlers.setdefault(peer, {})[kind] = handler

    def knows(self, peer: int) -> bool:
        """True if ``peer`` has any registered handler."""
        return peer in self._handlers

    # -- calling -----------------------------------------------------------------

    def call(
        self,
        sender: int,
        recipient: int,
        kind: str,
        payload: Any = None,
        response_size: float = 1.0,
        retries: Optional[int] = None,
    ) -> Any:
        """One RPC: request leg, handler, response leg.

        Retries re-send the whole call.  Raises :class:`PeerCrashed` if
        the recipient is crashed (the caller can give up immediately) and
        :class:`MessageDropped` when transient losses exhaust the budget.
        """
        handlers = self._handlers.get(recipient)
        if handlers is None or kind not in handlers:
            raise ProtocolError(f"peer {recipient} has no handler for {kind!r}")
        budget = self._default_retries if retries is None else retries
        recording = obs.enabled()
        if recording:
            obs.inc(metric.NETWORK_CALLS)
        if recipient in self._failures.crashed:
            # The caller still wastes its request messages discovering this.
            for _attempt in range(budget + 1):
                self.stats.record(Message(sender, recipient, kind, payload))
                self.stats.record_drop(Message(sender, recipient, kind, payload))
            if recording:
                obs.inc(metric.NETWORK_MESSAGES_SENT, budget + 1)
                obs.inc(metric.NETWORK_MESSAGES_DROPPED, budget + 1)
                obs.inc(metric.network_kind(kind), budget + 1)
            raise PeerCrashed(f"peer {recipient} is down")
        for attempt in range(budget + 1):
            request = Message(sender, recipient, kind, payload)
            self.stats.record(request)
            if recording:
                obs.inc(metric.NETWORK_MESSAGES_SENT)
                obs.inc(metric.network_kind(kind))
            if self._failures.should_drop(sender, recipient):
                self.stats.record_drop(request)
                if recording:
                    obs.inc(metric.NETWORK_MESSAGES_DROPPED)
                continue
            result = handlers[kind](sender, payload)
            response = Message(
                recipient, sender, f"{kind}:reply", result, size=response_size
            )
            self.stats.record(response)
            if recording:
                obs.inc(metric.NETWORK_MESSAGES_SENT)
                obs.inc(metric.network_kind(response.kind))
            if self._failures.should_drop(recipient, sender):
                self.stats.record_drop(response)
                if recording:
                    obs.inc(metric.NETWORK_MESSAGES_DROPPED)
                continue
            return result
        raise MessageDropped(
            f"call {kind!r} from {sender} to {recipient} lost after "
            f"{budget + 1} attempt(s)"
        )
