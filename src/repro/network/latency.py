"""Protocol latency estimation (wall-clock, not message counts).

The paper measures communication *volume*; a deployment also cares how
long a host waits for its cloak.  The two phases have very different
latency structure:

* phase 1 (clustering) is *sequential*: the host decides which adjacency
  to fetch next based on what it has seen, so the critical path is one
  round trip per involved user;
* phase 2 (bounding) is *round-parallel*: each iteration sends the
  hypothesis to every still-disagreeing member concurrently and waits
  for the slowest reply, so the critical path is one round trip per
  iteration — and the four directional runs can themselves proceed in
  parallel.

:class:`LatencyModel` samples per-message round-trip times (log-normal,
the standard heavy-tailed RTT model); the estimators walk a protocol
report's structure and accumulate its critical path.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.bounding.protocol import BoundingOutcome
from repro.obs import names as metric


class LatencyModel:
    """Samples message round-trip times.

    ``median_rtt`` is the log-normal median; ``sigma`` the log-space
    spread (0 = deterministic RTTs).  Seeded: estimates replay exactly.
    """

    def __init__(
        self,
        median_rtt: float = 0.05,
        sigma: float = 0.5,
        seed: int = 0,
    ) -> None:
        if median_rtt <= 0:
            raise ConfigurationError(
                f"median_rtt must be positive, got {median_rtt}"
            )
        if sigma < 0:
            raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
        self._mu = math.log(median_rtt)
        self._sigma = sigma
        self._rng = np.random.default_rng(seed)

    def sample_rtt(self) -> float:
        """One round-trip time."""
        if self._sigma == 0:
            return math.exp(self._mu)
        return float(self._rng.lognormal(self._mu, self._sigma))

    def slowest_of(self, concurrent: int) -> float:
        """The latency of a round awaiting ``concurrent`` parallel replies."""
        if concurrent < 1:
            raise ConfigurationError(
                f"concurrent must be >= 1, got {concurrent}"
            )
        if self._sigma == 0:
            return math.exp(self._mu)
        samples = self._rng.lognormal(self._mu, self._sigma, size=concurrent)
        return float(samples.max())


def clustering_latency(involved_users: int, model: LatencyModel) -> float:
    """Critical path of phase 1: one sequential round trip per fetch."""
    if involved_users < 0:
        raise ConfigurationError(
            f"involved_users must be >= 0, got {involved_users}"
        )
    return sum(model.sample_rtt() for _fetch in range(involved_users))


def bounding_run_latency(outcome: BoundingOutcome, model: LatencyModel) -> float:
    """Critical path of one directional bounding run.

    Each iteration is a parallel verification round; the round ends when
    the slowest still-disagreeing member answers.  A member participates
    in every round up to and including the one it agreed in
    (``agreement_rounds``); members the starting bound already covered
    (round 0) participate in none.
    """
    if outcome.iterations == 0:
        return 0.0
    rounds = list(outcome.agreement_rounds.values())
    total = 0.0
    for iteration in range(1, outcome.iterations + 1):
        participants = sum(1 for r in rounds if r >= iteration)
        if participants == 0:
            break
        total += model.slowest_of(participants)
    return total


def cloaking_latency(
    involved_users: int,
    directions: dict[str, BoundingOutcome],
    model: LatencyModel,
    parallel_directions: bool = True,
) -> float:
    """End-to-end wall-clock estimate of one cloaking request.

    Phase 1 plus phase 2, where the four directional bounding runs
    either overlap (``parallel_directions``, the natural implementation:
    a single hypothesis rectangle per round) or run back to back.
    """
    phase1 = clustering_latency(involved_users, model)
    run_latencies = [
        bounding_run_latency(outcome, model) for outcome in directions.values()
    ]
    if not run_latencies:
        total = phase1
    else:
        phase2 = max(run_latencies) if parallel_directions else sum(run_latencies)
        total = phase1 + phase2
    if obs.enabled():
        obs.observe(
            metric.NETWORK_LATENCY_SECONDS, total, bounds=obs.SECONDS_BUCKETS
        )
    return total
