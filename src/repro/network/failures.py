"""Failure injection for the peer network (paper Section VII, future work).

"Communication failures during the clustering or bounding process should
also be concerned, and a balance must be struck between robustness and
efficiency."  :class:`FailurePlan` injects exactly those failures,
deterministically (seeded), so the robustness tests can assert that the
protocols either complete with a correct result or abort cleanly.

The plan also audits its own decisions: every ``should_drop`` call is
counted, so a test can reconcile the simulator's message counters against
the failure plan (``deliveries() == stats.sent - stats.dropped`` for any
run whose crash-path drops are accounted separately).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError


class _DropAudit:
    """Mutable decision counters shared across derived plans.

    ``crash`` shares the RNG stream so drops stay reproducible; the audit
    must follow the stream, or the derived plan's decisions would vanish
    from the reconciliation.
    """

    __slots__ = ("decisions", "dropped")

    def __init__(self) -> None:
        self.decisions = 0
        self.dropped = 0


class FailurePlan:
    """Decides, per message, whether the network loses it.

    Parameters
    ----------
    drop_probability:
        Independent probability that any single message is lost.  Must be
        strictly below 1: at exactly 1.0 every message is lost and no
        retry budget can ever succeed — model a permanently dead link
        with ``crashed`` instead.
    crashed:
        Peers that never respond (every message to them is lost).
    seed:
        RNG seed; the same plan replays identically.
    """

    def __init__(
        self,
        drop_probability: float = 0.0,
        crashed: Iterable[int] = (),
        seed: int = 0,
    ) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ConfigurationError(
                f"drop_probability must be in [0, 1], got {drop_probability}"
            )
        if drop_probability == 1.0:
            raise ConfigurationError(
                "drop_probability 1.0 loses every message, so no retry "
                "budget can ever succeed; model a permanently dead link "
                "with crashed=... instead"
            )
        self._drop_probability = drop_probability
        self._crashed = frozenset(crashed)
        self._rng = np.random.default_rng(seed)
        self._audit = _DropAudit()

    @property
    def drop_probability(self) -> float:
        """The per-message loss probability."""
        return self._drop_probability

    @property
    def crashed(self) -> frozenset[int]:
        """The permanently unreachable peers."""
        return self._crashed

    def crash(self, peer: int) -> "FailurePlan":
        """A new plan with ``peer`` additionally crashed."""
        plan = FailurePlan(self._drop_probability, self._crashed | {peer})
        plan._rng = self._rng  # share the stream: drops stay reproducible
        plan._audit = self._audit  # and the audit follows the stream
        return plan

    def should_drop(self, sender: int, recipient: int) -> bool:
        """Loss decision for one message (advances the RNG stream)."""
        self._audit.decisions += 1
        if recipient in self._crashed or sender in self._crashed:
            self._audit.dropped += 1
            return True
        if self._drop_probability == 0.0:
            return False
        dropped = bool(self._rng.random() < self._drop_probability)
        if dropped:
            self._audit.dropped += 1
        return dropped

    # -- audit -------------------------------------------------------------------

    @property
    def decisions(self) -> int:
        """Total loss decisions taken so far."""
        return self._audit.decisions

    @property
    def drop_decisions(self) -> int:
        """Decisions that came out as a drop."""
        return self._audit.dropped

    def deliveries(self) -> int:
        """Messages this plan let through — the reconciliation helper.

        For any run over a :class:`~repro.network.simulator.PeerNetwork`
        this equals ``stats.sent - stats.dropped``: the simulator asks
        the plan once per transmitted leg, except for messages to crashed
        peers it short-circuits (those are counted in
        ``stats.crash_dropped``, never reaching the plan).
        """
        return self._audit.decisions - self._audit.dropped
