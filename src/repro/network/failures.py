"""Failure injection for the peer network (paper Section VII, future work).

"Communication failures during the clustering or bounding process should
also be concerned, and a balance must be struck between robustness and
efficiency."  :class:`FailurePlan` injects exactly those failures,
deterministically (seeded), so the robustness tests can assert that the
protocols either complete with a correct result or abort cleanly.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError


class FailurePlan:
    """Decides, per message, whether the network loses it.

    Parameters
    ----------
    drop_probability:
        Independent probability that any single message is lost.
    crashed:
        Peers that never respond (every message to them is lost).
    seed:
        RNG seed; the same plan replays identically.
    """

    def __init__(
        self,
        drop_probability: float = 0.0,
        crashed: Iterable[int] = (),
        seed: int = 0,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ConfigurationError(
                f"drop_probability must be in [0, 1), got {drop_probability}"
            )
        self._drop_probability = drop_probability
        self._crashed = frozenset(crashed)
        self._rng = np.random.default_rng(seed)

    @property
    def crashed(self) -> frozenset[int]:
        """The permanently unreachable peers."""
        return self._crashed

    def crash(self, peer: int) -> "FailurePlan":
        """A new plan with ``peer`` additionally crashed."""
        plan = FailurePlan(self._drop_probability, self._crashed | {peer})
        plan._rng = self._rng  # share the stream: drops stay reproducible
        return plan

    def should_drop(self, sender: int, recipient: int) -> bool:
        """Loss decision for one message (advances the RNG stream)."""
        if recipient in self._crashed or sender in self._crashed:
            return True
        if self._drop_probability == 0.0:
            return False
        return bool(self._rng.random() < self._drop_probability)
