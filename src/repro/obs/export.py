"""Snapshot export: JSON (for ``BENCH_*.json``), Prometheus text, validation.

A *snapshot* is the plain-dict image of a registry at one instant —
JSON-serialisable (infinities are nulled), diffable, and stable enough
to check into benchmark artefacts.  The same snapshot feeds three
consumers:

* the benchmark harness merges it into ``BENCH_wpg.json`` so the perf
  trajectory gains per-phase breakdowns;
* :func:`to_prometheus` renders it in the Prometheus text exposition
  format for scraping;
* :func:`validate_snapshot` checks it against the checked-in schema
  (``benchmarks/obs_snapshot_schema.json``) in CI — malformed metric
  names or inconsistent histograms fail the build.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.obs.registry import Histogram, MetricsRegistry, get_registry

SNAPSHOT_SCHEMA = "obs/v1"


def _finite_or_none(value: float) -> Optional[float]:
    return value if math.isfinite(value) else None


def _histogram_dict(metric: Histogram) -> dict:
    data = {
        "count": metric.count,
        "total": metric.total,
        "mean": metric.mean,
        "min": _finite_or_none(metric.min),
        "max": _finite_or_none(metric.max),
        "bounds": list(metric.bounds),
        "bucket_counts": list(metric.bucket_counts),
    }
    exemplars = {
        str(index): {"trace_id": pair[0], "value": pair[1]}
        for index, pair in enumerate(metric.exemplars)
        if pair is not None
    }
    if exemplars:
        data["exemplars"] = exemplars
    tails = metric.tails()
    if tails is not None:
        data["tails"] = tails
    return data


def snapshot(registry: Optional[MetricsRegistry] = None) -> dict:
    """The JSON-ready image of ``registry`` (default: the active one).

    Raises :class:`~repro.errors.ConfigurationError` when no registry is
    given and observability is disabled — an empty snapshot would
    silently report "nothing happened".
    """
    registry = registry if registry is not None else get_registry()
    if registry is None:
        raise ConfigurationError(
            "no active metrics registry: call repro.obs.enable() first "
            "(or set REPRO_OBS=1)"
        )
    return {
        "schema": SNAPSHOT_SCHEMA,
        "counters": {n: m.value for n, m in sorted(registry.counters.items())},
        "gauges": {n: m.value for n, m in sorted(registry.gauges.items())},
        "histograms": {
            n: _histogram_dict(m) for n, m in sorted(registry.histograms.items())
        },
        "spans": {
            n: _histogram_dict(m) for n, m in sorted(registry.spans.items())
        },
    }


def write_snapshot(path: Union[str, Path], registry: Optional[MetricsRegistry] = None) -> dict:
    """Serialise :func:`snapshot` to ``path``; returns the snapshot."""
    data = snapshot(registry)
    Path(path).write_text(json.dumps(data, indent=2) + "\n")
    return data


def load_snapshot(path: Union[str, Path]) -> dict:
    """Load a snapshot file; accepts bare snapshots and ``BENCH_*.json``.

    A benchmark file is recognised by its ``sizes`` list; the snapshot of
    the *last* size record (the largest population) is returned.
    """
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict) and "sizes" in data:
        candidates = [
            size["obs"]["snapshot"]
            for size in data["sizes"]
            if isinstance(size, dict) and "obs" in size and "snapshot" in size["obs"]
        ]
        if not candidates:
            raise ConfigurationError(
                f"{path}: benchmark file has no obs snapshots "
                "(was it produced with observability enabled?)"
            )
        return candidates[-1]
    if not isinstance(data, dict):
        raise ConfigurationError(f"{path}: not a snapshot object")
    return data


def _merge_histograms(name: str, docs: list[dict]) -> dict:
    """Fold several per-process images of one histogram into one."""
    first = docs[0]
    bounds = first.get("bounds", [])
    for doc in docs[1:]:
        if doc.get("bounds", []) != bounds:
            raise ConfigurationError(
                f"histogram {name!r} has conflicting bucket bounds across "
                f"snapshots: {bounds} vs {doc.get('bounds')}"
            )
    buckets = [0] * (len(bounds) + 1)
    count = 0
    total = 0.0
    lo: Optional[float] = None
    hi: Optional[float] = None
    exemplars: dict[str, dict] = {}
    for doc in docs:
        count += doc.get("count", 0)
        total += doc.get("total", 0.0)
        for index, bucket in enumerate(doc.get("bucket_counts", [])):
            buckets[index] += bucket
        if doc.get("min") is not None:
            lo = doc["min"] if lo is None else min(lo, doc["min"])
        if doc.get("max") is not None:
            hi = doc["max"] if hi is None else max(hi, doc["max"])
        # Exemplar union: one exemplar per bucket survives; when several
        # processes carry one for the same bucket, keep the largest
        # observation (the more interesting trace to chase).
        for bucket_key, exemplar in doc.get("exemplars", {}).items():
            kept = exemplars.get(bucket_key)
            if kept is None or exemplar.get("value", 0.0) > kept.get("value", 0.0):
                exemplars[bucket_key] = dict(exemplar)
    merged = {
        "count": count,
        "total": total,
        "mean": (total / count) if count else 0.0,
        "min": lo,
        "max": hi,
        "bounds": list(bounds),
        "bucket_counts": buckets,
    }
    if exemplars:
        merged["exemplars"] = exemplars
    # "tails" (exact reservoir quantiles) are deliberately dropped: the
    # snapshot carries quantiles, not the reservoir, and quantiles of
    # separate processes cannot be combined exactly.  Per-process tails
    # remain available in the input documents.
    return merged


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Combine per-process ``obs/v1`` snapshots into one document.

    The sharded service runs one metrics registry per worker process;
    the dispatcher gathers each worker's :func:`snapshot` over the wire
    and folds them here.  Counters and gauges sum (every gauge the
    engine exports — cached regions, vertices, edges — is a per-process
    quantity whose fleet-wide total is the meaningful number);
    histograms and spans sum count/total/buckets, fold min/max, and
    union exemplars.  Raises :class:`~repro.errors.ConfigurationError`
    on an empty input, a non-``obs/v1`` document, or bucket bounds that
    disagree across processes.
    """
    if not snapshots:
        raise ConfigurationError("merge_snapshots needs at least one snapshot")
    for index, doc in enumerate(snapshots):
        if not isinstance(doc, dict) or doc.get("schema") != SNAPSHOT_SCHEMA:
            raise ConfigurationError(
                f"snapshot #{index} is not an {SNAPSHOT_SCHEMA!r} document "
                f"(schema tag: {doc.get('schema') if isinstance(doc, dict) else doc!r})"
            )
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    for doc in snapshots:
        for name, value in doc.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, value in doc.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0.0) + value
    merged: dict = {
        "schema": SNAPSHOT_SCHEMA,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
    }
    for section in ("histograms", "spans"):
        grouped: dict[str, list[dict]] = {}
        for doc in snapshots:
            for name, hist in doc.get(section, {}).items():
                grouped.setdefault(name, []).append(hist)
        merged[section] = {
            name: _merge_histograms(name, docs)
            for name, docs in sorted(grouped.items())
        }
    return merged


# -- Prometheus text format ------------------------------------------------------

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    """Translate a dotted metric name into the Prometheus alphabet."""
    return _PROM_INVALID.sub("_", name)


def prometheus_text(data: dict) -> str:
    """Render an already-serialised snapshot in Prometheus text format.

    Dots become underscores (``cloaking.cache_hits`` →
    ``cloaking_cache_hits_total``); histograms and spans render as the
    standard ``_bucket``/``_sum``/``_count`` triplet with cumulative
    ``le`` buckets (spans gain a ``_seconds`` unit suffix).
    """
    lines: list[str] = []
    for name, value in data.get("counters", {}).items():
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in data.get("gauges", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for section, suffix in (("histograms", ""), ("spans", "_seconds")):
        for name, hist in data.get(section, {}).items():
            prom = _prom_name(name) + suffix
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(hist["bounds"], hist["bucket_counts"]):
                cumulative += count
                lines.append(f'{prom}_bucket{{le="{bound}"}} {cumulative}')
            lines.append(f'{prom}_bucket{{le="+Inf"}} {hist["count"]}')
            lines.append(f"{prom}_sum {hist['total']}")
            lines.append(f"{prom}_count {hist['count']}")
    return "\n".join(lines) + "\n"


def to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Prometheus text for ``registry`` (default: the active one)."""
    return prometheus_text(snapshot(registry))


# -- schema validation -----------------------------------------------------------


def validate_snapshot(data: object, schema: dict) -> list[str]:
    """Check ``data`` against a checked-in snapshot schema; returns errors.

    The schema (see ``benchmarks/obs_snapshot_schema.json``) declares the
    expected ``schema`` tag, the metric-name regex, and the value kind of
    each section (``number`` or ``histogram``).  An empty return means
    the snapshot is valid.
    """
    errors: list[str] = []
    if not isinstance(data, dict):
        return [f"snapshot is {type(data).__name__}, expected object"]
    expected_tag = schema.get("schema", SNAPSHOT_SCHEMA)
    if data.get("schema") != expected_tag:
        errors.append(
            f"schema tag {data.get('schema')!r}, expected {expected_tag!r}"
        )
    name_re = re.compile(schema.get("name_pattern", r"^[a-z][a-z0-9_.]*$"))
    for section, kind in schema.get("sections", {}).items():
        body = data.get(section)
        if not isinstance(body, dict):
            errors.append(f"section {section!r} missing or not an object")
            continue
        for name, value in body.items():
            if not name_re.match(name):
                errors.append(f"{section}: malformed metric name {name!r}")
            errors.extend(
                f"{section}.{name}: {problem}"
                for problem in _check_value(value, kind)
            )
    return errors


def _check_value(value: object, kind: str) -> list[str]:
    if kind == "number":
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return [f"expected a number, got {type(value).__name__}"]
        if not math.isfinite(value):
            return [f"non-finite value {value}"]
        return []
    if kind == "histogram":
        if not isinstance(value, dict):
            return [f"expected a histogram object, got {type(value).__name__}"]
        problems: list[str] = []
        count = value.get("count")
        bounds = value.get("bounds")
        buckets = value.get("bucket_counts")
        if not isinstance(count, int) or count < 0:
            problems.append(f"count must be a non-negative int, got {count!r}")
        if not isinstance(bounds, list) or any(
            b2 <= b1 for b1, b2 in zip(bounds or [], (bounds or [])[1:])
        ):
            problems.append("bounds must be a strictly ascending list")
        if not isinstance(buckets, list) or (
            isinstance(bounds, list) and len(buckets) != len(bounds) + 1
        ):
            problems.append("bucket_counts must have len(bounds) + 1 entries")
        elif isinstance(count, int) and sum(buckets) != count:
            problems.append(
                f"bucket_counts sum {sum(buckets)} != count {count}"
            )
        if not isinstance(value.get("total"), (int, float)):
            problems.append("total must be a number")
        return problems
    return [f"unknown schema kind {kind!r}"]


def validate_snapshot_file(
    snapshot_path: Union[str, Path], schema_path: Union[str, Path]
) -> dict:
    """Load, validate, and return a snapshot; raises on any violation."""
    data = load_snapshot(snapshot_path)
    schema = json.loads(Path(schema_path).read_text())
    errors = validate_snapshot(data, schema)
    if errors:
        detail = "\n  ".join(errors)
        raise ConfigurationError(
            f"snapshot {snapshot_path} fails schema {schema_path}:\n  {detail}"
        )
    return data
