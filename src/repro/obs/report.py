"""Pretty-print a saved metrics snapshot: hottest spans, top counters.

Usage::

    python -m repro.obs.report BENCH_wpg.json --top 10
    python -m repro.obs.report snapshot.json --validate benchmarks/obs_snapshot_schema.json
    python -m repro.obs.report snapshot.json --prometheus
    python -m repro.obs.report worker0.json worker1.json  # merged report

Several snapshot files (e.g. the per-worker snapshots a sharded
service run leaves behind) are merged with
:func:`repro.obs.merge_snapshots` before reporting: counters and
histograms sum, exemplars union.

Accepts either a bare snapshot (written by
:func:`repro.obs.export.write_snapshot`) or a ``BENCH_*.json`` benchmark
file, in which case the snapshot of the largest population is used.
Spans rank by total wall time (where the pipeline spent its life),
counters and gauges by value, histograms by observation count.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.export import (
    load_snapshot,
    merge_snapshots,
    prometheus_text,
    validate_snapshot,
)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f} ms"
    return f"{seconds * 1e6:8.3f} us"


def render(data: dict, top: int = 10) -> str:
    """The human-readable report for one snapshot."""
    lines: list[str] = []
    spans = sorted(
        data.get("spans", {}).items(),
        key=lambda item: item[1]["total"],
        reverse=True,
    )
    if spans:
        lines.append(f"hottest spans (top {min(top, len(spans))} by total time)")
        lines.append(
            f"  {'span':<28} {'count':>8} {'total':>11} {'mean':>11} {'max':>11}"
        )
        for name, hist in spans[:top]:
            lines.append(
                f"  {name:<28} {hist['count']:>8} "
                f"{_format_seconds(hist['total'])} "
                f"{_format_seconds(hist['mean'])} "
                f"{_format_seconds(hist['max'] or 0.0)}"
            )
        tailed = [(name, hist) for name, hist in spans[:top] if hist.get("tails")]
        if tailed:
            lines.append("")
            lines.append("tail latencies (exact quantiles from the reservoir)")
            lines.append(
                f"  {'span':<28} {'p50':>11} {'p95':>11} {'p99':>11}  exemplar"
            )
            for name, hist in tailed:
                tails = hist["tails"]
                row = "  " + f"{name:<28}"
                for quantile in ("p50", "p95", "p99"):
                    row += f" {_format_seconds(tails[quantile]['value'])}"
                exemplar = tails["p99"].get("trace_id")
                row += f"  trace #{exemplar}" if exemplar is not None else "  -"
                if not tails.get("exact", True):
                    row += "  (approx: reservoir overflowed)"
                lines.append(row)
    counters = sorted(
        data.get("counters", {}).items(), key=lambda item: item[1], reverse=True
    )
    if counters:
        lines.append("")
        lines.append(f"top counters (top {min(top, len(counters))} by value)")
        for name, value in counters[:top]:
            rendered = f"{value:.0f}" if float(value).is_integer() else f"{value:.3f}"
            lines.append(f"  {name:<40} {rendered:>14}")
    gauges = sorted(data.get("gauges", {}).items())
    if gauges:
        lines.append("")
        lines.append("gauges")
        for name, value in gauges:
            rendered = f"{value:.0f}" if float(value).is_integer() else f"{value:.4g}"
            lines.append(f"  {name:<40} {rendered:>14}")
    histograms = sorted(
        data.get("histograms", {}).items(),
        key=lambda item: item[1]["count"],
        reverse=True,
    )
    if histograms:
        lines.append("")
        lines.append(f"histograms (top {min(top, len(histograms))} by count)")
        for name, hist in histograms[:top]:
            lines.append(
                f"  {name:<28} count={hist['count']:<8} "
                f"mean={hist['mean']:<10.4g} "
                f"min={hist['min'] if hist['min'] is not None else '-'} "
                f"max={hist['max'] if hist['max'] is not None else '-'}"
            )
    if not lines:
        lines.append("(empty snapshot: no metrics were recorded)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "snapshot",
        nargs="+",
        help="snapshot JSON file(s), or a BENCH_*.json containing obs "
        "snapshots; several files are merged before reporting",
    )
    parser.add_argument(
        "--top", type=int, default=10, help="rows per section (default: 10)"
    )
    parser.add_argument(
        "--validate",
        metavar="SCHEMA",
        help="validate against a snapshot schema file and exit non-zero on errors",
    )
    parser.add_argument(
        "--prometheus",
        action="store_true",
        help="emit the snapshot in Prometheus text format instead of the report",
    )
    args = parser.parse_args(argv)
    if args.top < 1:
        parser.error(f"--top must be >= 1, got {args.top}")
    label = ", ".join(args.snapshot)
    try:
        loaded = [load_snapshot(path) for path in args.snapshot]
        data = loaded[0] if len(loaded) == 1 else merge_snapshots(loaded)
    except (OSError, ValueError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.validate:
        schema = json.loads(Path(args.validate).read_text())
        errors = validate_snapshot(data, schema)
        if errors:
            print(f"snapshot {label} FAILS {args.validate}:")
            for problem in errors:
                print(f"  {problem}")
            return 1
        print(f"snapshot {label} conforms to {args.validate}")
    if args.prometheus:
        print(prometheus_text(data), end="")
        return 0
    if not args.validate:
        print(render(data, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
