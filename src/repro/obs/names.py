"""Canonical metric and span names, one constant per observable.

Every instrumented layer imports its names from here instead of spelling
strings inline, so two layers measuring the same quantity *cannot* drift
apart (the bounding protocol and the message-level network both report
verification round trips through :data:`BOUNDING_VERIFICATIONS`, and a
test asserts they agree on an identical run).

Naming scheme: ``<subsystem>.<quantity>``, lowercase, underscores inside
segments — validated by :data:`~repro.obs.registry.NAME_RE` at metric
creation.  Span names share the scheme; phase spans of the request path
(``cloaking.clustering``, ``cloaking.bounding``, ``server.request_cost``,
``wpg.build_fast``) are the per-phase columns of ``BENCH_wpg.json``.
"""

from __future__ import annotations

import re

# -- cloaking engine (request path) ----------------------------------------------

CLOAKING_REQUESTS = "cloaking.requests"
CLOAKING_CACHE_HITS = "cloaking.cache_hits"
CLOAKING_CACHE_MISSES = "cloaking.cache_misses"
#: Cache hits split by provenance: ``shared`` means the answer came out
#: of a proactively pushed per-member slot (repro.tuning), ``demand``
#: means the classic registry-probe + region-cache path.  The two always
#: sum to :data:`CLOAKING_CACHE_HITS`, and with misses reconcile to
#: :data:`CLOAKING_REQUESTS` — the soak suite asserts the identity.
ENGINE_CACHE_SHARED_HITS = "engine.cache.shared_hits"
ENGINE_CACHE_DEMAND_HITS = "engine.cache.demand_hits"
CLOAKING_REGIONS_INVALIDATED = "cloaking.regions_invalidated"
CLOAKING_REGIONS_CACHED = "cloaking.regions_cached"  # gauge
CLOAKING_REGION_AREA = "cloaking.region_area"  # histogram

SPAN_REQUEST = "cloaking.request"
SPAN_REQUEST_MANY = "cloaking.request_many"

# Observability self-accounting: spans evicted from the recent-trace
# ring before inspection (truncated traces are detectable, not silent).
OBS_SPANS_DROPPED = "obs.spans_dropped"
SPAN_CLUSTERING = "cloaking.clustering"  # phase 1
SPAN_BOUNDING = "cloaking.bounding"  # phase 2

# -- churn runtime (dynamic populations) ------------------------------------------

#: apply_moves batches consumed by the engine.
CHURN_BATCHES = "engine.churn.batches"
#: Individual user moves applied across all batches.
CHURN_MOVES = "engine.churn.moves"
#: Users re-ranked because a mover's old or new position intersected
#: their delta-neighborhood (the incremental maintainer's dirty set).
CHURN_DIRTY_USERS = "engine.churn.dirty_users"
CHURN_EDGES_ADDED = "engine.churn.edges_added"
CHURN_EDGES_REMOVED = "engine.churn.edges_removed"
CHURN_EDGES_REWEIGHTED = "engine.churn.edges_reweighted"
#: Cached cloaked regions dropped because a member moved.
CHURN_REGIONS_INVALIDATED = "engine.churn.regions_invalidated"
#: Dirty-set size per batch (histogram): the locality of each patch.
CHURN_DIRTY_PER_BATCH = "engine.churn.dirty_per_batch"

SPAN_CHURN_APPLY = "engine.churn.apply_moves"
SPAN_CHURN_GRID = "engine.churn.grid_patch"  # grid move + dirty-set discovery
SPAN_CHURN_WPG = "engine.churn.wpg_patch"  # re-rank + edge diff

# -- online adaptive tuning (repro.tuning) ----------------------------------------

#: δ-plans rebuilt from cell occupancy (lazily after each churn batch).
TUNING_REPLANS = "tuning.replans"
#: Per-member region slots pushed at cloak/adopt time.
TUNING_PUSHED_SLOTS = "tuning.pushed_slots"
#: Per-member slots re-computed proactively at churn time.
TUNING_RESHARED_SLOTS = "tuning.reshared_slots"
#: Shared slots promoted to the cluster's cached region on first serve.
TUNING_PROMOTIONS = "tuning.promotions"
#: Requests served at a relaxed k' after the exact oracle confirmed no
#: k-valid cluster existed.
TUNING_RELAXATIONS = "tuning.relaxations"
#: Relaxation attempts vetoed because the oracle *found* a k-valid
#: cluster the engine missed — the defect is re-raised, never masked.
TUNING_RELAX_REJECTED = "tuning.relax_rejected"
#: Relaxation attempts that found no valid cluster at any k' either.
TUNING_RELAX_EXHAUSTED = "tuning.relax_exhausted"

SPAN_TUNING_RESHARE = "tuning.reshare"
SPAN_TUNING_RELAX = "tuning.relax"

# -- durable state (repro.persist) -------------------------------------------------

#: Move batches appended to the write-ahead churn journal.
PERSIST_JOURNAL_RECORDS = "persist.journal_records"
#: Bytes fsync'd into the journal (framing included).
PERSIST_JOURNAL_BYTES = "persist.journal_bytes"
#: Snapshots written by checkpoint().
PERSIST_CHECKPOINTS = "persist.checkpoints"
#: Engines restored from a snapshot (+ journal replay).
PERSIST_RESTORES = "persist.restores"
#: Journal batches replayed during restore.
PERSIST_REPLAYED_BATCHES = "persist.replayed_batches"
#: Journals found with a torn/corrupt tail (discarded suffix).
PERSIST_TORN_TAILS = "persist.torn_tails"

SPAN_PERSIST_CHECKPOINT = "persist.checkpoint"
SPAN_PERSIST_RESTORE = "persist.restore"
SPAN_PERSIST_REPLAY = "persist.replay"

# -- clustering (phase 1 internals) ----------------------------------------------

CLUSTERING_REQUESTS = "clustering.requests"
CLUSTERING_CACHE_HITS = "clustering.cache_hits"
CLUSTERING_INVOLVED_USERS = "clustering.involved_users"
CLUSTERING_MEW_ITERATIONS = "clustering.mew_iterations"
CLUSTERING_ISOLATION_CHECKS = "clustering.isolation_checks"
CLUSTERING_ISOLATION_MERGES = "clustering.isolation_merges"

SPAN_PROPOSE = "clustering.propose"
SPAN_PARTITION_ALL = "clustering.partition_all"

# -- cluster-tree fast path (phase 1, tree service) -------------------------------

#: Requests the tree service resolved entirely by ancestor walks.
CLUSTERING_TREE_FAST = "clustering.tree_fast_requests"
#: Requests delegated to the exclusion-aware distributed path because a
#: consulted tree node contained already-assigned (marked) leaves.
CLUSTERING_TREE_FALLBACKS = "clustering.tree_fallbacks"
#: Component trees re-derived while consuming churn patches.
CLUSTERING_TREE_REBUILDS = "clustering.tree_rebuilds"

SPAN_TREE_BUILD = "clustering.tree_build"
SPAN_TREE_PATCH = "clustering.tree_patch"

# -- secure bounding (phase 2 internals) -----------------------------------------

BOUNDING_RUNS = "bounding.runs"
BOUNDING_ITERATIONS = "bounding.iterations"
#: Verification round trips, the paper's cost unit Cb.  Reported by the
#: analytic protocol AND the message-level p2p layer — same name, same
#: unit, so the two accountings are directly comparable.
BOUNDING_VERIFICATIONS = "bounding.verifications"
#: Users whose value was pinned to a finite agreement interval — the
#: protocol's information leak (Section VII), first-class rather than a
#: buried dict.
BOUNDING_EXPOSED_USERS = "bounding.exposed_users"
BOUNDING_ITERATIONS_PER_RUN = "bounding.iterations_per_run"  # histogram

# -- WPG construction ------------------------------------------------------------

WPG_BUILDS = "wpg.builds"
WPG_VERTICES = "wpg.vertices"  # gauge
WPG_EDGES = "wpg.edges"  # gauge

SPAN_BUILD_SCALAR = "wpg.build_scalar"
SPAN_BUILD_FAST = "wpg.build_fast"

# -- peer network ----------------------------------------------------------------

NETWORK_MESSAGES_SENT = "network.messages_sent"
NETWORK_MESSAGES_DROPPED = "network.messages_dropped"
NETWORK_CALLS = "network.calls"
NETWORK_LATENCY_SECONDS = "network.latency_seconds"  # histogram (simulated)

# -- fault-tolerant runtime (reliability layer) -----------------------------------

#: Call attempts re-issued after a presumed-lost message (timeout).
NETWORK_RETRIES = "network.retries"
#: Simulated seconds spent waiting in capped-exponential backoff.
NETWORK_BACKOFF_SECONDS = "network.backoff_seconds"
#: Redelivered sequence-numbered requests answered from the replay cache
#: instead of re-invoking the handler (idempotent redelivery).
NETWORK_DEDUP_REPLAYS = "network.dedup_replays"
#: Peers declared crashed by the failure detector (consecutive timeouts).
NETWORK_PEERS_SUSPECTED = "network.peers_suspected"
#: Unresponsive peers evicted from a forming cluster.
CLUSTERING_EVICTIONS = "clustering.evictions"
#: Cluster re-formations after an eviction or unrecoverable loss.
CLUSTERING_REFORMS = "clustering.reforms"
#: Secure-bounding runs restarted with the surviving members.
BOUNDING_RESTARTS = "bounding.restarts"
#: Requests that ended in a typed clean :class:`ProtocolAbort`.
PROTOCOL_ABORTS = "protocol.aborts"

_KIND_SANITIZE = re.compile(r"[^a-z0-9_]+")


def network_kind(kind: str) -> str:
    """Per-message-kind counter name, e.g. ``network.messages.verify_bound``.

    Message kinds are protocol-defined strings (``adjacency``,
    ``verify_bound:reply``); anything outside the metric-name alphabet is
    squashed to ``_`` so a kind can never produce a malformed name.
    """
    cleaned = _KIND_SANITIZE.sub("_", kind.lower()).strip("_") or "unknown"
    return f"network.messages.{cleaned}"


# -- differential verification (fuzz harness) -------------------------------------

VERIFY_WORLDS = "verify.worlds"
VERIFY_REQUESTS = "verify.requests"
#: Requests that ended in a documented clean failure (undersized
#: component, typed protocol abort) rather than a served region.
VERIFY_CLEAN_FAILURES = "verify.clean_failures"
VERIFY_INVARIANT_CHECKS = "verify.invariant_checks"
VERIFY_VIOLATIONS = "verify.violations"
#: Worlds additionally replayed message-level through the peer network.
VERIFY_P2P_WORLDS = "verify.p2p_worlds"

SPAN_VERIFY_WORLD = "verify.world"

# -- sharded service runtime (repro.service) --------------------------------------

#: Cloak requests admitted by the dispatcher (single + batched hosts).
SERVICE_REQUESTS = "service.requests"
#: Requests rejected with a typed ServiceOverload (admission queue full).
SERVICE_OVERLOADS = "service.overloads"
#: Wire frames the dispatcher sent to shard workers.
SERVICE_FRAMES_SENT = "service.frames_sent"
#: Churn barriers driven through the whole fleet.
SERVICE_CHURN_TICKS = "service.churn_ticks"
#: Moves whose old or new position crossed into some shard's delta-halo
#: band (each such move is listed in that shard's halo-refresh message).
SERVICE_HALO_REFRESHES = "service.halo_refreshes"
#: Users whose owning shard changed at a churn barrier (component
#: drifted across a slab boundary).
SERVICE_REROUTED_USERS = "service.rerouted_users"
#: Malformed/oversized frames rejected at the front end or a worker.
SERVICE_WIRE_ERRORS = "service.wire_errors"

#: Worker-side: frames served by this shard worker process.
SERVICE_WORKER_FRAMES = "service.worker.frames"
#: Worker-side: cloak requests this shard worker answered.
SERVICE_WORKER_REQUESTS = "service.worker.requests"

SPAN_SERVICE_REQUEST = "service.request"  # dispatcher-side round trip
SPAN_SERVICE_CHURN = "service.churn_tick"  # full barrier
SPAN_WORKER_OP = "service.worker.op"  # worker-side frame handling

# -- LBS server ------------------------------------------------------------------

SERVER_REQUESTS = "server.requests"
SERVER_CANDIDATE_POIS = "server.candidate_pois"
SERVER_COST_MESSAGES = "server.cost_messages"
SERVER_CANDIDATES_PER_REQUEST = "server.candidates_per_request"  # histogram

SPAN_REQUEST_COST = "server.request_cost"
