"""The process-local metrics registry (counters, gauges, histograms).

The evaluation of the paper is an exercise in cost accounting — messages
per cloaking request, bounding cost in units of Cb, cloaked-region area —
and every layer of the pipeline needs to report into one place before
any of it can be compared.  This module is that place: a plain-Python
registry of named metrics, plus a module-level *active registry* switch
so instrumentation can be compiled into every hot path and still cost
essentially nothing when observability is off.

Design rules (the whole module is built around them):

* **Disabled means one branch.**  Every module-level helper (:func:`inc`,
  :func:`observe`, :func:`set_gauge`) checks a single module global and
  returns immediately when no registry is active.  No object allocation,
  no dict lookup, no string formatting on the disabled path.
* **Hot loops aggregate, then report.**  Instrumented code records *per
  run*, never per loop iteration (the bounding protocol sums its
  verification messages and reports once at the end of a run).
* **Names are validated once**, at metric creation, against
  :data:`NAME_RE` — dotted lowercase segments, e.g.
  ``cloaking.cache_hits``.  Malformed names raise
  :class:`~repro.errors.ConfigurationError` so they can never reach an
  exported snapshot.

Enable programmatically with :func:`enable` / :func:`disable`, or set
``REPRO_OBS=1`` in the environment before the first import.
"""

from __future__ import annotations

import bisect
import math
import os
import re
from typing import Optional

from repro.errors import ConfigurationError
from repro.obs import trace as _trace

#: Valid metric names: dotted lowercase segments, digits and underscores.
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

#: How many raw observations a tail-tracking histogram retains; within
#: this budget the reported p50/p95/p99 are exact, beyond it the excess
#: is counted in ``reservoir_dropped`` so approximation is detectable.
RESERVOIR_CAPACITY = 4096

#: Default histogram bucket upper bounds for second-valued observations
#: (spans): 1 us .. ~100 s in roughly 4x steps, plus +inf implicitly.
SECONDS_BUCKETS: tuple[float, ...] = (
    1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4, 1.024e-3, 4.096e-3,
    1.6384e-2, 6.5536e-2, 0.262144, 1.048576, 4.194304, 16.777216, 100.0,
)

#: Default buckets for count-valued observations (messages, iterations):
#: powers of two up to 64k, plus +inf implicitly.
COUNT_BUCKETS: tuple[float, ...] = tuple(float(2**i) for i in range(17))


def _check_name(name: str) -> str:
    if not NAME_RE.match(name):
        raise ConfigurationError(
            f"malformed metric name {name!r}: must match {NAME_RE.pattern}"
        )
    return name


class Counter:
    """A monotonically increasing total (float-valued: Cb costs fractional)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters only go up)."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount


class Gauge:
    """A value that goes up and down (population size, cache residency)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (either sign)."""
        self.value += delta


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max running stats.

    ``bounds`` are the buckets' inclusive upper edges in ascending order;
    one overflow bucket (+inf) is always appended.  Fixed buckets keep
    ``observe`` O(log B) with zero allocation, which is what lets spans
    report through here from inside the request path.

    Two per-request hooks ride along:

    * **exemplars** — each bucket remembers the last ``(trace_id,
      value)`` observed under an active trace scope, so a latency bucket
      links to a concrete inspectable trace.
    * an optional **reservoir** (``track_tails=True``) retaining raw
      observations up to :data:`RESERVOIR_CAPACITY`, making the reported
      tail quantiles exact rather than bucket-interpolated.
    """

    __slots__ = (
        "name", "bounds", "bucket_counts", "count", "total", "min", "max",
        "exemplars", "reservoir", "reservoir_dropped", "_bounds_arg",
    )

    def __init__(
        self,
        name: str,
        bounds: tuple[float, ...] = SECONDS_BUCKETS,
        track_tails: bool = False,
    ) -> None:
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ConfigurationError(
                f"histogram {name!r} bounds must be strictly ascending"
            )
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self._bounds_arg = bounds  # identity shortcut for conflict checks
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.exemplars: list[Optional[tuple[int, float]]] = [None] * (
            len(bounds) + 1
        )
        self.reservoir: Optional[list[tuple[float, Optional[int]]]] = (
            [] if track_tails else None
        )
        self.reservoir_dropped = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect.bisect_left(self.bounds, value)
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        trace_id = _trace._current
        if trace_id is not None:
            self.exemplars[index] = (trace_id, value)
        reservoir = self.reservoir
        if reservoir is not None:
            if len(reservoir) < RESERVOIR_CAPACITY:
                reservoir.append((value, trace_id))
            else:
                self.reservoir_dropped += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def tails(self) -> Optional[dict]:
        """Exact tail quantiles from the reservoir (None when untracked).

        Each quantile is nearest-rank over the retained raw values and
        carries the trace id of the observation realizing it; ``exact``
        is False once the reservoir overflowed (quantiles then cover
        only the first :data:`RESERVOIR_CAPACITY` observations).
        """
        if self.reservoir is None or not self.reservoir:
            return None
        ordered = sorted(self.reservoir, key=lambda pair: pair[0])
        out: dict = {
            "exact": self.reservoir_dropped == 0,
            "samples": len(ordered),
        }
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            rank = max(0, math.ceil(q * len(ordered)) - 1)
            value, trace_id = ordered[min(rank, len(ordered) - 1)]
            out[label] = {"value": value, "trace_id": trace_id}
        return out


class SpanStats(Histogram):
    """Aggregated wall-time of one span name; a tail-exact seconds histogram."""

    __slots__ = ()

    def __init__(self, name: str) -> None:
        super().__init__(name, SECONDS_BUCKETS, track_tails=True)


class MetricsRegistry:
    """All metrics of one observation window, addressed by name.

    Metric kinds live in separate namespaces (a counter and a span may
    share a name without clashing, though instrumentation here never
    does).  The registry is not thread-safe by design: the simulation is
    single-threaded and the request path cannot afford a lock; callers
    running workers should give each its own registry and merge
    snapshots.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.spans: dict[str, SpanStats] = {}

    # -- metric accessors (create on first use) ---------------------------------

    def counter(self, name: str) -> Counter:
        """The counter ``name``, created on first use."""
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(_check_name(name))
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge ``name``, created on first use."""
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(_check_name(name))
        return metric

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = COUNT_BUCKETS,
        track_tails: bool = False,
    ) -> Histogram:
        """The histogram ``name``, created with ``bounds`` on first use.

        Re-registering a name with *different* bounds raises: a silent
        reuse of the first caller's buckets would misfile every later
        observation (e.g. seconds-valued data into area buckets).
        ``track_tails`` only takes effect at creation time.
        """
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(
                _check_name(name), bounds, track_tails=track_tails
            )
        elif bounds is not metric._bounds_arg and metric.bounds != tuple(
            float(b) for b in bounds
        ):
            raise ConfigurationError(
                f"histogram {name!r} re-registered with conflicting bounds: "
                f"have {metric.bounds}, got {tuple(bounds)}"
            )
        return metric

    def span_stats(self, name: str) -> SpanStats:
        """The span aggregate ``name``, created on first use."""
        metric = self.spans.get(name)
        if metric is None:
            metric = self.spans[name] = SpanStats(_check_name(name))
        return metric

    # -- bulk operations ---------------------------------------------------------

    def reset(self) -> None:
        """Drop every metric (a fresh observation window)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.spans.clear()


# -- the active registry ---------------------------------------------------------
#
# ``_active`` is either None (disabled) or the enabled registry.  The
# helpers below are what instrumented code calls; each reads ``_active``
# exactly once, so the disabled cost is one global load and one branch.

_active: Optional[MetricsRegistry] = None


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Switch observability on; returns the now-active registry.

    Passing a registry resumes recording into it; omitting one keeps the
    previous registry if any, else creates a fresh one.
    """
    global _active
    if registry is not None:
        _active = registry
    elif _active is None:
        _active = MetricsRegistry()
    _trace._metrics_active = True
    return _active


def disable() -> Optional[MetricsRegistry]:
    """Switch observability off; returns the registry that was active."""
    global _active
    registry, _active = _active, None
    _trace._metrics_active = False
    return registry


def enabled() -> bool:
    """True when a registry is currently recording."""
    return _active is not None


def get_registry() -> Optional[MetricsRegistry]:
    """The active registry, or None when disabled."""
    return _active


def reset() -> None:
    """Clear the active registry's metrics (no-op when disabled)."""
    if _active is not None:
        _active.reset()


def inc(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name`` (no-op when disabled)."""
    registry = _active
    if registry is None:
        return
    registry.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op when disabled)."""
    registry = _active
    if registry is None:
        return
    registry.gauge(name).set(value)


def observe(
    name: str, value: float, bounds: tuple[float, ...] = COUNT_BUCKETS
) -> None:
    """Record ``value`` into histogram ``name`` (no-op when disabled)."""
    registry = _active
    if registry is None:
        return
    registry.histogram(name, bounds).observe(value)


if os.environ.get("REPRO_OBS", "").strip().lower() in {"1", "true", "yes", "on"}:
    enable()
