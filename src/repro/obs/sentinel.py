"""Perf-regression sentinel over the benchmark result files.

Usage::

    python -m repro.obs.sentinel BENCH_wpg.json BENCH_churn.json
    python -m repro.obs.sentinel BENCH_wpg.json --tolerance 0.2
    python -m repro.obs.sentinel BENCH_churn.json --record-only

Each run extracts the tracked metrics from every bench file, compares
them against a baseline derived from that schema's recorded history, and
appends the run to the history when it passes.  The gate trips — exit
status 1, regressed run NOT recorded — when any tracked metric moves in
its *worse* direction by more than the tolerance band.

Tolerance-band semantics
------------------------
The baseline for a metric is the **median** of its value over the last
``--window`` history entries (median, so one anomalous run cannot drag
the baseline).  A higher-is-better metric (throughput, speedup)
regresses when ``current < baseline * (1 - tolerance)``; a
lower-is-better metric (latency, build seconds) regresses when
``current > baseline * (1 + tolerance)``.  Movement *within* the band —
including improvements — passes and is recorded, so the baseline tracks
genuine drift instead of pinning the first run forever.

History lives in ``benchmarks/results/history/<schema>.jsonl`` (one
JSON object per line: the tracked metrics plus provenance).  The first
run against an empty history seeds it and passes — the sentinel needs
one recorded run before it can gate.
"""

from __future__ import annotations

import argparse
import json
import math
import statistics
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

#: Default half-width of the tolerance band (relative).  Generous by
#: design: CI machines are noisy, and a false gate is worse than a
#: slightly sluggish one.
DEFAULT_TOLERANCE = 0.30

#: History entries the baseline median is computed over.
DEFAULT_WINDOW = 5

#: Default history directory, relative to the repository root.
DEFAULT_HISTORY = Path("benchmarks/results/history")


@dataclass(frozen=True, slots=True)
class TrackedMetric:
    """One gated metric: where it lives and which way is worse."""

    name: str
    path: tuple[str, ...]
    higher_is_better: bool


#: Gated metrics per bench schema.  ``bench_wpg/v3``/``v4`` and
#: ``bench_persist/v1`` metrics read from the largest population entry
#: (``sizes[-1]``); ``bench_churn/v2``/``v3`` and ``bench_service/v1``
#: metrics read from the document root.
TRACKED: dict[str, tuple[TrackedMetric, ...]] = {
    "bench_wpg/v3": (
        TrackedMetric("build.fast_seconds", ("build", "fast_seconds"), False),
        TrackedMetric("build.speedup", ("build", "speedup"), True),
        TrackedMetric(
            "requests.requests_per_second",
            ("requests", "requests_per_second"),
            True,
        ),
        TrackedMetric("clustering.speedup", ("clustering", "speedup"), True),
        TrackedMetric(
            "clustering.tree.requests_per_second",
            ("clustering", "tree", "requests_per_second"),
            True,
        ),
    ),
    "bench_churn/v2": (
        TrackedMetric("maintenance_speedup", ("maintenance_speedup",), True),
        TrackedMetric(
            "incremental.moves_per_second",
            ("incremental", "moves_per_second"),
            True,
        ),
        TrackedMetric(
            "incremental.request_latency_ms.p95",
            ("incremental", "request_latency_ms", "p95"),
            False,
        ),
        TrackedMetric("tree.request_speedup", ("tree", "request_speedup"), True),
    ),
    "bench_wpg/v4": (
        TrackedMetric("build.fast_seconds", ("build", "fast_seconds"), False),
        TrackedMetric("build.speedup", ("build", "speedup"), True),
        TrackedMetric(
            "requests.requests_per_second",
            ("requests", "requests_per_second"),
            True,
        ),
        TrackedMetric("clustering.speedup", ("clustering", "speedup"), True),
        TrackedMetric(
            "clustering.tree.requests_per_second",
            ("clustering", "tree", "requests_per_second"),
            True,
        ),
        TrackedMetric(
            "tuning.shared_hit_rate",
            ("tuning", "shared_hit_rate"),
            True,
        ),
        TrackedMetric(
            "tuning.cache_hit_rate",
            ("tuning", "cache_hit_rate"),
            True,
        ),
    ),
    "bench_churn/v3": (
        TrackedMetric("maintenance_speedup", ("maintenance_speedup",), True),
        TrackedMetric(
            "incremental.moves_per_second",
            ("incremental", "moves_per_second"),
            True,
        ),
        TrackedMetric(
            "incremental.request_latency_ms.p95",
            ("incremental", "request_latency_ms", "p95"),
            False,
        ),
        TrackedMetric("tree.request_speedup", ("tree", "request_speedup"), True),
        TrackedMetric(
            "tuning.sharing_on.cache_hit_rate",
            ("tuning", "sharing_on", "requests", "cache_hit_rate"),
            True,
        ),
        TrackedMetric(
            "tuning.hit_rate_gain",
            ("tuning", "hit_rate_gain"),
            True,
        ),
        TrackedMetric(
            "tuning.relax_on.failure_rate",
            ("tuning", "relax_on", "requests", "failure_rate"),
            False,
        ),
    ),
    "bench_persist/v1": (
        TrackedMetric("snapshot.seconds", ("snapshot", "seconds"), False),
        TrackedMetric("restore.seconds", ("restore", "seconds"), False),
        TrackedMetric("restore_speedup", ("restore_speedup",), True),
        TrackedMetric(
            "journal.moves_per_second",
            ("journal", "moves_per_second"),
            True,
        ),
    ),
    "bench_service/v1": (
        TrackedMetric(
            "scaling.capacity_speedup_2",
            ("scaling", "capacity_speedup_2"),
            True,
        ),
        TrackedMetric(
            "scaling.capacity_speedup_4",
            ("scaling", "capacity_speedup_4"),
            True,
        ),
        TrackedMetric(
            "single.capacity_rps", ("single", "capacity_rps"), True
        ),
        TrackedMetric(
            "single.latency_p95_ms", ("single", "latency_p95_ms"), False
        ),
    ),
}


def history_path(history_dir: Path, schema: str) -> Path:
    """The JSONL history file for ``schema`` under ``history_dir``."""
    return history_dir / (schema.replace("/", "_") + ".jsonl")


def extract_metrics(data: dict) -> tuple[str, dict[str, float]]:
    """Pull the tracked metrics out of one loaded bench document."""
    schema = data.get("schema")
    if schema not in TRACKED:
        known = ", ".join(sorted(TRACKED))
        raise ValueError(
            f"unsupported bench schema {schema!r} (sentinel tracks: {known})"
        )
    root = data
    if schema in ("bench_wpg/v3", "bench_wpg/v4", "bench_persist/v1"):
        sizes = data.get("sizes") or []
        if not sizes:
            raise ValueError(f"{schema} document has no sizes[] entries")
        root = sizes[-1]
    metrics: dict[str, float] = {}
    for tracked in TRACKED[schema]:
        node = root
        for key in tracked.path:
            if not isinstance(node, dict) or key not in node:
                node = None
                break
            node = node[key]
        if isinstance(node, (int, float)) and math.isfinite(node):
            metrics[tracked.name] = float(node)
    return schema, metrics


def load_history(path: Path, window: int) -> list[dict]:
    """The last ``window`` recorded runs (empty when no history yet)."""
    if not path.exists():
        return []
    entries: list[dict] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries[-window:]


def append_history(path: Path, schema: str, source: str, metrics: dict) -> None:
    """Record one passing run at the end of the history file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    entry = {
        "schema": schema,
        "source": source,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "metrics": metrics,
    }
    with path.open("a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def baseline_of(history: list[dict], name: str) -> Optional[float]:
    """Median of ``name`` over the history window, None if never seen."""
    values = [
        entry["metrics"][name]
        for entry in history
        if isinstance(entry.get("metrics"), dict) and name in entry["metrics"]
    ]
    if not values:
        return None
    return float(statistics.median(values))


@dataclass(frozen=True, slots=True)
class Verdict:
    """One metric's comparison against its baseline."""

    name: str
    baseline: Optional[float]
    current: Optional[float]
    delta: Optional[float]  # relative change, sign follows raw value
    regressed: bool
    note: str


def check(
    schema: str,
    metrics: dict[str, float],
    history: list[dict],
    tolerance: float,
) -> list[Verdict]:
    """Compare one run's metrics against the history baseline."""
    verdicts: list[Verdict] = []
    for tracked in TRACKED[schema]:
        current = metrics.get(tracked.name)
        baseline = baseline_of(history, tracked.name)
        if current is None:
            verdicts.append(
                Verdict(tracked.name, baseline, None, None, False, "missing")
            )
            continue
        if baseline is None:
            verdicts.append(
                Verdict(tracked.name, None, current, None, False, "no baseline")
            )
            continue
        if baseline <= 0.0:
            verdicts.append(
                Verdict(
                    tracked.name, baseline, current, None, False,
                    "degenerate baseline",
                )
            )
            continue
        delta = (current - baseline) / baseline
        if tracked.higher_is_better:
            regressed = current < baseline * (1.0 - tolerance)
            improved = delta > 0
        else:
            regressed = current > baseline * (1.0 + tolerance)
            improved = delta < 0
        note = (
            "REGRESSED" if regressed
            else "improved" if improved and abs(delta) > 1e-9
            else "ok"
        )
        verdicts.append(
            Verdict(tracked.name, baseline, current, delta, regressed, note)
        )
    return verdicts


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.4g}"


def render_report(
    source: str,
    schema: str,
    verdicts: list[Verdict],
    tolerance: float,
    window_used: int,
) -> str:
    """The human-readable delta table for one bench file."""
    lines = [
        f"{source} ({schema}) — baseline: median of last {window_used} "
        f"run(s), tolerance ±{tolerance:.0%}"
    ]
    lines.append(
        f"  {'metric':<38} {'baseline':>12} {'current':>12} {'delta':>8}  status"
    )
    for verdict in verdicts:
        delta = (
            f"{verdict.delta:+.1%}" if verdict.delta is not None else "-"
        )
        lines.append(
            f"  {verdict.name:<38} {_fmt(verdict.baseline):>12} "
            f"{_fmt(verdict.current):>12} {delta:>8}  {verdict.note}"
        )
    return "\n".join(lines)


def run_sentinel(
    paths: list[str],
    history_dir: Path,
    tolerance: float,
    window: int,
    check_only: bool = False,
    record_only: bool = False,
) -> int:
    """Gate every bench file; 0 = all pass, 1 = regression, 2 = bad input."""
    exit_code = 0
    for source in paths:
        try:
            data = json.loads(Path(source).read_text())
            schema, metrics = extract_metrics(data)
        except (OSError, ValueError) as exc:
            print(f"error: {source}: {exc}", file=sys.stderr)
            return 2
        store = history_path(history_dir, schema)
        history = load_history(store, window)
        if record_only:
            append_history(store, schema, source, metrics)
            print(f"{source} ({schema}): recorded (no gate).")
            continue
        if not history:
            if check_only:
                print(
                    f"{source} ({schema}): no history at {store} — "
                    "nothing to gate against."
                )
                continue
            append_history(store, schema, source, metrics)
            print(
                f"{source} ({schema}): seeded history at {store} "
                f"({len(metrics)} metric(s)); gate active from the next run."
            )
            continue
        verdicts = check(schema, metrics, history, tolerance)
        print(render_report(source, schema, verdicts, tolerance, len(history)))
        regressions = [v for v in verdicts if v.regressed]
        if regressions:
            names = ", ".join(v.name for v in regressions)
            print(
                f"  => FAIL: {len(regressions)} metric(s) beyond the "
                f"tolerance band ({names}); run NOT recorded."
            )
            exit_code = 1
        else:
            if not check_only:
                append_history(store, schema, source, metrics)
            print("  => PASS" + ("" if check_only else " (run recorded)"))
    return exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "benches",
        nargs="+",
        metavar="BENCH",
        help="bench result JSON file(s): BENCH_wpg.json / BENCH_churn.json",
    )
    parser.add_argument(
        "--history",
        default=str(DEFAULT_HISTORY),
        help=f"history directory (default: {DEFAULT_HISTORY})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"relative tolerance band (default: {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        help=f"history entries the baseline median uses (default: {DEFAULT_WINDOW})",
    )
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="gate without recording the run (repeatable dry run)",
    )
    parser.add_argument(
        "--record-only",
        action="store_true",
        help="record the run without gating (seed or backfill history)",
    )
    args = parser.parse_args(argv)
    if args.check_only and args.record_only:
        parser.error("--check-only and --record-only are mutually exclusive")
    if not 0.0 < args.tolerance < 1.0:
        parser.error(f"--tolerance must be in (0, 1), got {args.tolerance}")
    if args.window < 1:
        parser.error(f"--window must be >= 1, got {args.window}")
    return run_sentinel(
        args.benches,
        Path(args.history),
        args.tolerance,
        args.window,
        check_only=args.check_only,
        record_only=args.record_only,
    )


if __name__ == "__main__":
    sys.exit(main())
