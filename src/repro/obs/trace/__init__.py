"""Trace-context propagation and the protocol flight recorder.

The paper's protocols are multi-party and multi-round: one cloaking
request fans out into clustering consultations, four directional secure
bounding runs, and — under the reliability runtime — retries, dedup
replays, crash evictions, and aborts.  The metrics registry aggregates
all of that per process; this module adds the *per-request* axis:

* A **trace context**: :func:`request_scope` allocates a process-unique
  trace id at each engine entry point (``request`` / ``request_many`` /
  ``apply_moves`` / a bare ``P2PCloakingSession.request``) and parks it
  in a module global that the network simulator stamps onto every
  :class:`~repro.network.message.Message` envelope.  Nested scopes adopt
  the outer id, so a session request issued by the engine's reliable
  path stays one trace.
* A **flight recorder**: a bounded ring of typed
  :class:`TraceEvent` entries (request start/end, cache hit/miss,
  cluster formed/reformed, bounding runs, retries, evictions, aborts,
  churn patches, per-leg messages), each stamped with the current trace
  id, installable with :func:`install_recorder`.
* **JSONL export + CLI**: :func:`export_jsonl` writes a ``trace/v1``
  file (meta line, recent span records, events); ``python -m
  repro.obs.trace file.jsonl`` summarizes traces and renders a
  per-request waterfall.

Disabled-path contract (inherited from the registry): when no recorder
is installed and metrics are off, :func:`request_scope` returns a shared
no-op scope — module-global loads and one branch, no allocation — and
instrumented call sites read :data:`_recorder` once and skip event
construction entirely.

This module is a dependency *leaf*: ``registry`` and ``spans`` import
it (for exemplar lookup and trace-id adoption); it imports neither.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Deque, Iterable, Optional, Sequence

from repro.errors import ConfigurationError

#: Schema tag written into (and required of) every JSONL trace file.
TRACE_SCHEMA = "trace/v1"

#: Default flight-recorder capacity (events retained before eviction).
DEFAULT_CAPACITY = 65536

# -- event vocabulary -------------------------------------------------------------

EVT_REQUEST_START = "request_start"
EVT_REQUEST_END = "request_end"
EVT_CACHE_HIT = "cache_hit"
EVT_CACHE_MISS = "cache_miss"
EVT_CLUSTER_FORMED = "cluster_formed"
EVT_CLUSTER_REFORMED = "cluster_reformed"
EVT_BOUNDING_RUN = "bounding_run"
EVT_BOUNDING_RESTART = "bounding_restart"
EVT_RETRY = "retry"
EVT_PEER_SUSPECTED = "peer_suspected"
EVT_EVICTION = "eviction"
EVT_ABORT = "abort"
EVT_CHURN_PATCH = "churn_patch"
EVT_MESSAGE = "message"

#: The closed set of event kinds; :meth:`FlightRecorder.record` rejects
#: anything else so a typo can never produce an unqueryable stream.
EVENT_KINDS = frozenset(
    {
        EVT_REQUEST_START,
        EVT_REQUEST_END,
        EVT_CACHE_HIT,
        EVT_CACHE_MISS,
        EVT_CLUSTER_FORMED,
        EVT_CLUSTER_REFORMED,
        EVT_BOUNDING_RUN,
        EVT_BOUNDING_RESTART,
        EVT_RETRY,
        EVT_PEER_SUSPECTED,
        EVT_EVICTION,
        EVT_ABORT,
        EVT_CHURN_PATCH,
        EVT_MESSAGE,
    }
)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured protocol event, stamped with its trace context."""

    trace_id: Optional[int]
    ts: float  # perf_counter timestamp
    kind: str
    fields: dict = field(default_factory=dict)


class FlightRecorder:
    """A bounded ring of :class:`TraceEvent` entries.

    Overflow evicts the oldest event and counts it in :attr:`dropped`,
    so a truncated stream is detectable instead of silent.
    """

    __slots__ = ("capacity", "dropped", "_events")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"flight recorder capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.dropped = 0
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)

    def record(self, kind: str, /, **fields: object) -> None:
        """Append one event, stamped with the current trace id and time."""
        if kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown flight-recorder event kind {kind!r}"
            )
        events = self._events
        if len(events) == self.capacity:
            self.dropped += 1
        events.append(TraceEvent(_current, perf_counter(), kind, fields))

    def events(self, trace_id: Optional[int] = None) -> list[TraceEvent]:
        """Retained events, oldest first; optionally one trace only."""
        if trace_id is None:
            return list(self._events)
        return [e for e in self._events if e.trace_id == trace_id]

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        """Drop every retained event and reset the dropped counter."""
        self._events.clear()
        self.dropped = 0


# -- module trace-context state ---------------------------------------------------
#
# Single-threaded by design, like the metrics registry: workers should
# carry their own context.  ``_metrics_active`` mirrors the registry's
# enabled switch (toggled by ``registry.enable``/``disable``) so this
# module needs no import of the registry.

_current: Optional[int] = None
_next_trace_id = 0
_recorder: Optional[FlightRecorder] = None
_metrics_active = False


def new_trace_id() -> int:
    """Allocate the next process-unique trace id."""
    global _next_trace_id
    trace_id = _next_trace_id
    _next_trace_id += 1
    return trace_id


def current_trace_id() -> Optional[int]:
    """The trace id of the enclosing request scope, or None."""
    return _current


class _NullScope:
    """The shared disabled-path scope: enters and exits doing nothing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SCOPE = _NullScope()


class _TraceScope:
    """An enabled request scope: binds (or adopts) the current trace id."""

    __slots__ = ("trace_id", "_restore")

    def __enter__(self) -> int:
        global _current
        self._restore = _current
        if _current is None:
            _current = new_trace_id()
        self.trace_id = _current
        return self.trace_id

    def __exit__(self, *exc_info: object) -> None:
        global _current
        _current = self._restore


def request_scope() -> object:
    """A context manager establishing a trace id for one request.

    Nested scopes adopt the enclosing id (the engine's reliable path
    delegating to a session request stays one trace); a top-level scope
    allocates a fresh id.  When no flight recorder is installed and
    metrics are off this returns a shared no-op singleton, keeping the
    disabled path at global loads plus one branch.
    """
    if _recorder is None and not _metrics_active:
        return _NULL_SCOPE
    return _TraceScope()


class _AdoptedScope:
    """A request scope bound to a trace id minted in another process."""

    __slots__ = ("trace_id", "_restore")

    def __init__(self, trace_id: int) -> None:
        self.trace_id = trace_id

    def __enter__(self) -> int:
        global _current, _next_trace_id
        self._restore = _current
        _current = self.trace_id
        # Keep locally minted ids disjoint from adopted ones, so a
        # worker's own top-level scopes can never collide with a trace
        # id the dispatcher stamped onto a wire frame.
        if self.trace_id >= _next_trace_id:
            _next_trace_id = self.trace_id + 1
        return self.trace_id

    def __exit__(self, *exc_info: object) -> None:
        global _current
        _current = self._restore


def adopt_scope(trace_id: Optional[int]) -> object:
    """Bind a trace id that crossed a process boundary.

    The service dispatcher stamps its current trace id onto every wire
    frame; the shard worker wraps the frame's work in this scope so the
    spans, exemplars and flight-recorder events it produces carry the
    *dispatcher's* id — one request, one id, across processes.  With no
    id on the frame this degrades to an ordinary :func:`request_scope`.
    """
    if trace_id is None:
        return request_scope()
    return _AdoptedScope(int(trace_id))


def install_recorder(
    recorder: Optional[FlightRecorder] = None,
) -> FlightRecorder:
    """Install (and return) the process flight recorder.

    Passing a recorder resumes recording into it; omitting one keeps the
    previous recorder if any, else creates a fresh default-capacity one.
    """
    global _recorder
    if recorder is not None:
        _recorder = recorder
    elif _recorder is None:
        _recorder = FlightRecorder()
    return _recorder


def uninstall_recorder() -> Optional[FlightRecorder]:
    """Remove the flight recorder; returns the one that was installed."""
    global _recorder
    recorder, _recorder = _recorder, None
    return recorder


def get_recorder() -> Optional[FlightRecorder]:
    """The installed flight recorder, or None."""
    return _recorder


def record_event(kind: str, /, **fields: object) -> None:
    """Record one event if a recorder is installed (no-op otherwise).

    Hot paths should instead read :func:`get_recorder` once and guard —
    this helper still builds the kwargs dict on the disabled path.
    """
    recorder = _recorder
    if recorder is None:
        return
    recorder.record(kind, **fields)


def reset_trace_context() -> None:
    """Clear the current trace id (test isolation; scopes restore it)."""
    global _current
    _current = None


# -- JSONL export -----------------------------------------------------------------


def export_jsonl(
    path: Path | str,
    recorder: Optional[FlightRecorder] = None,
    include_spans: bool = True,
) -> Path:
    """Write the recorder's events (plus recent spans) as ``trace/v1`` JSONL."""
    recorder = recorder if recorder is not None else _recorder
    if recorder is None:
        raise ConfigurationError(
            "no flight recorder installed and none was passed"
        )
    path = Path(path)
    lines = [
        json.dumps(
            {
                "type": "meta",
                "schema": TRACE_SCHEMA,
                "events": len(recorder),
                "events_dropped": recorder.dropped,
                "capacity": recorder.capacity,
            }
        )
    ]
    if include_spans:
        from repro.obs import spans as _spans  # leaf module: import lazily

        for record in _spans.recent_spans():
            lines.append(
                json.dumps(
                    {
                        "type": "span",
                        "trace_id": record.trace_id,
                        "name": record.name,
                        "depth": record.depth,
                        "start": record.start,
                        "duration": record.duration,
                    }
                )
            )
    for event in recorder.events():
        lines.append(
            json.dumps(
                {
                    "type": "event",
                    "trace_id": event.trace_id,
                    "ts": event.ts,
                    "kind": event.kind,
                    "fields": event.fields,
                }
            )
        )
    path.write_text("\n".join(lines) + "\n")
    return path


def load_jsonl(path: Path | str) -> tuple[dict, list[dict], list[dict]]:
    """Parse a ``trace/v1`` JSONL file into (meta, spans, events)."""
    meta: Optional[dict] = None
    spans: list[dict] = []
    events: list[dict] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        row = json.loads(line)
        kind = row.get("type")
        if kind == "meta":
            meta = row
        elif kind == "span":
            spans.append(row)
        elif kind == "event":
            events.append(row)
        else:
            raise ConfigurationError(
                f"{path}:{lineno}: unknown trace row type {kind!r}"
            )
    if meta is None or meta.get("schema") != TRACE_SCHEMA:
        raise ConfigurationError(
            f"{path}: missing or unsupported trace meta "
            f"(want schema {TRACE_SCHEMA!r})"
        )
    return meta, spans, events


# -- CLI: summary + waterfall -----------------------------------------------------


def _fmt_fields(fields: dict) -> str:
    return " ".join(f"{k}={fields[k]}" for k in sorted(fields))


def summarize_traces(
    spans: Sequence[dict], events: Sequence[dict]
) -> list[dict]:
    """Per-trace rollups (root span, duration, event/message counts, status)."""
    ids: list[int] = []
    seen: set[int] = set()
    for row in list(spans) + list(events):
        trace_id = row["trace_id"]
        if trace_id is not None and trace_id not in seen:
            seen.add(trace_id)
            ids.append(trace_id)
    summaries = []
    for trace_id in ids:
        my_spans = [s for s in spans if s["trace_id"] == trace_id]
        my_events = [e for e in events if e["trace_id"] == trace_id]
        roots = [s for s in my_spans if s["depth"] == 0]
        starts = [s["start"] for s in my_spans] + [e["ts"] for e in my_events]
        ends = [s["start"] + s["duration"] for s in my_spans] + [
            e["ts"] for e in my_events
        ]
        status = "-"
        for event in my_events:
            if event["kind"] == EVT_REQUEST_END:
                status = str(event["fields"].get("status", "ok"))
            elif event["kind"] == EVT_ABORT:
                status = f"abort:{event['fields'].get('reason', '?')}"
        summaries.append(
            {
                "trace_id": trace_id,
                "root": roots[0]["name"] if roots else "(events only)",
                "start": min(starts),
                "duration": max(ends) - min(starts),
                "spans": len(my_spans),
                "events": len(my_events),
                "messages": sum(
                    1 for e in my_events if e["kind"] == EVT_MESSAGE
                ),
                "retries": sum(1 for e in my_events if e["kind"] == EVT_RETRY),
                "status": status,
            }
        )
    summaries.sort(key=lambda s: s["start"])
    return summaries


def render_summary(
    meta: dict,
    spans: Sequence[dict],
    events: Sequence[dict],
    tail: int = 5,
) -> str:
    """The trace-file overview: one line per trace plus the slowest tail."""
    summaries = summarize_traces(spans, events)
    unattributed = sum(1 for e in events if e["trace_id"] is None)
    lines = [
        f"{TRACE_SCHEMA}: {len(summaries)} trace(s), {len(events)} event(s), "
        f"{len(spans)} span record(s), {meta.get('events_dropped', 0)} "
        f"dropped, {unattributed} unattributed"
    ]
    if not summaries:
        return "\n".join(lines)
    header = (
        f"{'trace':>7}  {'root':<24} {'duration':>12}  {'spans':>5} "
        f"{'events':>6} {'msgs':>5} {'retries':>7}  status"
    )
    lines += ["", header, "-" * len(header)]
    for s in summaries:
        lines.append(
            f"#{s['trace_id']:>6}  {s['root']:<24} "
            f"{s['duration'] * 1e3:>9.3f} ms  {s['spans']:>5} "
            f"{s['events']:>6} {s['messages']:>5} {s['retries']:>7}  "
            f"{s['status']}"
        )
    slowest = sorted(summaries, key=lambda s: s["duration"], reverse=True)
    lines += ["", f"slowest {min(tail, len(slowest))} trace(s):"]
    for s in slowest[:tail]:
        lines.append(
            f"  #{s['trace_id']} {s['root']} {s['duration'] * 1e3:.3f} ms "
            f"({s['messages']} msgs, {s['retries']} retries, {s['status']})"
        )
    return "\n".join(lines)


def render_waterfall(
    trace_id: int, spans: Sequence[dict], events: Sequence[dict]
) -> str:
    """One trace as a time-ordered waterfall of spans and events."""
    my_spans = [s for s in spans if s["trace_id"] == trace_id]
    my_events = [e for e in events if e["trace_id"] == trace_id]
    if not my_spans and not my_events:
        return f"trace #{trace_id}: no spans or events retained"
    t0 = min(
        [s["start"] for s in my_spans] + [e["ts"] for e in my_events]
    )
    rows: list[tuple[float, int, str]] = []
    for s in my_spans:
        rows.append(
            (
                s["start"],
                s["depth"],
                f"{'  ' * s['depth']}▸ {s['name']}  "
                f"{s['duration'] * 1e3:.3f} ms",
            )
        )
    for e in my_events:
        rows.append(
            (e["ts"], 99, f"    · {e['kind']}  {_fmt_fields(e['fields'])}")
        )
    rows.sort(key=lambda r: (r[0], r[1]))
    summary = summarize_traces(my_spans, my_events)[0]
    lines = [
        f"trace #{trace_id} — {summary['root']} — "
        f"{summary['duration'] * 1e3:.3f} ms, {summary['events']} event(s), "
        f"{summary['messages']} message(s), status {summary['status']}"
    ]
    for ts, _, label in rows:
        lines.append(f"  +{(ts - t0) * 1e3:9.3f} ms  {label}")
    by_kind: dict[str, int] = {}
    for e in my_events:
        if e["kind"] == EVT_MESSAGE:
            key = str(e["fields"].get("kind", "?"))
            by_kind[key] = by_kind.get(key, 0) + 1
    if by_kind:
        counts = ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
        lines.append(f"  messages by kind: {counts}")
    return "\n".join(lines)


def main(argv: Optional[Iterable[str]] = None) -> int:
    """CLI entry point: ``python -m repro.obs.trace file.jsonl [...]``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trace",
        description="Inspect a trace/v1 JSONL flight-recorder export.",
    )
    parser.add_argument("path", type=Path, help="trace JSONL file")
    parser.add_argument(
        "--trace",
        type=int,
        default=None,
        metavar="ID",
        help="render the waterfall of one trace id",
    )
    parser.add_argument(
        "--slowest",
        action="store_true",
        help="render the waterfall of the slowest trace",
    )
    parser.add_argument(
        "--tail",
        type=int,
        default=5,
        metavar="N",
        help="how many slowest traces the summary lists",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the per-trace summary as JSON instead of text",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    try:
        meta, spans, events = load_jsonl(args.path)
    except (OSError, ValueError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace is not None:
        print(render_waterfall(args.trace, spans, events))
        return 0
    if args.slowest:
        summaries = summarize_traces(spans, events)
        if not summaries:
            print("no traces retained", file=sys.stderr)
            return 2
        slowest = max(summaries, key=lambda s: s["duration"])
        print(render_waterfall(slowest["trace_id"], spans, events))
        return 0
    if args.json:
        print(
            json.dumps(
                {
                    "schema": TRACE_SCHEMA,
                    "meta": meta,
                    "traces": summarize_traces(spans, events),
                },
                indent=2,
            )
        )
        return 0
    print(render_summary(meta, spans, events, tail=args.tail))
    return 0
