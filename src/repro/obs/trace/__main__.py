"""``python -m repro.obs.trace`` — the flight-recorder inspection CLI."""

import os
import sys

if __name__ == "__main__":
    from repro.obs.trace import main

    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: that is a clean exit,
        # but stdout must be detached first or interpreter shutdown
        # re-raises while flushing.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
