"""Lightweight trace spans over the metrics registry.

A span measures one timed section of the request path (``with
obs.span("cloaking.bounding"): ...``).  Every completed span folds its
wall time into the registry's per-name :class:`~repro.obs.registry.SpanStats`
(count / total / min / max / seconds histogram) — that aggregate is what
the report CLI ranks as the "hottest" spans — and is also appended to a
bounded ring of recent :class:`SpanRecord` entries so the last few
requests can be inspected as traces.

Nesting is tracked with a module-level stack: a span opened while
another is active becomes its child (``depth`` > 0) and shares its
``trace_id``; a top-level span starts a new trace.  Trace ids are a
process-local monotonic counter — one cloaking request instrumented with
a top-level ``cloaking.request`` span is one trace.

The simulation is single-threaded, so the stack is a plain list; code
running spans from worker threads should give each thread its own
registry and tracer (see :class:`~repro.obs.registry.MetricsRegistry`).

When observability is disabled, :func:`span` returns a shared no-op
context manager: the disabled path is one global load, one branch, and
an attribute-free ``with`` block.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Deque, Optional

from repro.obs import registry as _registry
from repro.obs import trace as _trace
from repro.obs.names import OBS_SPANS_DROPPED

#: How many completed spans the recent-trace ring retains.
RECENT_SPAN_CAPACITY = 512


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed span, as retained in the recent-trace ring."""

    trace_id: int
    name: str
    depth: int
    start: float  # perf_counter timestamp at entry
    duration: float  # seconds


class _NullSpan:
    """The shared disabled-path span: enters and exits doing nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()

# Module-level tracer state (single-threaded; see module docstring).
# Trace ids come from the shared counter in :mod:`repro.obs.trace`, so
# span records, flight-recorder events, and histogram exemplars all
# correlate on one id space.
_stack: list[tuple[str, int, float]] = []  # (name, trace_id, start)
_recent: Deque[SpanRecord] = deque(maxlen=RECENT_SPAN_CAPACITY)


class _Span:
    """An enabled span: times its block and reports on exit."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> "_Span":
        if _stack:
            trace_id = _stack[-1][1]
        else:
            # Top-level span: adopt the enclosing request scope's trace
            # id so the record correlates with the request's events, or
            # start a trace of its own.  Spans never *bind* the context:
            # only request scopes own ``_trace._current``, so an outer
            # bookkeeping span cannot leak its id into the requests it
            # happens to wrap.
            current = _trace._current
            trace_id = current if current is not None else _trace.new_trace_id()
        _stack.append((self.name, trace_id, perf_counter()))
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = perf_counter()
        name, trace_id, start = _stack.pop()
        depth = len(_stack)
        duration = end - start
        active = _registry._active
        if active is not None:
            # Registry may have been disabled mid-span; drop silently.
            active.span_stats(name).observe(duration)
            if len(_recent) == RECENT_SPAN_CAPACITY:
                active.counter(OBS_SPANS_DROPPED).inc()
        _recent.append(SpanRecord(trace_id, name, depth, start, duration))


def span(name: str) -> object:
    """A context manager timing ``name`` (no-op singleton when disabled).

    The disabled path reads the registry module's active-registry global
    directly — one load, one branch, no allocation.
    """
    if _registry._active is None:
        return _NULL_SPAN
    return _Span(name)


def recent_spans(limit: Optional[int] = None) -> list[SpanRecord]:
    """The most recent completed spans, oldest first."""
    records = list(_recent)
    return records if limit is None else records[-limit:]


def last_trace() -> list[SpanRecord]:
    """Every retained span of the most recent completed trace, oldest first.

    "Most recent" is decided by the last *top-level* span completed; its
    children completed before it, so the whole trace sits contiguously at
    the tail of the ring (modulo capacity eviction).
    """
    records = list(_recent)
    for record in reversed(records):
        if record.depth == 0:
            return [r for r in records if r.trace_id == record.trace_id]
    return []


def reset_traces() -> None:
    """Clear the recent-span ring, span stack, and trace context."""
    _recent.clear()
    _stack.clear()
    _trace.reset_trace_context()
