"""obs — end-to-end observability for the two-phase cloaking pipeline.

One process-local metrics registry (counters, gauges, fixed-bucket
histograms), lightweight trace spans, and exporters (JSON snapshot,
Prometheus text).  Every layer of the request path reports through the
canonical names in :mod:`repro.obs.names`; when observability is
disabled (the default) each instrumentation point costs one global load
and one branch.

Typical use::

    from repro import obs

    obs.enable()
    ...  # run requests
    data = obs.snapshot()          # JSON-ready dict
    print(obs.to_prometheus())     # Prometheus text format
    obs.disable()

Inspect a saved snapshot from the shell::

    python -m repro.obs.report BENCH_wpg.json --top 10
"""

from repro.obs import names
from repro.obs import trace
from repro.obs.export import (
    load_snapshot,
    merge_snapshots,
    prometheus_text,
    snapshot,
    to_prometheus,
    validate_snapshot,
    validate_snapshot_file,
    write_snapshot,
)
from repro.obs.registry import (
    COUNT_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    get_registry,
    inc,
    observe,
    reset,
    set_gauge,
)
from repro.obs.spans import SpanRecord, last_trace, recent_spans, reset_traces, span
from repro.obs.trace import (
    FlightRecorder,
    TraceEvent,
    current_trace_id,
    export_jsonl,
    get_recorder,
    install_recorder,
    request_scope,
    uninstall_recorder,
)

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SECONDS_BUCKETS",
    "SpanRecord",
    "TraceEvent",
    "current_trace_id",
    "disable",
    "enable",
    "enabled",
    "export_jsonl",
    "get_recorder",
    "get_registry",
    "inc",
    "install_recorder",
    "last_trace",
    "load_snapshot",
    "merge_snapshots",
    "names",
    "observe",
    "prometheus_text",
    "recent_spans",
    "request_scope",
    "reset",
    "reset_traces",
    "set_gauge",
    "snapshot",
    "span",
    "to_prometheus",
    "trace",
    "uninstall_recorder",
    "validate_snapshot",
    "validate_snapshot_file",
    "write_snapshot",
]
