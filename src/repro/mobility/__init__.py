"""User mobility: movement models and cloaked-region lifetime analysis."""

from repro.mobility.waypoint import RandomWaypointModel
from repro.mobility.lifetime import RegionLifetimeResult, run_region_lifetime

__all__ = [
    "RandomWaypointModel",
    "RegionLifetimeResult",
    "run_region_lifetime",
]
