"""Cloaked-region lifetime under mobility.

The paper cloaks a static snapshot; its users, however, move.  A cloaked
region formed at time 0 stays *useful* for a member only while it still
contains that member's true position — once the member walks out, a
request with the stale region would return results for the wrong area
(correctness) and, worse, the region no longer hides the member among
its cluster (privacy).

This experiment measures that decay: cloak a workload at t = 0, advance
a random-waypoint population, and track the fraction of (member, region)
pairs still valid over time, plus the k-anonymity surviving in each
region (how many of its cluster's members are still inside).  The decay
rate tells a deployment how often re-cloaking must run for a given speed
profile — the quantitative backdrop to the paper's future-work remarks
on dynamic scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_series
from repro.cloaking.engine import CloakingEngine
from repro.config import SimulationConfig
from repro.datasets.base import PointDataset
from repro.errors import ReproError
from repro.experiments.workloads import sample_hosts
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.graph.build import build_wpg_fast
from repro.mobility.waypoint import RandomWaypointModel


@dataclass(frozen=True, slots=True)
class RegionLifetimeResult:
    """Validity decay of cloaked regions over simulated time."""

    times: tuple[float, ...]
    member_coverage: tuple[float, ...]  # fraction of members still inside
    regions_fully_valid: tuple[float, ...]  # fraction of regions intact
    anonymity_preserved: tuple[float, ...]  # fraction of regions with >= k inside
    regions_invalidated: tuple[int, ...] = ()  # cumulative cache invalidations

    def format(self) -> str:
        """Render the result as the benchmark-report text."""
        series = {
            "members still covered": list(self.member_coverage),
            "regions fully valid": list(self.regions_fully_valid),
            "regions still k-anonymous": list(self.anonymity_preserved),
        }
        if self.regions_invalidated:
            series["regions invalidated"] = [
                float(count) for count in self.regions_invalidated
            ]
        return format_series(
            "time",
            list(self.times),
            series,
            title="Cloaked-region lifetime under random-waypoint mobility",
        )


def run_region_lifetime(
    dataset: PointDataset,
    config: SimulationConfig,
    requests: int = 100,
    steps: int = 10,
    dt: float = 1.0,
    max_speed: float = 0.01,
    seed: int = 37,
) -> RegionLifetimeResult:
    """Cloak at t = 0, then watch the regions go stale as users move.

    The engine's world is kept current through
    :meth:`~repro.cloaking.engine.CloakingEngine.apply_moves`: each tick
    feeds the walkers that actually moved into the churn runtime, which
    patches the grid and WPG incrementally (bit-identical to a rebuild)
    and drops the cached region of every cluster with a moved member.
    The *reported* series keep their original semantics — a region counts
    as invalidated only once a member has actually walked out of it, not
    merely moved inside it — so the numbers are directly comparable with
    the historical rebuild-per-tick runs.
    """
    graph = build_wpg_fast(dataset, config.delta, config.max_peers)
    engine = CloakingEngine(dataset, graph, config, policy="optimal")
    hosts = sample_hosts(graph, config.k, requests, seed=seed)

    regions: list[tuple[Rect, list[int]]] = []
    seen: set[frozenset[int]] = set()
    for host in hosts:
        try:
            result = engine.request(host)
        except ReproError:
            continue
        members = result.cluster.members
        if members in seen:
            continue
        seen.add(members)
        regions.append((result.region.rect, sorted(members)))

    model = RandomWaypointModel(
        dataset,
        min_speed=max_speed / 10.0,
        max_speed=max_speed,
        seed=seed,
    )
    times: list[float] = [0.0]
    coverage: list[float] = [1.0]
    fully_valid: list[float] = [1.0]
    anonymous: list[float] = [1.0]
    invalidated: list[int] = [0]
    dropped = 0
    stale: set[frozenset[int]] = set()
    previous = model.snapshot().as_array()
    for _step in range(steps):
        snapshot = model.step(dt)
        current = snapshot.as_array()
        moved = np.flatnonzero(np.any(current != previous, axis=1))
        engine.apply_moves(
            [(int(i), Point(current[i, 0], current[i, 1])) for i in moved]
        )
        previous = current
        inside_total = 0
        member_total = 0
        intact = 0
        still_anonymous = 0
        for rect, members in regions:
            inside = sum(1 for m in members if rect.contains(snapshot[m]))
            inside_total += inside
            member_total += len(members)
            if inside == len(members):
                intact += 1
            else:
                # A member walked out: the region is stale.  The engine
                # cache already dropped it (apply_moves invalidates on
                # any member movement); the reported count keeps the
                # historical first-walk-out semantics.
                key = frozenset(members)
                if key not in stale:
                    stale.add(key)
                    dropped += 1
            if inside >= config.k:
                still_anonymous += 1
        times.append(model.time)
        coverage.append(inside_total / member_total if member_total else 1.0)
        fully_valid.append(intact / len(regions) if regions else 1.0)
        anonymous.append(still_anonymous / len(regions) if regions else 1.0)
        invalidated.append(dropped)
    return RegionLifetimeResult(
        times=tuple(times),
        member_coverage=tuple(coverage),
        regions_fully_valid=tuple(fully_valid),
        anonymity_preserved=tuple(anonymous),
        regions_invalidated=tuple(invalidated),
    )


def run_region_lifetime_default(
    users: int = 8000, requests: int = 100, seed: int = 37,
    setup_config: Optional[SimulationConfig] = None,
    speeds: Sequence[float] = (),
) -> RegionLifetimeResult:
    """Convenience wrapper building a scaled paper-default world."""
    from repro.datasets.california import california_like_poi

    config = setup_config if setup_config is not None else SimulationConfig(
        user_count=users,
        delta=2e-3 * (104_770 / users) ** 0.5,
    )
    dataset = california_like_poi(users, seed=seed)
    return run_region_lifetime(dataset, config, requests=requests, seed=seed)


if __name__ == "__main__":
    print(run_region_lifetime_default().format())
