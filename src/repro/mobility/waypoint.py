"""The random-waypoint mobility model.

The standard mobile-computing benchmark model: each user repeatedly
picks a uniform destination in the unit square and a speed from
``[min_speed, max_speed]``, walks there in a straight line, optionally
pauses, and repeats.  The model advances a whole population in lockstep
and emits immutable :class:`~repro.datasets.base.PointDataset` snapshots
— everything downstream (WPG construction, cloaking) consumes snapshots
unchanged, exactly as the paper treats each instant as a static
population.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import PointDataset
from repro.errors import ConfigurationError


class RandomWaypointModel:
    """Advances a population of random-waypoint walkers.

    Parameters
    ----------
    initial:
        Starting positions (also fixes the population size).
    min_speed / max_speed:
        Speed range in unit-square lengths per time unit.  The classic
        pitfall of a zero minimum speed (walkers stuck forever) is
        rejected.
    pause_time:
        Time units a walker rests after reaching its waypoint.
    seed:
        RNG seed; trajectories replay exactly.
    """

    def __init__(
        self,
        initial: PointDataset,
        min_speed: float = 0.01,
        max_speed: float = 0.05,
        pause_time: float = 0.0,
        seed: int = 0,
    ) -> None:
        if min_speed <= 0:
            raise ConfigurationError(
                f"min_speed must be positive, got {min_speed}"
            )
        if max_speed < min_speed:
            raise ConfigurationError(
                f"max_speed ({max_speed}) below min_speed ({min_speed})"
            )
        if pause_time < 0:
            raise ConfigurationError(
                f"pause_time must be non-negative, got {pause_time}"
            )
        self._rng = np.random.default_rng(seed)
        self._positions = initial.as_array()
        count = len(initial)
        self._targets = self._rng.random((count, 2))
        self._speeds = self._rng.uniform(min_speed, max_speed, count)
        self._pauses = np.zeros(count)
        self._min_speed = min_speed
        self._max_speed = max_speed
        self._pause_time = pause_time
        self._time = 0.0

    @property
    def time(self) -> float:
        """Simulation time advanced so far."""
        return self._time

    def __len__(self) -> int:
        return len(self._positions)

    def step(self, dt: float = 1.0) -> PointDataset:
        """Advance every walker by ``dt`` and return the new snapshot."""
        if dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        pos = self._positions
        deltas = self._targets - pos
        distances = np.sqrt((deltas**2).sum(axis=1))
        travel = self._speeds * dt

        paused = self._pauses > 0
        self._pauses[paused] = np.maximum(self._pauses[paused] - dt, 0.0)

        moving = ~paused
        arriving = moving & (travel >= distances)
        walking = moving & ~arriving

        # Walkers en route advance along their bearing.
        if walking.any():
            unit = deltas[walking] / distances[walking, None]
            pos[walking] += unit * travel[walking, None]
        # Arrivals land exactly on the waypoint, then pause and re-plan.
        if arriving.any():
            pos[arriving] = self._targets[arriving]
            count = int(arriving.sum())
            self._targets[arriving] = self._rng.random((count, 2))
            self._speeds[arriving] = self._rng.uniform(
                self._min_speed, self._max_speed, count
            )
            self._pauses[arriving] = self._pause_time

        self._time += dt
        return self.snapshot()

    def step_subset(
        self, ids: np.ndarray, dt: float = 1.0
    ) -> list[tuple[int, "Point"]]:
        """Advance only the walkers ``ids`` by ``dt``; others stay put.

        The churn-workload primitive: a tick in which a sampled fraction
        of the population moves while the rest idles.  Returns the
        ``(id, new position)`` pairs of walkers that actually changed
        position (paused walkers burn pause time but emit no move) — the
        exact batch :meth:`~repro.cloaking.engine.CloakingEngine.apply_moves`
        consumes.  ``ids`` must be distinct.  Advances :attr:`time` by
        ``dt``.
        """
        from repro.geometry.point import Point

        if dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        ids = np.asarray(ids, dtype=np.int64)
        if len(np.unique(ids)) != len(ids):
            raise ConfigurationError("step_subset ids must be distinct")
        pos = self._positions
        deltas = self._targets[ids] - pos[ids]
        distances = np.sqrt((deltas**2).sum(axis=1))
        travel = self._speeds[ids] * dt

        paused = self._pauses[ids] > 0
        rows = ids[paused]
        self._pauses[rows] = np.maximum(self._pauses[rows] - dt, 0.0)

        moving = ~paused
        arriving = moving & (travel >= distances)
        walking = moving & ~arriving

        if walking.any():
            rows = ids[walking]
            unit = deltas[walking] / distances[walking, None]
            pos[rows] += unit * travel[walking, None]
        if arriving.any():
            rows = ids[arriving]
            pos[rows] = self._targets[rows]
            count = len(rows)
            self._targets[rows] = self._rng.random((count, 2))
            self._speeds[rows] = self._rng.uniform(
                self._min_speed, self._max_speed, count
            )
            self._pauses[rows] = self._pause_time

        self._time += dt
        changed = ids[walking | arriving]
        return [
            (int(i), Point(float(pos[i, 0]), float(pos[i, 1]))) for i in changed
        ]

    def snapshot(self) -> PointDataset:
        """The current positions as an immutable dataset."""
        from repro.geometry.point import Point

        return PointDataset(
            [Point(float(x), float(y)) for x, y in self._positions],
            name=f"waypoint-t{self._time:g}",
        )
