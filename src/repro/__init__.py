"""repro — Non-Exposure Location Anonymity (Hu & Xu, ICDE 2009).

Location cloaking without exposing accurate user locations: proximity
minimum k-clustering over a weighted proximity graph plus a secure
progressive bounding protocol.

Quickstart::

    from repro import (
        SimulationConfig, california_like_poi, build_wpg, CloakingEngine,
    )

    config = SimulationConfig(user_count=5000)
    users = california_like_poi(5000)
    graph = build_wpg(users, config.delta, config.max_peers)
    engine = CloakingEngine(users, graph, config)
    result = engine.request(host=42)
    assert result.region.satisfies(config.k)
"""

from repro.config import DEFAULTS, SimulationConfig
from repro.errors import (
    BoundingError,
    ClusteringError,
    ConfigurationError,
    DatasetError,
    GraphError,
    ProtocolError,
    ReproError,
)
from repro.geometry import Point, Rect
from repro.datasets import (
    PointDataset,
    california_like_poi,
    gaussian_clusters,
    load_csv,
    save_csv,
    uniform_points,
)
from repro.graph import WeightedProximityGraph, build_wpg, build_wpg_fast
from repro.clustering import (
    ClusterRegistry,
    ClusterResult,
    DistributedClustering,
    KNNClustering,
    centralized_k_clustering,
)
from repro.bounding import (
    ExponentialPolicy,
    LinearPolicy,
    SecurePolicy,
    paper_policy,
    progressive_upper_bound,
    secure_bounding_box,
)
from repro.cloaking import CentralizedAnonymizer, CloakedRegion, CloakingEngine
from repro.server import POIDatabase

__version__ = "1.0.0"

__all__ = [
    "DEFAULTS",
    "BoundingError",
    "CentralizedAnonymizer",
    "CloakedRegion",
    "CloakingEngine",
    "ClusterRegistry",
    "ClusterResult",
    "ClusteringError",
    "ConfigurationError",
    "DatasetError",
    "DistributedClustering",
    "ExponentialPolicy",
    "GraphError",
    "KNNClustering",
    "LinearPolicy",
    "POIDatabase",
    "Point",
    "PointDataset",
    "ProtocolError",
    "Rect",
    "ReproError",
    "SecurePolicy",
    "SimulationConfig",
    "WeightedProximityGraph",
    "build_wpg",
    "build_wpg_fast",
    "california_like_poi",
    "centralized_k_clustering",
    "gaussian_clusters",
    "load_csv",
    "paper_policy",
    "progressive_upper_bound",
    "save_csv",
    "secure_bounding_box",
    "uniform_points",
]
