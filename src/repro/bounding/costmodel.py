"""Communication cost model for secure bounding (Section V).

Two cost components drive the increment optimisation:

* ``Cb`` — one bound-verification round trip per still-disagreeing user
  per iteration (a constant, Table I: 1);
* ``R(x)`` — the cost of the *service request* issued with the final
  bound, growing with the bound.  The paper uses two shapes:
  ``R(x) = Cr * x^2`` when the request cost is proportional to the area
  of the cloaked region (range query; Examples 5.1/5.3) and
  ``R(x) = Cr * x`` when proportional to its length (Examples 5.2/5.4).
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import ConfigurationError


class RequestCost(Protocol):
    """The R(x) family: request cost and its derivative at bound ``x``."""

    def cost(self, x: float) -> float:
        """The request cost at bound ``x``."""
        ...

    def derivative(self, x: float) -> float:
        """d/dx of the request cost at ``x``."""
        ...


class AreaRequestCost:
    """R(x) = Cr * x^2 — request cost proportional to region area."""

    def __init__(self, cr: float) -> None:
        if cr <= 0:
            raise ConfigurationError(f"cr must be positive, got {cr}")
        self.cr = cr

    def cost(self, x: float) -> float:
        """The request cost at bound ``x``."""
        return self.cr * x * x

    def derivative(self, x: float) -> float:
        """d/dx of the request cost at ``x``."""
        return 2.0 * self.cr * x


class LengthRequestCost:
    """R(x) = Cr * x — request cost proportional to region length."""

    def __init__(self, cr: float) -> None:
        if cr <= 0:
            raise ConfigurationError(f"cr must be positive, got {cr}")
        self.cr = cr

    def cost(self, x: float) -> float:
        """The request cost at bound ``x``."""
        return self.cr * x

    def derivative(self, x: float) -> float:
        """d/dx of the request cost at ``x``."""
        return self.cr
