"""The progressive bounding protocol (paper Algorithms 3 and 4).

One scalar direction at a time: starting from a value every member's
private xi is known to exceed, propose a bound, let every still
-disagreeing user verify it (one Cb round trip each), enlarge by the
policy's increment, repeat until nobody disagrees.  No user ever reveals
xi; the host only learns, per user, the interval between the last
disagreed and the first agreed bound — the quantity the privacy-loss
extension measures.

Users follow the semi-honest model: they answer verifications truthfully
and do not abort, but may record everything they see.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro import obs
from repro.errors import BoundingError, ConfigurationError
from repro.bounding.policies import IncrementPolicy
from repro.obs import names as metric
from repro.obs import trace as _trace


@dataclass(frozen=True, slots=True)
class BoundingOutcome:
    """Result of one progressive bounding run (one direction).

    ``messages`` counts verification round trips (one per disagreeing
    user per iteration), i.e. the bounding cost in units of Cb.
    ``agreement_intervals`` maps each participant index to the
    ``(last_disagreed, first_agreed)`` bounds between which its xi is now
    known to lie — the protocol's information leak.  ``agreement_rounds``
    maps each participant to the iteration in which it agreed (0 for
    members the starting bound already covered); the latency estimators
    reconstruct per-round participation from it.  A call site that omits
    it gets the conservative reading — everyone agreed in the last round.
    """

    bound: float
    start: float
    iterations: int
    messages: int
    agreement_intervals: dict[int, tuple[float, float]]
    agreement_rounds: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.agreement_rounds and self.agreement_intervals:
            # Omitted by the call site: assume everyone agreed in the
            # last round (the loosest latency reading).
            object.__setattr__(
                self,
                "agreement_rounds",
                {index: self.iterations for index in self.agreement_intervals},
            )

    @property
    def exposed_users(self) -> int:
        """Participants pinned to a *finite* agreement interval.

        The protocol's information leak, counted: a user that verified at
        least one bound has its xi confined to ``(last_disagreed,
        first_agreed]``; users the starting bound already covered leak
        nothing (their interval is ``(-inf, start]``).
        """
        return sum(
            1
            for low, _high in self.agreement_intervals.values()
            if math.isfinite(low)
        )

    @property
    def extent(self) -> float:
        """How far the final bound travelled from the start."""
        return self.bound - self.start

    def overshoot(self, values: Sequence[float]) -> float:
        """Slack between the final bound and the true maximum."""
        return self.bound - max(values)


#: A transcript tap: called once per yes/no answer the host observes, as
#: ``recorder(participant_index, hypothesised_bound, agreed)``.  The
#: initial screening at ``start`` is reported too (it costs no message,
#: but it is information the host holds — the auditor must see it).
AnswerRecorder = Callable[[int, float, bool], None]


def progressive_upper_bound(
    values: Sequence[float],
    start: float,
    policy: IncrementPolicy,
    max_iterations: int = 1_000_000,
    recorder: Optional[AnswerRecorder] = None,
) -> BoundingOutcome:
    """Run Algorithm 4 to an upper bound of ``values``.

    ``start`` must not exceed any value's known floor... more precisely,
    the protocol begins at ``start`` (Algorithm 4 uses the minimum of the
    xi domain; the cloaking engine uses the host's own coordinate) and
    every user whose value is <= start agrees immediately at zero cost,
    exactly as in the paper where the first hypothesis already covers
    them.

    Lower bounds are the same protocol on negated values.

    ``recorder``, when given, receives every yes/no answer the host
    learns — including the zero-cost initial screening — so an external
    auditor can recompute the agreement intervals from the transcript
    alone (:mod:`repro.verify.transcript`).
    """
    if not values:
        raise ConfigurationError("cannot bound an empty value set")
    bound = start
    disagreeing = {i: v for i, v in enumerate(values) if v > bound}
    intervals: dict[int, tuple[float, float]] = {
        i: (float("-inf"), start) for i, v in enumerate(values) if v <= bound
    }
    rounds: dict[int, int] = {i: 0 for i in intervals}
    if recorder is not None:
        for i, v in enumerate(values):
            recorder(i, start, v <= start)
    iterations = 0
    messages = 0
    while disagreeing:
        if iterations >= max_iterations:
            raise BoundingError(
                f"no convergence after {max_iterations} iterations "
                f"(policy {getattr(policy, 'name', policy)!r})"
            )
        previous = bound
        step = policy.increment(len(disagreeing), bound - start)
        if step <= 0.0:
            raise BoundingError(
                f"policy {getattr(policy, 'name', policy)!r} proposed a "
                f"non-positive increment {step}"
            )
        bound = previous + step
        iterations += 1
        # Every still-disagreeing user verifies the new bound: Cb each.
        messages += len(disagreeing)
        if recorder is not None:
            for index, value in disagreeing.items():
                recorder(index, bound, value <= bound)
        for index in [i for i, v in disagreeing.items() if v <= bound]:
            intervals[index] = (previous, bound)
            rounds[index] = iterations
            del disagreeing[index]
    outcome = BoundingOutcome(
        bound=bound,
        start=start,
        iterations=iterations,
        messages=messages,
        agreement_intervals=intervals,
        agreement_rounds=rounds,
    )
    if obs.enabled():
        _record_run(outcome)
    flight = _trace._recorder
    if flight is not None:
        flight.record(
            _trace.EVT_BOUNDING_RUN, iterations=outcome.iterations,
            messages=outcome.messages, exposed=outcome.exposed_users,
        )
    return outcome


def _record_run(outcome: BoundingOutcome) -> None:
    """Fold one finished run into the registry (aggregates, not per-loop).

    ``bounding.verifications`` is the canonical Cb counter — the
    message-level p2p layer reports its round trips through the same
    name, so the two accountings stay directly comparable
    (see ``tests/test_obs.py``).
    """
    obs.inc(metric.BOUNDING_RUNS)
    obs.inc(metric.BOUNDING_ITERATIONS, outcome.iterations)
    obs.inc(metric.BOUNDING_VERIFICATIONS, outcome.messages)
    obs.inc(metric.BOUNDING_EXPOSED_USERS, outcome.exposed_users)
    obs.observe(
        metric.BOUNDING_ITERATIONS_PER_RUN,
        outcome.iterations,
        bounds=obs.COUNT_BUCKETS,
    )


def optimal_bound(values: Sequence[float]) -> float:
    """The OPT baseline: the exact maximum.

    Not a secure protocol — every user must expose its value — but the
    benchmark the paper compares the progressive policies against.
    """
    if not values:
        raise ConfigurationError("cannot bound an empty value set")
    return max(values)
