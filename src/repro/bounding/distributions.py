"""Increment distributions for the bounding cost model (Section V-A).

The protocol reasons about the overshoot ``x = xi - X0`` of a user who
disagreed with the last bound X0.  The paper works the optimisation
through two concrete distributions:

* Example 5.1/5.3 — ``x`` uniform on (0, U);
* Example 5.2/5.4 — ``x`` negative-exponential.

Each distribution here exposes the density ``p``, the CDF ``P``, and the
closed-form (or Newton-solved) optimal bounds the paper derives for it.
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.errors import ConfigurationError


class IncrementDistribution(Protocol):
    """The (p, P) pair the cost model integrates over."""

    def pdf(self, x: float) -> float:
        """Density at overshoot ``x``."""
        ...

    def cdf(self, x: float) -> float:
        """Probability the overshoot is at most ``x``."""
        ...

    @property
    def scale(self) -> float:
        """A characteristic length of the distribution (U, or 1/lambda)."""
        ...


class UniformIncrement:
    """Overshoot uniform on (0, U): p(x) = 1/U, P(x) = x/U (Example 5.1)."""

    def __init__(self, upper: float) -> None:
        if upper <= 0:
            raise ConfigurationError(f"upper must be positive, got {upper}")
        self._upper = upper

    @property
    def upper(self) -> float:
        """The support bound U."""
        return self._upper

    @property
    def scale(self) -> float:
        """The characteristic length of the distribution."""
        return self._upper

    def pdf(self, x: float) -> float:
        """Density at overshoot ``x``."""
        return 1.0 / self._upper if 0.0 <= x <= self._upper else 0.0

    def cdf(self, x: float) -> float:
        """Probability the overshoot is at most ``x``."""
        if x <= 0.0:
            return 0.0
        if x >= self._upper:
            return 1.0
        return x / self._upper


class ExponentialIncrement:
    """Overshoot exponential with rate lambda (Example 5.2).

    The paper writes the density as ``e^{-lambda x} / lambda``; the
    standard normalised form is ``lambda e^{-lambda x}``, which we use
    (the paper's expression is a typo — it does not integrate to 1 unless
    lambda = 1, and the paper's own CDF ``1 - e^{-lambda x}/lambda`` is
    likewise only a CDF at lambda = 1).
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        self._rate = rate

    @property
    def rate(self) -> float:
        """The exponential rate lambda."""
        return self._rate

    @property
    def scale(self) -> float:
        """The characteristic length of the distribution."""
        return 1.0 / self._rate

    def pdf(self, x: float) -> float:
        """Density at overshoot ``x``."""
        if x < 0.0:
            return 0.0
        return self._rate * math.exp(-self._rate * x)

    def cdf(self, x: float) -> float:
        """Probability the overshoot is at most ``x``."""
        if x <= 0.0:
            return 0.0
        return 1.0 - math.exp(-self._rate * x)
