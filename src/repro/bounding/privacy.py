"""Privacy-loss analysis for progressive bounding (paper Section VII).

The paper's future-work observation: a user who disagrees with X and
agrees with X' reveals that its xi lies in (X, X'] — the smaller the
increment, the narrower this interval and the larger the leak.  This
module makes that loss measurable and provides a bounding policy with a
privacy floor: no increment is ever smaller than a chosen epsilon, so no
user's value is ever pinned tighter than epsilon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.bounding.policies import IncrementPolicy
from repro.bounding.protocol import BoundingOutcome


@dataclass(frozen=True, slots=True)
class PrivacyLoss:
    """Summary of a bounding run's information leak.

    ``min_width``/``mean_width`` describe the agreement intervals of the
    users who actually verified (users covered by the starting bound leak
    nothing and are excluded).  ``worst_bits`` expresses the worst leak in
    bits relative to ``domain``: ``log2(domain / min_width)``.
    """

    users_measured: int
    min_width: float
    mean_width: float
    worst_bits: float


def privacy_loss_intervals(outcome: BoundingOutcome) -> list[float]:
    """The finite agreement-interval widths of one bounding run."""
    widths: list[float] = []
    for low, high in outcome.agreement_intervals.values():
        if math.isfinite(low):
            widths.append(high - low)
    return widths


def privacy_loss_metric(
    outcomes: Sequence[BoundingOutcome], domain: float = 1.0
) -> PrivacyLoss:
    """Aggregate privacy loss over one or more bounding runs."""
    if domain <= 0:
        raise ConfigurationError(f"domain must be positive, got {domain}")
    widths: list[float] = []
    for outcome in outcomes:
        widths.extend(privacy_loss_intervals(outcome))
    if not widths:
        return PrivacyLoss(0, math.inf, math.inf, 0.0)
    min_width = min(widths)
    return PrivacyLoss(
        users_measured=len(widths),
        min_width=min_width,
        mean_width=sum(widths) / len(widths),
        worst_bits=math.log2(domain / min_width) if min_width > 0 else math.inf,
    )


class PrivacyFloorPolicy:
    """Wrap any policy so increments never drop below ``floor``.

    Guarantees every agreement interval is at least ``floor`` wide, at
    the price of looser bounds (quantified by the privacy-tradeoff
    benchmark).
    """

    def __init__(self, inner: IncrementPolicy, floor: float) -> None:
        if floor <= 0:
            raise ConfigurationError(f"floor must be positive, got {floor}")
        self._inner = inner
        self._floor = floor
        self.name = f"{getattr(inner, 'name', 'policy')}+floor"

    @property
    def floor(self) -> float:
        """The minimum increment this wrapper guarantees."""
        return self._floor

    def increment(self, disagreeing: int, extent: float) -> float:
        """The next bound increment for this iteration."""
        return max(self._inner.increment(disagreeing, extent), self._floor)
