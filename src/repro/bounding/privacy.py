"""Privacy-loss analysis for progressive bounding (paper Section VII).

The paper's future-work observation: a user who disagrees with X and
agrees with X' reveals that its xi lies in (X, X'] — the smaller the
increment, the narrower this interval and the larger the leak.  This
module makes that loss measurable and provides a bounding policy with a
privacy floor: no increment is ever smaller than a chosen epsilon, so no
user's value is ever pinned tighter than epsilon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.bounding.policies import IncrementPolicy
from repro.bounding.protocol import BoundingOutcome


@dataclass(frozen=True, slots=True)
class PrivacyLoss:
    """Summary of a bounding run's information leak.

    ``min_width``/``mean_width`` describe the agreement intervals of the
    users who actually verified (users covered by the starting bound leak
    nothing and are excluded).  ``worst_bits`` expresses the worst leak in
    bits relative to ``domain``: ``log2(domain / min_width)``.

    **Empty-run sentinel contract.**  A run in which *no* user was pinned
    to a finite interval (everyone was covered by the starting bound, or
    there were no runs at all) reports the canonical sentinel
    :meth:`empty`: ``users_measured=0``, ``min_width=mean_width=inf`` and
    ``worst_bits=0.0``.  The widths are ``inf`` because that is the
    identity of min-aggregation — folding an empty loss into a sweep can
    never shrink a real minimum; ``worst_bits`` is ``0.0`` (not the
    algebraic ``log2(domain/inf) = -inf``) because "nothing leaked" must
    be the identity of max-aggregation and must not poison sums or plots
    downstream.  Check :attr:`is_empty` instead of comparing floats.
    """

    users_measured: int
    min_width: float
    mean_width: float
    worst_bits: float

    def __post_init__(self) -> None:
        if self.users_measured < 0:
            raise ConfigurationError(
                f"users_measured must be >= 0, got {self.users_measured}"
            )
        if self.users_measured == 0 and (
            not math.isinf(self.min_width)
            or not math.isinf(self.mean_width)
            or self.worst_bits != 0.0
        ):
            raise ConfigurationError(
                "an empty PrivacyLoss must use the canonical sentinel "
                "(min_width=mean_width=inf, worst_bits=0.0); "
                "use PrivacyLoss.empty()"
            )

    @classmethod
    def empty(cls) -> "PrivacyLoss":
        """The canonical no-users-measured sentinel (see class docs)."""
        return cls(0, math.inf, math.inf, 0.0)

    @property
    def is_empty(self) -> bool:
        """True when no user was pinned to a finite interval."""
        return self.users_measured == 0


def privacy_loss_intervals(outcome: BoundingOutcome) -> list[float]:
    """The finite agreement-interval widths of one bounding run."""
    widths: list[float] = []
    for low, high in outcome.agreement_intervals.values():
        if math.isfinite(low):
            widths.append(high - low)
    return widths


def privacy_loss_metric(
    outcomes: Sequence[BoundingOutcome], domain: float = 1.0
) -> PrivacyLoss:
    """Aggregate privacy loss over one or more bounding runs."""
    if domain <= 0:
        raise ConfigurationError(f"domain must be positive, got {domain}")
    widths: list[float] = []
    for outcome in outcomes:
        widths.extend(privacy_loss_intervals(outcome))
    if not widths:
        return PrivacyLoss.empty()
    min_width = min(widths)
    return PrivacyLoss(
        users_measured=len(widths),
        min_width=min_width,
        mean_width=sum(widths) / len(widths),
        worst_bits=math.log2(domain / min_width) if min_width > 0 else math.inf,
    )


class PrivacyFloorPolicy:
    """Wrap any policy so increments never drop below ``floor``.

    Guarantees every agreement interval is at least ``floor`` wide, at
    the price of looser bounds (quantified by the privacy-tradeoff
    benchmark).
    """

    def __init__(self, inner: IncrementPolicy, floor: float) -> None:
        if floor <= 0:
            raise ConfigurationError(f"floor must be positive, got {floor}")
        self._inner = inner
        self._floor = floor
        self.name = f"{getattr(inner, 'name', 'policy')}+floor"

    @property
    def floor(self) -> float:
        """The minimum increment this wrapper guarantees."""
        return self._floor

    def increment(self, disagreeing: int, extent: float) -> float:
        """The next bound increment for this iteration."""
        return max(self._inner.increment(disagreeing, extent), self._floor)
