"""2-D secure bounding: a cloaked rectangle from four 1-D protocol runs.

The cloaked region is the bounding box of the cluster (Section III); a
box is four directional scalar bounds (x max, -x min, y max, -y min), and
each is obtained with the progressive protocol of
:mod:`repro.bounding.protocol`.  Every run starts at the host's own
coordinate: the host is a cluster member, so its coordinate is a valid
starting floor in each direction, and it reveals nothing (the host's
membership is public anyway; its exact position remains hidden among the
k members' because the final box extends beyond it in all directions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.bounding.policies import IncrementPolicy
from repro.bounding.protocol import BoundingOutcome, progressive_upper_bound


@dataclass(frozen=True, slots=True)
class BoxBoundingResult:
    """A cloaked rectangle plus the cost of obtaining it.

    ``messages``/``iterations`` aggregate the four directional runs;
    ``directions`` keeps the per-direction outcomes for analysis (keys:
    ``x_max``, ``x_min``, ``y_max``, ``y_min``).
    """

    region: Rect
    messages: int
    iterations: int
    directions: dict[str, BoundingOutcome]


#: A policy factory: one fresh policy per direction (policies may carry
#: per-run state such as an exact-DP cache).
PolicyFactory = Callable[[], IncrementPolicy]

#: A 2-D transcript tap: ``recorder(direction, member_index, bound,
#: agreed)`` with ``direction`` one of ``x_max``/``x_min``/``y_max``/
#: ``y_min``.  Bounds are reported in the direction's *signed* domain
#: (``x_min`` bounds ``-x``), matching the wire-level protocol payloads.
BoxAnswerRecorder = Callable[[str, int, float, bool], None]


def secure_bounding_box(
    members: Sequence[Point],
    host_index: int,
    policy_factory: PolicyFactory,
    clip_to: Rect | None = None,
    recorder: BoxAnswerRecorder | None = None,
) -> BoxBoundingResult:
    """Cloak ``members`` into a rectangle via four progressive runs.

    Parameters
    ----------
    members:
        Positions of the cluster's members (the engine passes them; in a
        deployment each stays on its owner's device and only answers the
        verification queries).
    host_index:
        Index of the host within ``members``; its coordinate seeds each
        directional run.
    policy_factory:
        Builds the increment policy; called once per direction.
    clip_to:
        Optional region to clip the final box to (the unit square in the
        experiments — bounds beyond the map edge carry no information).
    recorder:
        Optional transcript tap receiving every yes/no answer of all four
        directional runs (see :data:`BoxAnswerRecorder`).
    """
    if not 0 <= host_index < len(members):
        raise ConfigurationError(
            f"host_index {host_index} out of range for {len(members)} members"
        )
    host = members[host_index]

    def _tap(direction: str) -> "Callable[[int, float, bool], None] | None":
        if recorder is None:
            return None
        return lambda index, bound, agreed: recorder(direction, index, bound, agreed)

    runs = {
        "x_max": progressive_upper_bound(
            [p.x for p in members], host.x, policy_factory(),
            recorder=_tap("x_max"),
        ),
        "x_min": progressive_upper_bound(
            [-p.x for p in members], -host.x, policy_factory(),
            recorder=_tap("x_min"),
        ),
        "y_max": progressive_upper_bound(
            [p.y for p in members], host.y, policy_factory(),
            recorder=_tap("y_max"),
        ),
        "y_min": progressive_upper_bound(
            [-p.y for p in members], -host.y, policy_factory(),
            recorder=_tap("y_min"),
        ),
    }
    region = Rect(
        -runs["x_min"].bound,
        runs["x_max"].bound,
        -runs["y_min"].bound,
        runs["y_max"].bound,
    )
    if clip_to is not None:
        region = region.clipped_to(clip_to)
    return BoxBoundingResult(
        region=region,
        messages=sum(run.messages for run in runs.values()),
        iterations=sum(run.iterations for run in runs.values()),
        directions=runs,
    )


def optimal_bounding_box(members: Sequence[Point]) -> Rect:
    """The OPT baseline: the exact bounding box (locations exposed)."""
    return Rect.from_points(members)
