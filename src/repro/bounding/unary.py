"""Optimal unary bounding (Section V-A, Equations 1-2).

One user still disagrees with bound X0.  Proposing X = X0 + x costs one
verification round trip Cb, the eventual request cost R(x), and — with
probability 1 - P(x) that x fails to bound the user — the whole optimal
cost C* again.  At the optimum C(x) = C*, which combines with the
first-order condition into the paper's Equation 2:

    P(x) R'(x) = (Cb + R(x)) p(x)

This module solves Equation 2 in closed form for the paper's two worked
examples and numerically (bisection on the monotone residual) for any
other (distribution, cost) pair, and derives the optimal cost

    C* = (Cb + R(x*)) / P(x*)
"""

from __future__ import annotations

import math

from repro.errors import BoundingError, ConfigurationError
from repro.bounding.costmodel import AreaRequestCost, LengthRequestCost, RequestCost
from repro.bounding.distributions import (
    ExponentialIncrement,
    IncrementDistribution,
    UniformIncrement,
)


def unary_optimal_bound(
    distribution: IncrementDistribution,
    request_cost: RequestCost,
    cb: float,
) -> float:
    """The x* solving Equation 2 for the given model.

    Dispatches to the paper's closed forms when they apply:

    * uniform overshoot + area cost (Example 5.1): ``x* = sqrt(Cb / Cr)``;
    * exponential overshoot + length cost (Example 5.2): Newton's method
      on ``e^{lambda x} = 1 + lambda (Cb/Cr + x)``;

    and to a generic bisection otherwise.
    """
    if cb <= 0:
        raise ConfigurationError(f"cb must be positive, got {cb}")
    if isinstance(distribution, UniformIncrement) and isinstance(
        request_cost, AreaRequestCost
    ):
        # Example 5.1; the optimum is clipped into the distribution's
        # support — beyond U the failure probability is already zero.
        return min(math.sqrt(cb / request_cost.cr), distribution.upper)
    if isinstance(distribution, ExponentialIncrement) and isinstance(
        request_cost, LengthRequestCost
    ):
        return _newton_exponential_length(
            distribution.rate, cb / request_cost.cr
        )
    return _bisect_equation2(distribution, request_cost, cb)


def unary_optimal_cost(
    distribution: IncrementDistribution,
    request_cost: RequestCost,
    cb: float,
) -> tuple[float, float, float]:
    """``(x*, C*, R*)`` — optimal bound, total cost, and request cost.

    ``C* = (Cb + R(x*)) / P(x*)`` follows from C(x*) = C* in Equation 1.
    """
    x_star = unary_optimal_bound(distribution, request_cost, cb)
    p_star = distribution.cdf(x_star)
    if p_star <= 0.0:
        raise BoundingError(
            "optimal bound has zero success probability; the distribution "
            "and cost model are inconsistent"
        )
    r_star = request_cost.cost(x_star)
    c_star = (cb + r_star) / p_star
    return x_star, c_star, r_star


def _newton_exponential_length(rate: float, cb_over_cr: float) -> float:
    """Example 5.2 with the normalised exponential density.

    Equation 2 reduces to ``e^{lambda x} - lambda x - 1 - lambda*Cb/Cr = 0``
    whose residual is convex with a single positive root.
    """
    target = rate * cb_over_cr

    # expm1 keeps the residual accurate when the root is tiny (the
    # "verification nearly free" regime), where exp(rx) - rx - 1 would
    # cancel catastrophically.
    def residual(x: float) -> float:
        return math.expm1(rate * x) - rate * x - target

    def slope(x: float) -> float:
        return rate * math.expm1(rate * x)

    # The paper's suggested starting point, adapted to the normalised pdf.
    x = math.log1p(target) / rate + 1.0 / rate
    for _iteration in range(100):
        step = residual(x) / slope(x)
        x -= step
        if x <= 0.0:
            x = 1e-12 / rate
        if abs(step) < 1e-12 * (1.0 + abs(x)):
            return x
    raise BoundingError("Newton's method failed to converge for Example 5.2")


def _bisect_equation2(
    distribution: IncrementDistribution,
    request_cost: RequestCost,
    cb: float,
) -> float:
    """Generic Equation 2 root finding.

    The residual ``g(x) = P(x) R'(x) - (Cb + R(x)) p(x)`` starts negative
    (P(0) = 0, p(0) > 0) and becomes positive once P(x) is large; bisect
    between those brackets.
    """

    def g(x: float) -> float:
        return distribution.cdf(x) * request_cost.derivative(x) - (
            cb + request_cost.cost(x)
        ) * distribution.pdf(x)

    lo = 1e-12
    hi = distribution.scale
    for _doubling in range(200):
        if g(hi) > 0.0:
            break
        hi *= 2.0
    else:
        raise BoundingError("could not bracket the Equation 2 root")
    if g(lo) > 0.0:
        return lo
    for _iteration in range(200):
        mid = (lo + hi) / 2.0
        if g(mid) > 0.0:
            hi = mid
        else:
            lo = mid
    return (lo + hi) / 2.0
