"""Secure bounding (Section V): the paper's second phase.

Obtain tight lower/upper bounds on the private attribute xi of every user
in a cluster without any user revealing xi — users only ever answer
yes/no to hypothesised bounds ("hypothesis-verification" paradigm).
"""

from repro.bounding.distributions import (
    ExponentialIncrement,
    IncrementDistribution,
    UniformIncrement,
)
from repro.bounding.costmodel import AreaRequestCost, LengthRequestCost, RequestCost
from repro.bounding.unary import unary_optimal_bound, unary_optimal_cost
from repro.bounding.nbounding import (
    n_bounding_exact,
    n_bounding_increment,
)
from repro.bounding.policies import (
    ExponentialPolicy,
    IncrementPolicy,
    LinearPolicy,
    SecurePolicy,
)
from repro.bounding.protocol import (
    BoundingOutcome,
    optimal_bound,
    progressive_upper_bound,
)
from repro.bounding.boxing import (
    BoxBoundingResult,
    optimal_bounding_box,
    secure_bounding_box,
)
from repro.bounding.presets import (
    PAPER_POLICY_NAMES,
    axis_extent,
    effective_area_cost,
    initial_step,
    paper_policy,
)
from repro.bounding.privacy import (
    PrivacyFloorPolicy,
    privacy_loss_intervals,
    privacy_loss_metric,
)

__all__ = [
    "PAPER_POLICY_NAMES",
    "AreaRequestCost",
    "axis_extent",
    "effective_area_cost",
    "initial_step",
    "optimal_bounding_box",
    "paper_policy",
    "BoundingOutcome",
    "BoxBoundingResult",
    "ExponentialIncrement",
    "ExponentialPolicy",
    "IncrementDistribution",
    "IncrementPolicy",
    "LengthRequestCost",
    "LinearPolicy",
    "PrivacyFloorPolicy",
    "RequestCost",
    "SecurePolicy",
    "UniformIncrement",
    "n_bounding_exact",
    "n_bounding_increment",
    "optimal_bound",
    "privacy_loss_intervals",
    "privacy_loss_metric",
    "progressive_upper_bound",
    "secure_bounding_box",
    "unary_optimal_bound",
    "unary_optimal_cost",
]
