"""Increment policies for progressive bounding (Section VI-D's contenders).

All progressive algorithms share one loop (propose, verify, enlarge); they
differ only in how the next increment is computed:

* ``LinearPolicy`` — a fixed step per iteration (most conservative);
* ``ExponentialPolicy`` — the increment equals the current bound extent,
  doubling the bound each iteration (most aggressive);
* ``SecurePolicy`` — the paper's cost-optimal increment from Equation 5
  (or the exact Equation 3 program), recomputed each iteration from the
  number of users still disagreeing.
"""

from __future__ import annotations

from typing import Literal, Protocol

from repro.errors import ConfigurationError
from repro.bounding.costmodel import RequestCost
from repro.bounding.distributions import IncrementDistribution
from repro.bounding.nbounding import ExactNBounding, n_bounding_increment


class IncrementPolicy(Protocol):
    """Computes the bound increment for one iteration.

    Parameters: ``disagreeing`` — users still above the current bound;
    ``extent`` — current bound minus the protocol's starting point (0 on
    the first iteration).
    """

    name: str

    def increment(self, disagreeing: int, extent: float) -> float:
        """The next bound increment for this iteration."""
        ...


class LinearPolicy:
    """Fixed increment; Table I's initial bound is the customary step."""

    def __init__(self, step: float) -> None:
        if step <= 0:
            raise ConfigurationError(f"step must be positive, got {step}")
        self.step = step
        self.name = "linear"

    def increment(self, disagreeing: int, extent: float) -> float:
        """The next bound increment for this iteration."""
        return self.step


class ExponentialPolicy:
    """Doubling: the increment equals the current bound extent."""

    def __init__(self, initial: float) -> None:
        if initial <= 0:
            raise ConfigurationError(f"initial must be positive, got {initial}")
        self.initial = initial
        self.name = "exponential"

    def increment(self, disagreeing: int, extent: float) -> float:
        """The next bound increment for this iteration."""
        return self.initial if extent <= 0.0 else extent


class SecurePolicy:
    """The paper's optimal N-bounding increment (Equation 5 / Equation 3).

    ``mode="approx"`` uses the closed-form Equation 5 solution (the
    paper's default, negligible CPU); ``mode="exact"`` runs the Equation 3
    dynamic program (the ablation).
    """

    def __init__(
        self,
        distribution: IncrementDistribution,
        request_cost: RequestCost,
        cb: float,
        mode: Literal["approx", "exact"] = "approx",
    ) -> None:
        if cb <= 0:
            raise ConfigurationError(f"cb must be positive, got {cb}")
        if mode not in ("approx", "exact"):
            raise ConfigurationError(f"unknown mode {mode!r}")
        self._distribution = distribution
        self._request_cost = request_cost
        self._cb = cb
        self._mode = mode
        self._exact = (
            ExactNBounding(distribution, request_cost, cb) if mode == "exact" else None
        )
        self.name = f"secure-{mode}"

    def increment(self, disagreeing: int, extent: float) -> float:
        """The next bound increment for this iteration."""
        if disagreeing < 1:
            raise ConfigurationError(
                f"disagreeing must be >= 1, got {disagreeing}"
            )
        if self._exact is not None:
            x_star, _cost = self._exact.level(disagreeing)
            return x_star
        return n_bounding_increment(
            disagreeing, self._distribution, self._request_cost, self._cb
        )
