"""N-bounding: the optimal increment with N disagreeing users (Section V-B).

The exact recurrence (Equation 3) sums over how many of the N users
disagree with the proposed bound; its optimal costs C*(i) are defined
bottom-up by dynamic programming, each level requiring a one-dimensional
minimisation that is itself a fixed point (the i = N term contains C*(N)).

The paper's practical version replaces the binomial sum with the expected
number of disagreeing users and bounds the continuation cost linearly
(Equation 4), whose first-order condition collapses to Equation 5:

    R'(x) = (C* - R*) N p(x)

with C*, R* the unary optima.  :func:`n_bounding_increment` solves
Equation 5 (closed forms for the worked examples, bisection otherwise);
:func:`n_bounding_exact` implements the full Equation 3 dynamic program,
which the ablation benchmark compares against the approximation.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.errors import ConfigurationError
from repro.bounding.costmodel import AreaRequestCost, LengthRequestCost, RequestCost
from repro.bounding.distributions import (
    ExponentialIncrement,
    IncrementDistribution,
    UniformIncrement,
)
from repro.bounding.unary import unary_optimal_cost


def n_bounding_increment(
    n: int,
    distribution: IncrementDistribution,
    request_cost: RequestCost,
    cb: float,
    minimum: float = 1e-12,
) -> float:
    """The Equation 5 increment for ``n`` disagreeing users.

    Closed forms (paper Examples 5.3 and 5.4):

    * uniform + area: ``x = N (C* - R*) / (2 Cr U)``;
    * exponential + length: ``x = ln((C* - R*) N lambda / Cr) / lambda``.

    The result is floored at ``minimum`` (Example 5.4's logarithm can go
    non-positive when verification is cheap relative to the request) and,
    for bounded supports, capped at the distribution's scale — proposing
    beyond the largest possible overshoot buys nothing.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if n == 1:
        x_star, _c_star, _r_star = unary_optimal_cost(distribution, request_cost, cb)
        return max(min(x_star, distribution.scale), minimum)
    _x_star, c_star, r_star = unary_optimal_cost(distribution, request_cost, cb)
    gain = c_star - r_star
    if isinstance(distribution, UniformIncrement) and isinstance(
        request_cost, AreaRequestCost
    ):
        x = n * gain / (2.0 * request_cost.cr * distribution.upper)
    elif isinstance(distribution, ExponentialIncrement) and isinstance(
        request_cost, LengthRequestCost
    ):
        argument = gain * n * distribution.rate / request_cost.cr
        x = math.log(argument) / distribution.rate if argument > 1.0 else minimum
    else:
        x = _bisect_equation5(n, gain, distribution, request_cost)
    return max(min(x, distribution.scale), minimum)


def _bisect_equation5(
    n: int,
    gain: float,
    distribution: IncrementDistribution,
    request_cost: RequestCost,
) -> float:
    """Root of ``R'(x) - gain * N * p(x)`` (generic Equation 5)."""

    def g(x: float) -> float:
        return request_cost.derivative(x) - gain * n * distribution.pdf(x)

    lo, hi = 1e-12, distribution.scale
    if g(lo) >= 0.0:
        return lo
    for _doubling in range(200):
        if g(hi) > 0.0:
            break
        hi *= 2.0
    else:
        return distribution.scale  # derivative never catches up: take the cap
    for _iteration in range(200):
        mid = (lo + hi) / 2.0
        if g(mid) > 0.0:
            hi = mid
        else:
            lo = mid
    return (lo + hi) / 2.0


class ExactNBounding:
    """Equation 3's dynamic program over the number of disagreeing users.

    ``C*(i)`` and the optimal increment ``x*(i)`` are computed bottom-up;
    each level solves ``C = min_x f(x; C)`` by fixed-point iteration (the
    map is a contraction with factor ``(1 - P(x))^N < 1``), with a
    golden-section search for the inner minimisation.
    """

    def __init__(
        self,
        distribution: IncrementDistribution,
        request_cost: RequestCost,
        cb: float,
        tolerance: float = 1e-9,
    ) -> None:
        if cb <= 0:
            raise ConfigurationError(f"cb must be positive, got {cb}")
        self._dist = distribution
        self._request = request_cost
        self._cb = cb
        self._tolerance = tolerance

    @lru_cache(maxsize=None)
    def level(self, n: int) -> tuple[float, float]:
        """``(x*(n), C*(n))`` for ``n`` disagreeing users.

        The self-referential i = n term of Equation 3 is eliminated
        algebraically: at a fixed increment x,

            C(x) = A(x) + (1 - P(x))^n * C(x)
            C(x) = A(x) / (1 - (1 - P(x))^n)

        where A(x) collects the verification, request and i < n
        continuation terms, so each level is one scalar minimisation with
        no fixed-point iteration.
        """
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if n == 1:
            x_star, c_star, _r_star = unary_optimal_cost(
                self._dist, self._request, self._cb
            )
            return x_star, c_star
        lower_costs = [0.0] + [self.level(i)[1] for i in range(1, n)]
        return self._minimise(n, lower_costs)

    def expected_cost(self, n: int, x: float, own_cost: float) -> float:
        """Equation 3 evaluated at increment ``x`` with C*(n) := own_cost."""
        lower_costs = [0.0] + [self.level(i)[1] for i in range(1, n)]
        return self._equation3(n, x, lower_costs, own_cost)

    def _equation3(
        self, n: int, x: float, lower_costs: list[float], own_cost: float
    ) -> float:
        p = self._dist.cdf(x)
        q = 1.0 - p
        total = n * self._cb + self._request.cost(x)
        for i in range(1, n + 1):
            weight = math.comb(n, i) * (q**i) * (p ** (n - i))
            continuation = own_cost if i == n else lower_costs[i]
            total += weight * continuation
        return total

    def _closed_cost(self, n: int, x: float, lower_costs: list[float]) -> float:
        """Equation 3's self-consistent cost at increment ``x``."""
        p = self._dist.cdf(x)
        if p <= 0.0:
            return math.inf
        q = 1.0 - p
        partial = n * self._cb + self._request.cost(x)
        for i in range(1, n):
            partial += math.comb(n, i) * (q**i) * (p ** (n - i)) * lower_costs[i]
        return partial / (1.0 - q**n)

    def _minimise(self, n: int, lower_costs: list[float]) -> tuple[float, float]:
        """Golden-section search for the self-consistent cost minimiser."""
        phi = (math.sqrt(5.0) - 1.0) / 2.0
        lo, hi = 1e-12, self._dist.scale
        a, b = hi - phi * (hi - lo), lo + phi * (hi - lo)
        fa = self._closed_cost(n, a, lower_costs)
        fb = self._closed_cost(n, b, lower_costs)
        for _iteration in range(300):
            if fa <= fb:
                hi, b, fb = b, a, fa
                a = hi - phi * (hi - lo)
                fa = self._closed_cost(n, a, lower_costs)
            else:
                lo, a, fa = a, b, fb
                b = lo + phi * (hi - lo)
                fb = self._closed_cost(n, b, lower_costs)
            if hi - lo < 1e-14 + 1e-12 * hi:
                break
        x_star = (a + b) / 2.0
        return x_star, self._closed_cost(n, x_star, lower_costs)


def n_bounding_exact(
    n: int,
    distribution: IncrementDistribution,
    request_cost: RequestCost,
    cb: float,
) -> tuple[float, float]:
    """``(x*(n), C*(n))`` from the exact Equation 3 dynamic program."""
    return ExactNBounding(distribution, request_cost, cb).level(n)
