"""Paper-parameter presets for the bounding policies (Section VI-D).

The experiments assume a uniform coordinate distribution, set the initial
bound to ``N / |D|`` (the area a cluster of N users is expected to occupy
in a unit-square population of |D| users), Cb = 1, and make the service
request cost proportional to the area of the bound with Cr = 1000 ("the
content of a POI is 1,000 times larger than a bounding message").

Our bounding protocol runs per direction (four scalar runs produce the
box), so the area-level quantities translate as:

* per-axis extent of the expected cluster area: ``sqrt(N / |D|)``;
  the overshoot of a direction's bound beyond the host's coordinate is
  modelled uniform on (0, that extent) — Example 5.3's U;
* initial increment: half of that extent (the expected box reaches half
  its extent each side of the host);
* effective area cost: a request over a region of side x returns about
  ``|D| * x^2`` POIs, each Cr messages worth of content, so
  ``R(x) = (Cr * |D|) * x^2`` — Example 5.3's cost with
  ``Cr_eff = Cr * |D|``.  (Plugging Table I's raw Cr = 1000 into the
  formulas without the density factor yields increments of ~50 unit
  squares, so the authors' Cr must already fold the density in; see
  DESIGN.md.)
"""

from __future__ import annotations

import math

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.bounding.costmodel import AreaRequestCost
from repro.bounding.distributions import UniformIncrement
from repro.bounding.policies import (
    ExponentialPolicy,
    IncrementPolicy,
    LinearPolicy,
    SecurePolicy,
)

#: The policy names Figure 13 compares (OPT is handled separately — it is
#: not a progressive policy).
PAPER_POLICY_NAMES = ("linear", "exponential", "secure")


def axis_extent(cluster_size: int, config: SimulationConfig) -> float:
    """Per-axis extent of the expected cluster area ``N / |D|``."""
    if cluster_size < 1:
        raise ConfigurationError(f"cluster_size must be >= 1, got {cluster_size}")
    return math.sqrt(config.uniform_bound_u(cluster_size))


#: How finely the linear policy subdivides the expected extent.  Real
#: clusters live in dense pockets and are several times smaller than the
#: uniform-population expectation, so a conservative policy must probe in
#: fractions of it; one sixteenth keeps linear the most-iterations/tightest
#: -bound contender, exactly its role in Fig. 13.
LINEAR_SUBDIVISIONS = 16


def initial_step(cluster_size: int, config: SimulationConfig) -> float:
    """The initial per-direction increment (half the expected extent)."""
    return axis_extent(cluster_size, config) / 2.0


def fine_step(cluster_size: int, config: SimulationConfig) -> float:
    """The conservative probing step used by linear and exponential."""
    return initial_step(cluster_size, config) / LINEAR_SUBDIVISIONS


def effective_area_cost(config: SimulationConfig) -> AreaRequestCost:
    """``R(x) = Cr * |D| * x^2`` — POIs in the region times content cost."""
    return AreaRequestCost(config.request_cost * config.user_count)


def paper_policy(
    name: str, cluster_size: int, config: SimulationConfig
) -> IncrementPolicy:
    """Build one of Figure 13's progressive policies at paper parameters.

    ``name`` is one of ``linear``, ``exponential``, ``secure`` (Equation 5
    approximation) or ``secure-exact`` (Equation 3 dynamic program, the
    ablation variant).
    """
    step = fine_step(cluster_size, config)
    if name == "linear":
        return LinearPolicy(step)
    if name == "exponential":
        return ExponentialPolicy(step)
    if name in ("secure", "secure-exact"):
        distribution = UniformIncrement(axis_extent(cluster_size, config))
        mode = "approx" if name == "secure" else "exact"
        return SecurePolicy(
            distribution,
            effective_area_cost(config),
            cb=config.bounding_cost,
            mode=mode,
        )
    raise ConfigurationError(f"unknown paper policy {name!r}")
