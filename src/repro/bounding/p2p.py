"""Message-level secure bounding over the peer network.

The analytic protocol in :mod:`repro.bounding.protocol` simulates the
verification replies directly from the values; here each verification is
a real ``verify_bound`` RPC to the member's device, so messages are
counted by the network and can be lost.

Failure handling follows the conservative rule: a member whose reply is
lost beyond the retry budget is *treated as disagreeing* — the bound
keeps growing, which can only loosen (never invalidate) the result.  A
member that is crashed outright can never agree, so the run aborts with
:class:`~repro.errors.ProtocolError` after ``max_iterations`` instead of
looping forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro import obs
from repro.errors import BoundingError, ConfigurationError
from repro.bounding.policies import IncrementPolicy
from repro.bounding.protocol import BoundingOutcome, _record_run
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.network.reliability import (
    ABORT_BELOW_K,
    ABORT_HOST_FAILED,
    ABORT_NO_CONVERGENCE,
    ABORT_REFORM_BUDGET,
    abort,
)
from repro.network.simulator import MessageDropped, PeerCrashed, PeerNetwork
from repro.obs import names as metric
from repro.obs import trace as _trace


@dataclass(frozen=True, slots=True)
class P2PBoundingReport:
    """One directional message-level bounding run."""

    outcome: BoundingOutcome
    messages_sent: int
    messages_dropped: int
    unresolved: frozenset[int]  # members that never answered (crashed)


def p2p_upper_bound(
    network: PeerNetwork,
    host: int,
    members: Sequence[int],
    axis: int,
    sign: float,
    start: float,
    policy: IncrementPolicy,
    retries: int = 0,
    max_iterations: int = 10_000,
) -> P2PBoundingReport:
    """Bound ``sign * coordinate(axis)`` of every member from above.

    ``members`` should include the host; the host answers its own
    hypothesis locally at zero message cost (its device is registered on
    the network like any other, but we shortcut the self-call).
    """
    if axis not in (0, 1) or sign not in (-1.0, 1.0):
        raise ConfigurationError(f"bad direction: axis={axis}, sign={sign}")
    if not members:
        raise ConfigurationError("cannot bound an empty member list")
    sent_before = network.stats.sent
    dropped_before = network.stats.dropped

    bound = start
    disagreeing = set(members)
    crashed: set[int] = set()
    intervals: dict[int, tuple[float, float]] = {}
    rounds: dict[int, int] = {}
    iterations = 0
    verify_messages = 0

    # Initial screening: whoever the starting bound already covers agrees
    # for free in the analytic protocol; over the wire it still costs one
    # round trip each (the host cannot know without asking).
    bound, verify_messages = _verify_round(
        network, host, disagreeing, crashed, intervals, rounds, 0, axis, sign,
        bound, float("-inf"), retries, verify_messages,
    )
    while disagreeing - crashed:
        if iterations >= max_iterations:
            raise BoundingError(
                f"no convergence after {max_iterations} iterations "
                f"({len(disagreeing)} members still unresolved)"
            )
        previous = bound
        step = policy.increment(len(disagreeing - crashed), bound - start)
        if step <= 0.0:
            raise BoundingError("policy proposed a non-positive increment")
        bound = previous + step
        iterations += 1
        bound, verify_messages = _verify_round(
            network, host, disagreeing, crashed, intervals, rounds, iterations,
            axis, sign, bound, previous, retries, verify_messages,
        )
    outcome = BoundingOutcome(
        bound=bound,
        start=start,
        iterations=iterations,
        messages=verify_messages,
        agreement_intervals=intervals,
        agreement_rounds=rounds,
    )
    if obs.enabled():
        # Same canonical counters as the analytic protocol: one
        # verification round trip == one unit of Cb, whichever layer
        # carried it.
        _record_run(outcome)
    flight = _trace._recorder
    if flight is not None:
        flight.record(
            _trace.EVT_BOUNDING_RUN, axis=axis, sign=sign,
            iterations=iterations, messages=verify_messages,
            unresolved=len(crashed),
        )
    return P2PBoundingReport(
        outcome=outcome,
        messages_sent=network.stats.sent - sent_before,
        messages_dropped=network.stats.dropped - dropped_before,
        unresolved=frozenset(crashed),
    )


@dataclass(frozen=True, slots=True)
class ResilientBoundingReport:
    """A cloaked rectangle obtained despite failures.

    ``survivors`` are the members the final successful round bounded
    (always >= k, always including the host); ``evicted`` the members
    removed after crashing mid-protocol; ``restarts`` how many times the
    four-direction run was restarted with the surviving members.
    ``messages``/``iterations``/``messages_dropped`` aggregate across
    every round, including the discarded ones — the real cost paid.
    """

    region: Rect
    messages: int
    iterations: int
    messages_dropped: int
    survivors: tuple[int, ...]
    evicted: frozenset[int]
    restarts: int


def resilient_bounding_box(
    network: "PeerNetwork",
    host: int,
    members: Sequence[int],
    position: Point,
    policy_for_size: Callable[[int], IncrementPolicy],
    k: int,
    retries: int = 0,
    max_restarts: int = 8,
    max_iterations: int = 10_000,
    clip_to: "Rect | None" = None,
) -> ResilientBoundingReport:
    """Four directional bounding runs with crash eviction and restart.

    The graceful-degradation rule of the fault-tolerant runtime: a
    member that crashes mid-bounding is evicted and the whole
    four-direction protocol restarts with the survivors, *provided* the
    survivors still satisfy the anonymity requirement ``k`` — otherwise
    the run aborts cleanly with a typed
    :class:`~repro.network.reliability.ProtocolAbort` rather than ever
    producing an undersized cloak.  ``position`` is the host's own
    coordinate, seeding every directional run exactly as in the
    failure-free protocol.

    ``network`` may be a plain :class:`PeerNetwork` or a
    :class:`~repro.network.reliability.ReliableTransport` (the transport
    adds retries with backoff and idempotent redelivery underneath).
    """
    survivors = sorted(set(members))
    evicted: set[int] = set()
    restarts = 0
    messages = 0
    iterations = 0
    dropped = 0
    recording = obs.enabled()
    while True:
        if host not in survivors:
            raise abort(
                ABORT_HOST_FAILED,
                f"host {host} is no longer among the bounding members",
                host=host,
                evicted=evicted,
            )
        if len(survivors) < k:
            raise abort(
                ABORT_BELOW_K,
                f"only {len(survivors)} members survive bounding, k={k}",
                host=host,
                evicted=evicted,
            )
        directions = (
            (0, 1.0, position.x),
            (0, -1.0, -position.x),
            (1, 1.0, position.y),
            (1, -1.0, -position.y),
        )
        bounds: list[float] = []
        unresolved: set[int] = set()
        for axis, sign, start in directions:
            try:
                report = p2p_upper_bound(
                    network,
                    host,
                    survivors,
                    axis=axis,
                    sign=sign,
                    start=start,
                    policy=policy_for_size(len(survivors)),
                    retries=retries,
                    max_iterations=max_iterations,
                )
            except BoundingError as exc:
                raise abort(
                    ABORT_NO_CONVERGENCE,
                    f"host {host}: {exc}",
                    host=host,
                    evicted=evicted,
                ) from exc
            bounds.append(report.outcome.bound)
            messages += report.outcome.messages
            iterations += report.outcome.iterations
            dropped += report.messages_dropped
            unresolved |= report.unresolved
        if not unresolved:
            x_max, neg_x_min, y_max, neg_y_min = bounds
            region = Rect(-neg_x_min, x_max, -neg_y_min, y_max)
            if clip_to is not None:
                region = region.clipped_to(clip_to)
            return ResilientBoundingReport(
                region=region,
                messages=messages,
                iterations=iterations,
                messages_dropped=dropped,
                survivors=tuple(survivors),
                evicted=frozenset(evicted),
                restarts=restarts,
            )
        # Crash(es) mid-run: evict and restart with the survivors.
        flight = _trace._recorder
        if flight is not None:
            for member in sorted(unresolved - evicted):
                flight.record(
                    _trace.EVT_EVICTION, peer=member, host=host,
                    phase="bounding",
                )
            flight.record(
                _trace.EVT_BOUNDING_RESTART, host=host,
                restarts=restarts + 1, survivors=len(survivors) - len(unresolved - evicted),
            )
        evicted |= unresolved
        survivors = [m for m in survivors if m not in unresolved]
        restarts += 1
        if restarts > max_restarts:
            raise abort(
                ABORT_REFORM_BUDGET,
                f"host {host}: bounding restart budget ({max_restarts}) "
                "exhausted",
                host=host,
                evicted=evicted,
            )
        if recording:
            obs.inc(metric.BOUNDING_RESTARTS)


def _verify_round(
    network: PeerNetwork,
    host: int,
    disagreeing: set[int],
    crashed: set[int],
    intervals: dict[int, tuple[float, float]],
    rounds: dict[int, int],
    iteration: int,
    axis: int,
    sign: float,
    bound: float,
    previous: float,
    retries: int,
    verify_messages: int,
) -> tuple[float, int]:
    """One verification sweep; mutates the disagreeing/crashed sets."""
    for member in sorted(disagreeing - crashed):
        if member != host:
            # Self-verification is local and free; peers cost a round trip.
            verify_messages += 1
        try:
            agreed = network.call(
                host, member, "verify_bound", (axis, sign, bound), retries=retries
            )
        except PeerCrashed:
            crashed.add(member)
            continue
        except MessageDropped:
            continue  # conservatively still disagreeing
        if agreed:
            intervals[member] = (previous, bound)
            rounds[member] = iteration
            disagreeing.discard(member)
    return bound, verify_messages
