"""Table I: the simulation parameter settings, reproduced from config."""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.config import SimulationConfig


def table1_rows(config: SimulationConfig) -> list[list[object]]:
    """Table I's rows, taken from a live configuration object."""
    return [
        ["# of users", "", config.user_count],
        ["distance threshold", "delta", config.delta],
        ["max # of connected peers", "M", config.max_peers],
        ["k-anonymity", "k", config.k],
        ["bounding cost", "Cb", config.bounding_cost],
        ["service request cost", "Cr", config.request_cost],
        ["uniform distribution bound", "U", "N/%d" % config.user_count],
        ["initial bound", "X", "N/%d" % config.user_count],
        ["# of user requests", "S", config.request_count],
    ]


def table1_text(config: SimulationConfig | None = None) -> str:
    """Table I rendered as text."""
    config = config if config is not None else SimulationConfig()
    table = format_table(
        ["Parameter", "Symbol", "Default Value"], table1_rows(config)
    )
    return f"Table I: simulation parameter settings\n{table}"


if __name__ == "__main__":
    print(table1_text())
