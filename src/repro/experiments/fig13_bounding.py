"""Figure 13: the bounding algorithms under various k.

For each k in {5, 10, 20, 30, 40, 50}: form clusters with distributed
t-Conn for a workload of hosts, then bound every distinct cluster with
each progressive policy (linear, exponential, secure) and with the OPT
baseline, measuring per bounding run:

* (a) bounding cost — verification messages;
* (b) request cost — POIs inside the final region, reported as a ratio
  to OPT's (the paper normalises panel b this way);
* (c) total cost — bounding messages * Cb + POIs * Cr;
* (d) CPU time of the bounding computation, in milliseconds.

Expected shapes (paper Fig. 13): linear has the highest bounding cost and
the best request cost; exponential the opposite; secure balances the two,
achieving the lowest total of the three and staying close to OPT; all
CPU times are far below a millisecond per run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.reporting import format_series
from repro.bounding.boxing import optimal_bounding_box, secure_bounding_box
from repro.bounding.presets import paper_policy
from repro.experiments.harness import (
    ExperimentSetup,
    default_request_count,
    run_clustering_workload,
)
from repro.experiments.workloads import sample_hosts
from repro.geometry.rect import Rect
from repro.server.poidb import POIDatabase

PAPER_K_VALUES: tuple[int, ...] = (5, 10, 20, 30, 40, 50)
POLICIES: tuple[str, ...] = ("linear", "exponential", "secure", "optimal")


@dataclass(frozen=True, slots=True)
class BoundingCell:
    """Averages for one (policy, k) cell of Figure 13."""

    policy: str
    k: int
    runs: int
    avg_bounding_cost: float
    avg_request_pois: float
    avg_request_ratio: float  # vs OPT, the paper's panel (b)
    avg_total_cost: float
    avg_cpu_ms: float


@dataclass(frozen=True, slots=True)
class Fig13Result:
    """All four panels of Figure 13."""

    k_values: tuple[int, ...]
    cells: dict[str, tuple[BoundingCell, ...]]  # policy -> per-k cells

    def _series(self, attribute: str) -> dict[str, list[float]]:
        return {
            policy: [getattr(cell, attribute) for cell in cells]
            for policy, cells in self.cells.items()
        }

    def format(self) -> str:
        """Render the result as the benchmark-report text."""
        panels = [
            ("Fig 13(a): avg bounding cost vs k", "avg_bounding_cost"),
            ("Fig 13(b): avg request cost (ratio to optimal) vs k",
             "avg_request_ratio"),
            ("Fig 13(c): avg total cost vs k", "avg_total_cost"),
            ("Fig 13(d): avg CPU time (ms) vs k", "avg_cpu_ms"),
        ]
        return "\n\n".join(
            format_series("k", list(self.k_values), self._series(attr), title=title)
            for title, attr in panels
        )


def run_fig13(
    setup: Optional[ExperimentSetup] = None,
    k_values: Sequence[int] = PAPER_K_VALUES,
    requests: Optional[int] = None,
    seed: int = 17,
    policies: Sequence[str] = POLICIES,
) -> Fig13Result:
    """Regenerate Figure 13's series."""
    setup = setup if setup is not None else ExperimentSetup.paper_default()
    request_count = requests if requests is not None else default_request_count()
    db = POIDatabase(setup.dataset)
    cells: dict[str, list[BoundingCell]] = {policy: [] for policy in policies}
    for k in k_values:
        config = setup.base_config.with_overrides(k=k, request_count=request_count)
        graph = setup.graph(config)
        hosts = sample_hosts(graph, k, request_count, seed=seed)
        clustering = run_clustering_workload(
            setup, "t-conn", config, hosts, graph=graph
        )
        clusters = clustering.clusters
        opt_pois = [
            db.count_in_region(
                optimal_bounding_box([setup.dataset[i] for i in members])
            )
            for members in clusters
        ]
        for policy in policies:
            cells[policy].append(
                _bound_all(setup, db, config, clusters, opt_pois, policy, k)
            )
    return Fig13Result(
        k_values=tuple(k_values),
        cells={policy: tuple(per_k) for policy, per_k in cells.items()},
    )


def _bound_all(
    setup: ExperimentSetup,
    db: POIDatabase,
    config,
    clusters: Sequence[frozenset[int]],
    opt_pois: Sequence[int],
    policy: str,
    k: int,
) -> BoundingCell:
    bounding_costs: list[float] = []
    pois: list[float] = []
    ratios: list[float] = []
    totals: list[float] = []
    cpu: list[float] = []
    for members, opt_count in zip(clusters, opt_pois):
        ordered = sorted(members)
        points = [setup.dataset[i] for i in ordered]
        started = time.perf_counter()
        if policy == "optimal":
            region = optimal_bounding_box(points)
            messages = len(points)
        else:
            size = len(points)
            outcome = secure_bounding_box(
                points,
                host_index=0,
                policy_factory=lambda: paper_policy(policy, size, config),
                clip_to=Rect.unit_square(),
            )
            region, messages = outcome.region, outcome.messages
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        poi_count = db.count_in_region(region)
        bounding_costs.append(messages)
        pois.append(poi_count)
        ratios.append(poi_count / opt_count if opt_count else float("nan"))
        totals.append(
            messages * config.bounding_cost + poi_count * config.request_cost
        )
        cpu.append(elapsed_ms)
    runs = len(bounding_costs)

    def avg(series: list[float]) -> float:
        return sum(series) / runs if runs else float("nan")

    return BoundingCell(
        policy=policy,
        k=k,
        runs=runs,
        avg_bounding_cost=avg(bounding_costs),
        avg_request_pois=avg(pois),
        avg_request_ratio=avg(ratios),
        avg_total_cost=avg(totals),
        avg_cpu_ms=avg(cpu),
    )


if __name__ == "__main__":
    print(run_fig13().format())
