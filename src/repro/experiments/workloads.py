"""Workload generation: who requests cloaking.

The paper's workload is "S (out of 104,770) users who request location
cloaking".  A user in a WPG component with fewer than k members can never
be k-anonymized (Fig. 5's stranded vertex), so hosts are sampled from
*clusterable* users — the components of size >= k.  Failures that still
occur (a late host finding its neighbourhood depleted) are counted by the
harness rather than hidden.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.components import connected_components
from repro.graph.wpg import WeightedProximityGraph


def clusterable_users(graph: WeightedProximityGraph, k: int) -> list[int]:
    """Users whose connected component holds at least k members."""
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    eligible: list[int] = []
    for component in connected_components(graph):
        if len(component) >= k:
            eligible.extend(component)
    eligible.sort()
    return eligible


def sample_hosts(
    graph: WeightedProximityGraph,
    k: int,
    count: int,
    seed: int = 0,
) -> list[int]:
    """``count`` distinct requesting users, uniform over clusterable users.

    Raises when the population cannot supply that many distinct hosts —
    a configuration problem the caller should see, not silently shrink.
    """
    eligible = clusterable_users(graph, k)
    if count > len(eligible):
        raise ConfigurationError(
            f"asked for {count} hosts but only {len(eligible)} users are "
            f"in components of size >= {k}"
        )
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(eligible), size=count, replace=False)
    return [eligible[int(i)] for i in picks]
