"""Shared machinery for the figure runners.

``ExperimentSetup`` owns the (expensive) dataset and caches WPGs per
(delta, max_peers) and whole-graph partitions per (graph, k), so a sweep
over k or S rebuilds nothing it does not have to.  Scale is controlled by
environment variables so the same code drives a laptop-sized smoke run
and the full 104,770-user reproduction:

* ``REPRO_USERS``    — population size (default 104,770; Table I);
* ``REPRO_REQUESTS`` — default workload size S (default 2,000; Table I).

``run_clustering_workload`` is Section VI's measurement loop: serve S
cloaking requests with one algorithm, record per-request communication
cost and cloaked-region area (optimal bounding — the paper isolates the
clustering algorithms from the bounding algorithms this way).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Literal, Optional, Protocol, Sequence

from repro.config import SimulationConfig
from repro.datasets.base import PointDataset
from repro.datasets.california import california_like_poi
from repro.errors import ClusteringError, ConfigurationError, ReproError
from repro.geometry.rect import Rect
from repro.clustering.base import ClusterResult, Partition
from repro.clustering.centralized import centralized_k_clustering
from repro.clustering.distributed import DistributedClustering
from repro.clustering.knn import KNNClustering
from repro.clustering.hilbert_asr import HilbertASRClustering
from repro.cloaking.anonymizer import CentralizedAnonymizer
from repro.graph.build import build_wpg
from repro.graph.wpg import WeightedProximityGraph
from repro.server.poidb import POIDatabase

Algorithm = Literal["t-conn", "centralized t-conn", "knn", "hilbert-asr"]

#: The paper's three contenders (Figs. 9-12).
ALGORITHMS: tuple[Algorithm, ...] = ("t-conn", "knn", "centralized t-conn")

#: Extended set including the coordinate-exposing hilbASR upper baseline
#: from related work (not part of the paper's own evaluation).
ALGORITHMS_EXTENDED: tuple[Algorithm, ...] = (*ALGORITHMS, "hilbert-asr")


def default_user_count() -> int:
    """Population size from ``REPRO_USERS`` (Table I's 104,770 default)."""
    return int(os.environ.get("REPRO_USERS", "104770"))


def default_request_count() -> int:
    """Workload size from ``REPRO_REQUESTS`` (Table I's 2,000 default)."""
    return int(os.environ.get("REPRO_REQUESTS", "2000"))


class ClusteringService(Protocol):
    """Serve one k-clustering request for ``host``."""
    def request(self, host: int) -> ClusterResult:
        """The phase-1 interface every clustering scheme implements."""
        ...


@dataclass
class ExperimentSetup:
    """Dataset plus caches shared by every figure runner."""

    dataset: PointDataset
    base_config: SimulationConfig
    _graphs: dict[tuple[float, int], WeightedProximityGraph] = field(
        default_factory=dict
    )
    _partitions: dict[tuple[int, int, int], Partition] = field(default_factory=dict)

    @classmethod
    def paper_default(
        cls,
        users: Optional[int] = None,
        requests: Optional[int] = None,
        seed: int = 2009,
    ) -> "ExperimentSetup":
        """The paper's setup at (possibly scaled) population size.

        When the population is scaled below Table I's 104,770, the
        communication range delta is scaled by ``sqrt(104770 / users)``
        so the expected number of radio neighbours — and with it the WPG
        density the experiments sweep — is preserved.
        """
        user_count = users if users is not None else default_user_count()
        request_count = requests if requests is not None else default_request_count()
        dataset = california_like_poi(user_count, seed=seed)
        from repro.config import DEFAULT_DELTA, DEFAULT_USER_COUNT

        delta = DEFAULT_DELTA * (DEFAULT_USER_COUNT / user_count) ** 0.5
        config = SimulationConfig(
            user_count=user_count,
            request_count=request_count,
            delta=delta,
            seed=seed,
        )
        return cls(dataset=dataset, base_config=config)

    def graph(self, config: SimulationConfig) -> WeightedProximityGraph:
        """The WPG for a config's (delta, max_peers), built once."""
        key = (config.delta, config.max_peers)
        cached = self._graphs.get(key)
        if cached is None:
            cached = build_wpg(self.dataset, config.delta, config.max_peers)
            self._graphs[key] = cached
        return cached

    def whole_partition(
        self, graph: WeightedProximityGraph, k: int
    ) -> Partition:
        """The centralized Algorithm 1 partition of ``graph``, built once."""
        key = (id(graph), k, 0)
        cached = self._partitions.get(key)
        if cached is None:
            cached = centralized_k_clustering(graph, k, method="greedy")
            self._partitions[key] = cached
        return cached

    def service(
        self,
        algorithm: Algorithm,
        graph: WeightedProximityGraph,
        k: int,
    ) -> ClusteringService:
        """A fresh phase-1 clustering service (own registry)."""
        if algorithm == "t-conn":
            return DistributedClustering(graph, k)
        if algorithm == "knn":
            return KNNClustering(graph, k)
        if algorithm == "centralized t-conn":
            return CentralizedAnonymizer(
                graph, k, precomputed=self.whole_partition(graph, k)
            )
        if algorithm == "hilbert-asr":
            return HilbertASRClustering(self.dataset, k)
        raise ConfigurationError(f"unknown algorithm {algorithm!r}")


@dataclass(frozen=True, slots=True)
class ClusteringWorkloadResult:
    """Section VI's two clustering metrics plus bookkeeping.

    ``avg_comm_cost`` and ``avg_cloaked_area`` are averaged over the
    *served* requests (the paper's "averaged over the total number of
    cloaking requests"); failures are reported, not averaged in.
    ``clusters`` holds the distinct clusters the workload formed for the
    served hosts, for downstream phases (Fig. 13 reuses them).
    """

    algorithm: str
    k: int
    requests: int
    served: int
    cached_hits: int
    failures: int
    avg_comm_cost: float
    avg_cloaked_area: float
    clusters: tuple[frozenset[int], ...]
    per_request_costs: tuple[int, ...]
    per_request_areas: tuple[float, ...]
    per_request_pois: tuple[int, ...] = ()

    @property
    def avg_pois(self) -> float:
        """Average POIs inside the served requests' cloaked regions."""
        if not self.per_request_pois:
            return float("nan")
        return sum(self.per_request_pois) / len(self.per_request_pois)


def run_clustering_workload(
    setup: ExperimentSetup,
    algorithm: Algorithm,
    config: SimulationConfig,
    hosts: Sequence[int],
    graph: Optional[WeightedProximityGraph] = None,
    db: "Optional[POIDatabase]" = None,
) -> ClusteringWorkloadResult:
    """Serve ``hosts`` with one algorithm and measure Section VI's metrics.

    Pass a :class:`~repro.server.poidb.POIDatabase` to additionally count
    the POIs inside each request's cloaked region (Fig. 10's request-cost
    component).
    """
    wpg = graph if graph is not None else setup.graph(config)
    service = setup.service(algorithm, wpg, config.k)
    costs: list[int] = []
    areas: list[float] = []
    pois: list[int] = []
    region_cache: dict[frozenset[int], tuple[float, int]] = {}
    clusters: list[frozenset[int]] = []
    cached_hits = 0
    failures = 0
    for host in hosts:
        try:
            result = service.request(host)
        except (ClusteringError, ReproError):
            failures += 1
            continue
        if result.from_cache:
            cached_hits += 1
        costs.append(result.involved)
        cached_region = region_cache.get(result.members)
        if cached_region is None:
            # Optimal (exact) bounding box: the paper evaluates clustering
            # with optimal bounding to isolate the two phases.
            points = [setup.dataset[i] for i in result.members]
            region = Rect.from_points(points)
            poi_count = db.count_in_region(region) if db is not None else 0
            cached_region = (region.area, poi_count)
            region_cache[result.members] = cached_region
            clusters.append(result.members)
        areas.append(cached_region[0])
        pois.append(cached_region[1])
    served = len(costs)
    return ClusteringWorkloadResult(
        algorithm=algorithm,
        k=config.k,
        requests=len(hosts),
        served=served,
        cached_hits=cached_hits,
        failures=failures,
        avg_comm_cost=sum(costs) / served if served else float("nan"),
        avg_cloaked_area=sum(areas) / served if served else float("nan"),
        clusters=tuple(clusters),
        per_request_costs=tuple(costs),
        per_request_areas=tuple(areas),
        per_request_pois=tuple(pois) if db is not None else (),
    )


@lru_cache(maxsize=4)
def shared_setup(
    users: Optional[int] = None, requests: Optional[int] = None, seed: int = 2009
) -> ExperimentSetup:
    """Process-wide setup cache so benches share the dataset and WPGs."""
    return ExperimentSetup.paper_default(users=users, requests=requests, seed=seed)
