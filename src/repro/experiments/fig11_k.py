"""Figure 11: performance under various anonymity requirements k.

Sweep k over {5, 10, 20, 30, 40, 50} at default density and measure the
same two metrics as Figure 9.

Expected shapes (paper Figs. 11a/11b): centralized t-Conn's cost is flat
(it never depends on k); distributed t-Conn grows slowly and saturates
around k = 30; kNN's cost is linear in k.  Cloaked size is linear in k
for t-Conn while kNN deteriorates from ~2x to ~4x t-Conn's size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.reporting import format_series
from repro.experiments.harness import (
    ALGORITHMS,
    ClusteringWorkloadResult,
    ExperimentSetup,
    default_request_count,
    run_clustering_workload,
)
from repro.experiments.workloads import sample_hosts

PAPER_K_VALUES: tuple[int, ...] = (5, 10, 20, 30, 40, 50)


@dataclass(frozen=True, slots=True)
class Fig11Result:
    """Series for both panels of Figure 11."""

    k_values: tuple[int, ...]
    workloads: dict[str, tuple[ClusteringWorkloadResult, ...]]

    def comm_cost_series(self) -> dict[str, list[float]]:
        """Per-algorithm average communication costs."""
        return {
            algorithm: [w.avg_comm_cost for w in runs]
            for algorithm, runs in self.workloads.items()
        }

    def cloaked_size_series(self) -> dict[str, list[float]]:
        """Per-algorithm average cloaked-region areas."""
        return {
            algorithm: [w.avg_cloaked_area for w in runs]
            for algorithm, runs in self.workloads.items()
        }

    def format(self) -> str:
        """Render the result as the benchmark-report text."""
        panel_a = format_series(
            "k",
            list(self.k_values),
            self.comm_cost_series(),
            title="Fig 11(a): avg communication cost vs k",
        )
        panel_b = format_series(
            "k",
            list(self.k_values),
            self.cloaked_size_series(),
            title="Fig 11(b): avg cloaked region size vs k",
        )
        return f"{panel_a}\n\n{panel_b}"


def run_fig11(
    setup: Optional[ExperimentSetup] = None,
    k_values: Sequence[int] = PAPER_K_VALUES,
    requests: Optional[int] = None,
    seed: int = 17,
) -> Fig11Result:
    """Regenerate Figure 11's series (default M)."""
    setup = setup if setup is not None else ExperimentSetup.paper_default()
    request_count = requests if requests is not None else default_request_count()
    workloads: dict[str, list[ClusteringWorkloadResult]] = {
        algorithm: [] for algorithm in ALGORITHMS
    }
    for k in k_values:
        config = setup.base_config.with_overrides(k=k, request_count=request_count)
        graph = setup.graph(config)
        hosts = sample_hosts(graph, k, request_count, seed=seed)
        for algorithm in ALGORITHMS:
            workloads[algorithm].append(
                run_clustering_workload(setup, algorithm, config, hosts, graph=graph)
            )
    return Fig11Result(
        k_values=tuple(k_values),
        workloads={alg: tuple(runs) for alg, runs in workloads.items()},
    )


if __name__ == "__main__":
    print(run_fig11().format())
