"""Figure 12: performance under various numbers of requesting users S.

Sweep S over {1000, 2000, 4000, 8000} at defaults; workloads nest (the
S = 1000 hosts are a prefix of the S = 8000 hosts) so the sweep isolates
the effect of *more* requests rather than *different* requests.

Expected shapes (paper Figs. 12a/12b): both t-Conn costs drop with S
(cluster reuse amortises the work; centralized drops fastest, they meet
by S ~ 4000) while kNN's stays flat; kNN's cloaked size grows roughly
linearly with S (depletion pushes its clusters far away) while t-Conn's
is flat (cluster-isolation at work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.reporting import format_series
from repro.experiments.harness import (
    ALGORITHMS,
    ClusteringWorkloadResult,
    ExperimentSetup,
    run_clustering_workload,
)
from repro.experiments.workloads import sample_hosts

PAPER_S_VALUES: tuple[int, ...] = (1000, 2000, 4000, 8000)


@dataclass(frozen=True, slots=True)
class Fig12Result:
    """Series for both panels of Figure 12."""

    s_values: tuple[int, ...]
    workloads: dict[str, tuple[ClusteringWorkloadResult, ...]]

    def comm_cost_series(self) -> dict[str, list[float]]:
        """Per-algorithm average communication costs."""
        return {
            algorithm: [w.avg_comm_cost for w in runs]
            for algorithm, runs in self.workloads.items()
        }

    def cloaked_size_series(self) -> dict[str, list[float]]:
        """Per-algorithm average cloaked-region areas."""
        return {
            algorithm: [w.avg_cloaked_area for w in runs]
            for algorithm, runs in self.workloads.items()
        }

    def format(self) -> str:
        """Render the result as the benchmark-report text."""
        panel_a = format_series(
            "S",
            list(self.s_values),
            self.comm_cost_series(),
            title="Fig 12(a): avg communication cost vs # requesting users",
        )
        panel_b = format_series(
            "S",
            list(self.s_values),
            self.cloaked_size_series(),
            title="Fig 12(b): avg cloaked region size vs # requesting users",
        )
        return f"{panel_a}\n\n{panel_b}"


def run_fig12(
    setup: Optional[ExperimentSetup] = None,
    s_values: Sequence[int] = PAPER_S_VALUES,
    seed: int = 17,
) -> Fig12Result:
    """Regenerate Figure 12's series (default M and k)."""
    setup = setup if setup is not None else ExperimentSetup.paper_default()
    config = setup.base_config
    graph = setup.graph(config)
    all_hosts = sample_hosts(graph, config.k, max(s_values), seed=seed)
    workloads: dict[str, list[ClusteringWorkloadResult]] = {
        algorithm: [] for algorithm in ALGORITHMS
    }
    for s in s_values:
        hosts = all_hosts[:s]
        for algorithm in ALGORITHMS:
            workloads[algorithm].append(
                run_clustering_workload(
                    setup,
                    algorithm,
                    config.with_overrides(request_count=s),
                    hosts,
                    graph=graph,
                )
            )
    return Fig12Result(
        s_values=tuple(s_values),
        workloads={alg: tuple(runs) for alg, runs in workloads.items()},
    )


if __name__ == "__main__":
    print(run_fig12().format())
