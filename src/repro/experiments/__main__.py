"""Regenerate every figure and table from the command line.

Usage::

    python -m repro.experiments [--users N] [--requests S] [--only figN]

Writes nothing; prints each regenerated series in the order the paper
presents them.  Scale defaults follow the ``REPRO_USERS`` /
``REPRO_REQUESTS`` environment variables (Table I values if unset) —
expect a full-scale run to take tens of minutes.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.fig9_degree import run_fig9
from repro.experiments.fig10_total_cost import run_fig10
from repro.experiments.fig11_k import run_fig11
from repro.experiments.fig12_requests import run_fig12
from repro.experiments.fig13_bounding import run_fig13
from repro.experiments.harness import ExperimentSetup
from repro.experiments.tables import table1_text

RUNNERS = {
    "table1": lambda setup, requests: table1_text(setup.base_config),
    "fig9": lambda setup, requests: run_fig9(setup, requests=requests).format(),
    "fig10": lambda setup, requests: run_fig10(setup, requests=requests).format(),
    "fig11": lambda setup, requests: run_fig11(setup, requests=requests).format(),
    "fig12": lambda setup, requests: run_fig12(setup).format(),
    "fig13": lambda setup, requests: run_fig13(setup, requests=requests).format(),
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("--users", type=int, default=None,
                        help="population size (default: REPRO_USERS or 104770)")
    parser.add_argument("--requests", type=int, default=None,
                        help="workload size S (default: REPRO_REQUESTS or 2000)")
    parser.add_argument("--only", choices=sorted(RUNNERS), default=None,
                        help="regenerate a single experiment")
    args = parser.parse_args(argv)

    setup = ExperimentSetup.paper_default(users=args.users, requests=args.requests)
    requests = args.requests
    names = [args.only] if args.only else list(RUNNERS)
    for name in names:
        started = time.perf_counter()
        print(f"=== {name} " + "=" * (40 - len(name)))
        print(RUNNERS[name](setup, requests))
        print(f"[{name}: {time.perf_counter() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
