"""Figure 10: overall communication cost vs POI content size.

At the default configuration, combine each algorithm's clustering cost
with the service-request cost of its cloaked regions (a range query on
the same POI dataset) while sweeping the ratio of POI content size to
clustering message size from 0 to 20:

    total(ratio) = avg clustering messages + ratio * avg POIs in region

Expected shape (paper Fig. 10): t-Conn's lines cross below kNN's once the
ratio reaches ~10 — its bigger clustering effort buys smaller regions,
which pay off as soon as POI content dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.reporting import format_series
from repro.experiments.harness import (
    ALGORITHMS,
    ClusteringWorkloadResult,
    ExperimentSetup,
    default_request_count,
    run_clustering_workload,
)
from repro.experiments.workloads import sample_hosts
from repro.server.poidb import POIDatabase

PAPER_RATIOS: tuple[float, ...] = (0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20)


@dataclass(frozen=True, slots=True)
class Fig10Result:
    """Total-cost curves over the POI-size sweep."""

    ratios: tuple[float, ...]
    workloads: dict[str, ClusteringWorkloadResult]

    def total_cost_series(self) -> dict[str, list[float]]:
        """Per-algorithm total-cost curves over the sweep."""
        return {
            algorithm: [
                workload.avg_comm_cost + ratio * workload.avg_pois
                for ratio in self.ratios
            ]
            for algorithm, workload in self.workloads.items()
        }

    def crossover_ratio(self, better: str = "t-conn", worse: str = "knn") -> float:
        """The smallest swept ratio at which ``better`` undercuts ``worse``."""
        series = self.total_cost_series()
        for ratio, b, w in zip(self.ratios, series[better], series[worse]):
            if b < w:
                return ratio
        return float("inf")

    def format(self) -> str:
        """Render the result as the benchmark-report text."""
        return format_series(
            "poi/msg ratio",
            list(self.ratios),
            self.total_cost_series(),
            title="Fig 10: total communication cost vs POI data size",
        )


def run_fig10(
    setup: Optional[ExperimentSetup] = None,
    ratios: Sequence[float] = PAPER_RATIOS,
    requests: Optional[int] = None,
    seed: int = 17,
) -> Fig10Result:
    """Regenerate Figure 10's series (default M, default k)."""
    setup = setup if setup is not None else ExperimentSetup.paper_default()
    request_count = requests if requests is not None else default_request_count()
    config = setup.base_config.with_overrides(request_count=request_count)
    graph = setup.graph(config)
    db = POIDatabase(setup.dataset)
    hosts = sample_hosts(graph, config.k, request_count, seed=seed)
    workloads = {
        algorithm: run_clustering_workload(
            setup, algorithm, config, hosts, graph=graph, db=db
        )
        for algorithm in ALGORITHMS
    }
    return Fig10Result(ratios=tuple(ratios), workloads=workloads)


if __name__ == "__main__":
    print(run_fig10().format())
