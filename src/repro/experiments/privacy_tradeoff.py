"""The privacy-loss / cost trade-off for progressive bounding (paper §VII).

The paper's future-work observation: each agreement interval (X, X']
leaks information about the agreeing user's coordinate — the finer the
increments, the tighter the leak.  We implement the proposed remedy (a
privacy floor on the increment, :class:`~repro.bounding.privacy.
PrivacyFloorPolicy`) and sweep the floor to expose the trade-off curve:

    larger floor  ->  wider guaranteed intervals (less leaked)
                  ->  looser bounds (more POIs shipped per request)

The sweep uses real clusters from the distributed phase 1, and reports,
per floor: the worst-case leak in bits, the mean leak, the bounding
message cost and the request cost ratio versus OPT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.reporting import format_table
from repro.bounding.boxing import optimal_bounding_box, secure_bounding_box
from repro.bounding.presets import paper_policy
from repro.bounding.privacy import PrivacyFloorPolicy, privacy_loss_metric
from repro.clustering.distributed import DistributedClustering
from repro.experiments.harness import ExperimentSetup, default_request_count
from repro.experiments.workloads import sample_hosts
from repro.server.poidb import POIDatabase

DEFAULT_FLOORS: tuple[float, ...] = (0.0, 5e-4, 1e-3, 2e-3, 4e-3)


@dataclass(frozen=True, slots=True)
class PrivacyTradeoffRow:
    """Aggregates for one privacy-floor setting."""

    floor: float
    worst_leak_bits: float
    mean_interval: float
    avg_bounding_messages: float
    avg_request_ratio: float


@dataclass(frozen=True, slots=True)
class PrivacyTradeoffResult:
    """The full privacy-floor sweep."""
    rows: tuple[PrivacyTradeoffRow, ...]

    def format(self) -> str:
        """Render the result as the benchmark-report text."""
        table = format_table(
            ["floor", "worst leak (bits)", "mean interval",
             "bounding msgs", "request/OPT"],
            [
                [row.floor, row.worst_leak_bits, row.mean_interval,
                 row.avg_bounding_messages, row.avg_request_ratio]
                for row in self.rows
            ],
        )
        return (
            "Privacy floor sweep (secure policy, distributed t-Conn clusters)\n"
            + table
        )


def run_privacy_tradeoff(
    setup: Optional[ExperimentSetup] = None,
    floors: Sequence[float] = DEFAULT_FLOORS,
    requests: Optional[int] = None,
    seed: int = 31,
) -> PrivacyTradeoffResult:
    """Sweep the privacy floor over a workload of real clusters."""
    setup = setup if setup is not None else ExperimentSetup.paper_default()
    request_count = requests if requests is not None else default_request_count()
    config = setup.base_config
    graph = setup.graph(config)
    db = POIDatabase(setup.dataset)

    clustering = DistributedClustering(graph, config.k)
    clusters: list[list[int]] = []
    for host in sample_hosts(graph, config.k, request_count, seed=seed):
        result = clustering.request(host)
        if not result.from_cache:
            clusters.append(sorted(result.members))

    opt_pois = [
        max(db.count_in_region(
            optimal_bounding_box([setup.dataset[i] for i in members])
        ), 1)
        for members in clusters
    ]

    rows: list[PrivacyTradeoffRow] = []
    for floor in floors:
        outcomes = []
        messages: list[float] = []
        ratios: list[float] = []
        for members, opt in zip(clusters, opt_pois):
            points = [setup.dataset[i] for i in members]
            size = len(points)

            def build_policy():
                inner = paper_policy("secure", size, config)
                return inner if floor == 0.0 else PrivacyFloorPolicy(inner, floor)

            box = secure_bounding_box(points, 0, build_policy)
            outcomes.extend(box.directions.values())
            messages.append(box.messages)
            ratios.append(db.count_in_region(box.region) / opt)
        loss = privacy_loss_metric(outcomes, domain=1.0)
        rows.append(
            PrivacyTradeoffRow(
                floor=floor,
                worst_leak_bits=loss.worst_bits,
                mean_interval=loss.mean_width,
                avg_bounding_messages=sum(messages) / len(messages),
                avg_request_ratio=sum(ratios) / len(ratios),
            )
        )
    return PrivacyTradeoffResult(rows=tuple(rows))


if __name__ == "__main__":
    print(run_privacy_tradeoff().format())
