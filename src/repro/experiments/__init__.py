"""The evaluation harness: one runner per figure/table of Section VI."""

from repro.experiments.harness import (
    ClusteringWorkloadResult,
    ExperimentSetup,
    run_clustering_workload,
)
from repro.experiments.workloads import sample_hosts
from repro.experiments.fig9_degree import Fig9Result, run_fig9
from repro.experiments.fig10_total_cost import Fig10Result, run_fig10
from repro.experiments.fig11_k import Fig11Result, run_fig11
from repro.experiments.fig12_requests import Fig12Result, run_fig12
from repro.experiments.fig13_bounding import Fig13Result, run_fig13
from repro.experiments.tables import table1_text

__all__ = [
    "ClusteringWorkloadResult",
    "ExperimentSetup",
    "Fig9Result",
    "Fig10Result",
    "Fig11Result",
    "Fig12Result",
    "Fig13Result",
    "run_clustering_workload",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "sample_hosts",
    "table1_text",
]
