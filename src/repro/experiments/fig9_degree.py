"""Figure 9: performance under various average WPG degrees.

Sweep M (the device connection cap) over {4, 8, 16, 32, 64}; for each M,
serve the same S cloaking requests with distributed t-Conn, kNN, and
centralized t-Conn, and record (a) the average communication cost and
(b) the average cloaked-region size.

Expected shapes (paper Figs. 9a/9b): kNN cheapest and flat in degree;
centralized t-Conn the cost upper bound (~|D|/S); distributed t-Conn in
between, growing moderately with density.  Both t-Conn variants' region
sizes are ~1/3 of kNN's and flat in degree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.reporting import format_series
from repro.experiments.harness import (
    ALGORITHMS,
    ClusteringWorkloadResult,
    ExperimentSetup,
    default_request_count,
    run_clustering_workload,
)
from repro.experiments.workloads import sample_hosts
from repro.graph.metrics import average_degree

PAPER_M_VALUES: tuple[int, ...] = (4, 8, 16, 32, 64)


@dataclass(frozen=True, slots=True)
class Fig9Result:
    """Series for both panels of Figure 9."""

    m_values: tuple[int, ...]
    avg_degrees: tuple[float, ...]
    workloads: dict[str, tuple[ClusteringWorkloadResult, ...]]

    def comm_cost_series(self) -> dict[str, list[float]]:
        """Per-algorithm average communication costs."""
        return {
            algorithm: [w.avg_comm_cost for w in runs]
            for algorithm, runs in self.workloads.items()
        }

    def cloaked_size_series(self) -> dict[str, list[float]]:
        """Per-algorithm average cloaked-region areas."""
        return {
            algorithm: [w.avg_cloaked_area for w in runs]
            for algorithm, runs in self.workloads.items()
        }

    def format(self) -> str:
        """Render the result as the benchmark-report text."""
        panel_a = format_series(
            "avg_degree",
            [round(d, 2) for d in self.avg_degrees],
            self.comm_cost_series(),
            title="Fig 9(a): avg communication cost vs avg degree",
        )
        panel_b = format_series(
            "avg_degree",
            [round(d, 2) for d in self.avg_degrees],
            self.cloaked_size_series(),
            title="Fig 9(b): avg cloaked region size vs avg degree",
        )
        return f"{panel_a}\n\n{panel_b}"


def run_fig9(
    setup: Optional[ExperimentSetup] = None,
    m_values: Sequence[int] = PAPER_M_VALUES,
    requests: Optional[int] = None,
    seed: int = 17,
) -> Fig9Result:
    """Regenerate Figure 9's series."""
    setup = setup if setup is not None else ExperimentSetup.paper_default()
    request_count = requests if requests is not None else default_request_count()
    degrees: list[float] = []
    workloads: dict[str, list[ClusteringWorkloadResult]] = {
        algorithm: [] for algorithm in ALGORITHMS
    }
    for m in m_values:
        config = setup.base_config.with_overrides(
            max_peers=m, request_count=request_count
        )
        graph = setup.graph(config)
        degrees.append(average_degree(graph))
        hosts = sample_hosts(graph, config.k, request_count, seed=seed)
        for algorithm in ALGORITHMS:
            workloads[algorithm].append(
                run_clustering_workload(setup, algorithm, config, hosts, graph=graph)
            )
    return Fig9Result(
        m_values=tuple(m_values),
        avg_degrees=tuple(degrees),
        workloads={alg: tuple(runs) for alg, runs in workloads.items()},
    )


if __name__ == "__main__":
    print(run_fig9().format())
