"""Robustness to noisy proximity measurements (beyond the paper's figures).

The paper's algorithms consume RSS *rankings* and its experiments use a
noise-free inverse-distance RSS model; real devices observe shadowed,
fading signals (its own Fig. 1 is genuinely noisy).  This experiment
quantifies what that costs: build the WPG under log-distance path loss
with increasing shadowing sigma, serve the same workload, and measure
how communication cost and cloaked size degrade relative to the
noise-free rankings.

Noise perturbs the rank order of near-equidistant peers; since the
clustering only needs *mutually close* groups, moderate shadowing should
(and does) leave the results largely intact — the concrete evidence
behind the paper's "robust under various proximity topologies" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.reporting import format_series
from repro.cloaking.p2p_engine import P2PCloakingSession
from repro.config import SimulationConfig
from repro.datasets import uniform_points
from repro.experiments.harness import (
    ClusteringWorkloadResult,
    ExperimentSetup,
    default_request_count,
    run_clustering_workload,
)
from repro.experiments.workloads import sample_hosts
from repro.graph.build import build_wpg
from repro.network.failures import FailurePlan
from repro.network.node import populate_network
from repro.network.reliability import ProtocolAbort, ReliabilityPolicy
from repro.network.simulator import PeerNetwork
from repro.radio.measurement import ProximityMeter
from repro.radio.rss import LogDistanceRSSModel

DEFAULT_SIGMAS: tuple[float, ...] = (0.0, 2.0, 4.0, 8.0)

DEFAULT_DROP_RATES: tuple[float, ...] = (0.0, 0.02, 0.05, 0.10)


@dataclass(frozen=True, slots=True)
class RobustnessResult:
    """Workload metrics per shadowing level."""

    sigmas: tuple[float, ...]
    workloads: tuple[ClusteringWorkloadResult, ...]

    def series(self) -> dict[str, list[float]]:
        """The named metric series of this result."""
        return {
            "avg comm cost": [w.avg_comm_cost for w in self.workloads],
            "avg cloaked size": [w.avg_cloaked_area for w in self.workloads],
            "failures": [float(w.failures) for w in self.workloads],
        }

    def format(self) -> str:
        """Render the result as the benchmark-report text."""
        return format_series(
            "shadowing sigma (dB)",
            list(self.sigmas),
            self.series(),
            title="Robustness: distributed t-Conn under noisy RSS rankings",
        )


def run_robustness(
    setup: Optional[ExperimentSetup] = None,
    sigmas: Sequence[float] = DEFAULT_SIGMAS,
    requests: Optional[int] = None,
    seed: int = 29,
) -> RobustnessResult:
    """Serve the same workload under increasing RSS shadowing."""
    setup = setup if setup is not None else ExperimentSetup.paper_default()
    request_count = requests if requests is not None else default_request_count()
    config = setup.base_config.with_overrides(request_count=request_count)
    workloads: list[ClusteringWorkloadResult] = []
    for sigma in sigmas:
        meter = ProximityMeter(
            setup.dataset,
            model=LogDistanceRSSModel(shadowing_sigma_db=sigma, seed=seed),
        )
        graph = build_wpg(setup.dataset, config.delta, config.max_peers, meter=meter)
        hosts = sample_hosts(graph, config.k, request_count, seed=seed)
        workloads.append(
            run_clustering_workload(setup, "t-conn", config, hosts, graph=graph)
        )
    return RobustnessResult(sigmas=tuple(sigmas), workloads=tuple(workloads))


@dataclass(frozen=True, slots=True)
class MessageLossResult:
    """Fault-tolerant runtime metrics per message-loss level.

    Every tuple is indexed by ``drop_rates``; ``requests`` is the
    per-level workload size.  ``avg_messages`` counts every transmitted
    leg (retransmissions included) per served request — its growth over
    the zero-loss column is the runtime's retry overhead.
    """

    drop_rates: tuple[float, ...]
    requests: int
    avg_messages: tuple[float, ...]
    retries_per_request: tuple[float, ...]
    abort_rates: tuple[float, ...]
    evictions: tuple[int, ...]
    messages_dropped: tuple[int, ...]

    def series(self) -> dict[str, list[float]]:
        """The named metric series of this result."""
        return {
            "avg messages": list(self.avg_messages),
            "retries per request": list(self.retries_per_request),
            "abort rate": list(self.abort_rates),
            "evictions": [float(e) for e in self.evictions],
        }

    def format(self) -> str:
        """Render the result as the benchmark-report text."""
        return format_series(
            "message drop probability",
            list(self.drop_rates),
            self.series(),
            title="Robustness: fault-tolerant runtime under message loss",
        )

    def to_json(self, users: int, k: int, seed: int) -> dict:
        """The BENCH-style JSON payload for this result."""
        return {
            "schema": "bench_message_loss/v1",
            "users": users,
            "k": k,
            "seed": seed,
            "requests": self.requests,
            "rates": [
                {
                    "drop_probability": rate,
                    "avg_messages": round(self.avg_messages[i], 2),
                    "retries_per_request": round(self.retries_per_request[i], 2),
                    "abort_rate": round(self.abort_rates[i], 4),
                    "evictions": self.evictions[i],
                    "messages_dropped": self.messages_dropped[i],
                }
                for i, rate in enumerate(self.drop_rates)
            ],
        }


def run_message_loss(
    drop_rates: Sequence[float] = DEFAULT_DROP_RATES,
    users: int = 300,
    requests: int = 40,
    k: int = 5,
    seed: int = 17,
) -> MessageLossResult:
    """Serve the same workload while the network loses more messages.

    Each loss level gets a fresh peer network with a seeded
    :class:`FailurePlan` and a fresh session under the default
    :class:`ReliabilityPolicy`, so the columns differ only in the
    injected loss.  The world is deliberately small: every adjacency
    fetch and bound verification is a simulated RPC, so this measures
    protocol overhead, not throughput.
    """
    dataset = uniform_points(users, seed=seed)
    config = SimulationConfig(k=k)
    graph = build_wpg(dataset, delta=0.09, max_peers=8)
    hosts = sample_hosts(graph, k, requests, seed=seed)
    avg_messages: list[float] = []
    retries_per_request: list[float] = []
    abort_rates: list[float] = []
    evictions: list[int] = []
    dropped: list[int] = []
    for rate in drop_rates:
        network = PeerNetwork(FailurePlan(drop_probability=rate, seed=seed))
        populate_network(network, graph, list(dataset.points))
        session = P2PCloakingSession(
            network,
            graph,
            dataset,
            config,
            reliability=ReliabilityPolicy(
                max_attempts=6, crash_after=3, max_reforms=10, seed=seed
            ),
        )
        aborted = 0
        for host in hosts:
            try:
                session.request(host)
            except ProtocolAbort:
                aborted += 1
        avg_messages.append(network.stats.sent / len(hosts))
        retries_per_request.append(session.transport.retries / len(hosts))
        abort_rates.append(aborted / len(hosts))
        evictions.append(len(session.evicted))
        dropped.append(network.stats.dropped)
    return MessageLossResult(
        drop_rates=tuple(drop_rates),
        requests=len(hosts),
        avg_messages=tuple(avg_messages),
        retries_per_request=tuple(retries_per_request),
        abort_rates=tuple(abort_rates),
        evictions=tuple(evictions),
        messages_dropped=tuple(dropped),
    )


if __name__ == "__main__":
    print(run_robustness().format())
    print(run_message_loss().format())
