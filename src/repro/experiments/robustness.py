"""Robustness to noisy proximity measurements (beyond the paper's figures).

The paper's algorithms consume RSS *rankings* and its experiments use a
noise-free inverse-distance RSS model; real devices observe shadowed,
fading signals (its own Fig. 1 is genuinely noisy).  This experiment
quantifies what that costs: build the WPG under log-distance path loss
with increasing shadowing sigma, serve the same workload, and measure
how communication cost and cloaked size degrade relative to the
noise-free rankings.

Noise perturbs the rank order of near-equidistant peers; since the
clustering only needs *mutually close* groups, moderate shadowing should
(and does) leave the results largely intact — the concrete evidence
behind the paper's "robust under various proximity topologies" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.reporting import format_series
from repro.experiments.harness import (
    ClusteringWorkloadResult,
    ExperimentSetup,
    default_request_count,
    run_clustering_workload,
)
from repro.experiments.workloads import sample_hosts
from repro.graph.build import build_wpg
from repro.radio.measurement import ProximityMeter
from repro.radio.rss import LogDistanceRSSModel

DEFAULT_SIGMAS: tuple[float, ...] = (0.0, 2.0, 4.0, 8.0)


@dataclass(frozen=True, slots=True)
class RobustnessResult:
    """Workload metrics per shadowing level."""

    sigmas: tuple[float, ...]
    workloads: tuple[ClusteringWorkloadResult, ...]

    def series(self) -> dict[str, list[float]]:
        """The named metric series of this result."""
        return {
            "avg comm cost": [w.avg_comm_cost for w in self.workloads],
            "avg cloaked size": [w.avg_cloaked_area for w in self.workloads],
            "failures": [float(w.failures) for w in self.workloads],
        }

    def format(self) -> str:
        """Render the result as the benchmark-report text."""
        return format_series(
            "shadowing sigma (dB)",
            list(self.sigmas),
            self.series(),
            title="Robustness: distributed t-Conn under noisy RSS rankings",
        )


def run_robustness(
    setup: Optional[ExperimentSetup] = None,
    sigmas: Sequence[float] = DEFAULT_SIGMAS,
    requests: Optional[int] = None,
    seed: int = 29,
) -> RobustnessResult:
    """Serve the same workload under increasing RSS shadowing."""
    setup = setup if setup is not None else ExperimentSetup.paper_default()
    request_count = requests if requests is not None else default_request_count()
    config = setup.base_config.with_overrides(request_count=request_count)
    workloads: list[ClusteringWorkloadResult] = []
    for sigma in sigmas:
        meter = ProximityMeter(
            setup.dataset,
            model=LogDistanceRSSModel(shadowing_sigma_db=sigma, seed=seed),
        )
        graph = build_wpg(setup.dataset, config.delta, config.max_peers, meter=meter)
        hosts = sample_hosts(graph, config.k, request_count, seed=seed)
        workloads.append(
            run_clustering_workload(setup, "t-conn", config, hosts, graph=graph)
        )
    return RobustnessResult(sigmas=tuple(sigmas), workloads=tuple(workloads))


if __name__ == "__main__":
    print(run_robustness().format())
