"""Hilbert space-filling curve encoding (substrate for the hilbASR baseline).

The paper's related work (Section II) discusses hilbASR [Ghinita et al.,
WWW'07]: sort all users by their position along a Hilbert curve and group
every k consecutive users — reciprocity for free and near-minimal
k-groups thanks to the curve's locality.  This module implements the
d = 2 Hilbert curve from scratch: the classic iterative rotate-and-flip
bit construction, both directions.

``hilbert_index`` maps a cell (x, y) on a 2^order x 2^order grid to its
position along the curve; ``hilbert_cell`` inverts it.  Both are exact
integer computations — the property tests assert the mapping is a
bijection and that consecutive indexes are adjacent cells (the locality
the baseline's region sizes rely on).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.geometry.point import Point

#: Default curve order: a 2^16 x 2^16 grid resolves ~1.5e-5 unit-square
#: cells, far finer than any cloaked region of interest.
DEFAULT_ORDER = 16


def _validate(order: int) -> int:
    if not 1 <= order <= 31:
        raise ConfigurationError(f"order must be in [1, 31], got {order}")
    return 1 << order


def hilbert_index(x: int, y: int, order: int = DEFAULT_ORDER) -> int:
    """Position of cell ``(x, y)`` along the order-``order`` Hilbert curve."""
    side = _validate(order)
    if not (0 <= x < side and 0 <= y < side):
        raise ConfigurationError(
            f"cell ({x}, {y}) outside the {side}x{side} grid"
        )
    index = 0
    step = side >> 1
    while step > 0:
        rx = 1 if (x & step) > 0 else 0
        ry = 1 if (y & step) > 0 else 0
        index += step * step * ((3 * rx) ^ ry)
        # Rotate the quadrant so the sub-curve is in standard orientation.
        if ry == 0:
            if rx == 1:
                x = step - 1 - x
                y = step - 1 - y
            x, y = y, x
        step >>= 1
    return index


def hilbert_cell(index: int, order: int = DEFAULT_ORDER) -> tuple[int, int]:
    """The cell at curve position ``index`` (inverse of :func:`hilbert_index`)."""
    side = _validate(order)
    if not 0 <= index < side * side:
        raise ConfigurationError(
            f"index {index} outside the curve of {side * side} cells"
        )
    x = y = 0
    remaining = index
    step = 1
    while step < side:
        rx = 1 & (remaining // 2)
        ry = 1 & (remaining ^ rx)
        if ry == 0:
            if rx == 1:
                x = step - 1 - x
                y = step - 1 - y
            x, y = y, x
        x += step * rx
        y += step * ry
        remaining //= 4
        step <<= 1
    return x, y


def point_to_index(point: Point, order: int = DEFAULT_ORDER) -> int:
    """Hilbert position of a unit-square point (clamped to the grid)."""
    side = _validate(order)
    x = min(max(int(point.x * side), 0), side - 1)
    y = min(max(int(point.y * side), 0), side - 1)
    return hilbert_index(x, y, order)
