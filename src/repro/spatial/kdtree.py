"""A 2-d tree (k-d tree for k=2) built from scratch.

The grid index is the default; the k-d tree exists as an alternative with
better worst-case behaviour on highly skewed data (dense urban clusters in
the California-like dataset leave many grid cells empty while a few
overflow).  Both indexes answer the same queries, and the test suite
cross-validates them against brute force and each other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(slots=True)
class _Node:
    point_id: int
    axis: int
    left: Optional["_Node"]
    right: Optional["_Node"]


class KDTree:
    """A static 2-d tree over a sequence of points.

    The tree is built once by median splitting (O(n log n)) and is not
    updatable; the simulated populations are static snapshots, matching the
    paper's setup where each POI "represents a user standing right at its
    coordinates".
    """

    def __init__(self, points: Sequence[Point]) -> None:
        self._points = list(points)
        ids = list(range(len(self._points)))
        self._root = self._build(ids, depth=0)

    def __len__(self) -> int:
        return len(self._points)

    def point(self, idx: int) -> Point:
        """The point stored under id ``idx``."""
        return self._points[idx]

    def _build(self, ids: list[int], depth: int) -> Optional[_Node]:
        if not ids:
            return None
        axis = depth % 2
        ids.sort(key=lambda i: self._points[i].coordinate(axis))
        mid = len(ids) // 2
        return _Node(
            point_id=ids[mid],
            axis=axis,
            left=self._build(ids[:mid], depth + 1),
            right=self._build(ids[mid + 1 :], depth + 1),
        )

    # -- queries -------------------------------------------------------------

    def query_rect(self, rect: Rect) -> list[int]:
        """Ids of all points inside the closed rectangle ``rect``."""
        result: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            point = self._points[node.point_id]
            if rect.contains(point):
                result.append(node.point_id)
            coord = point.coordinate(node.axis)
            lo = rect.x_min if node.axis == 0 else rect.y_min
            hi = rect.x_max if node.axis == 0 else rect.y_max
            if lo <= coord:
                stack.append(node.left)
            if coord <= hi:
                stack.append(node.right)
        return result

    def query_radius(self, center: Point, radius: float) -> list[int]:
        """Ids of all points within ``radius`` of ``center`` (inclusive)."""
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        r2 = radius * radius
        result: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            point = self._points[node.point_id]
            if center.squared_distance_to(point) <= r2:
                result.append(node.point_id)
            delta = center.coordinate(node.axis) - point.coordinate(node.axis)
            if delta - radius <= 0:
                stack.append(node.left)
            if delta + radius >= 0:
                stack.append(node.right)
        return result

    def nearest_neighbors(
        self, center: Point, count: int, max_radius: float | None = None
    ) -> list[int]:
        """Ids of the ``count`` nearest points to ``center``, nearest first.

        Branch-and-bound descent keeping a bounded best list.  Points
        farther than ``max_radius`` are excluded.
        """
        if count <= 0:
            return []
        limit = max_radius if max_radius is not None else math.inf
        best: list[tuple[float, int]] = []  # (squared distance, id), sorted

        def visit(node: Optional[_Node]) -> None:
            if node is None:
                return
            point = self._points[node.point_id]
            d2 = center.squared_distance_to(point)
            if d2 <= limit * limit:
                self._insert_best(best, (d2, node.point_id), count)
            delta = center.coordinate(node.axis) - point.coordinate(node.axis)
            near, far = (node.left, node.right) if delta <= 0 else (node.right, node.left)
            visit(near)
            # The far side can only help if the splitting plane is closer
            # than the current k-th best (or we lack k answers).
            plane_d2 = delta * delta
            if len(best) < count or plane_d2 <= best[-1][0]:
                if plane_d2 <= limit * limit:
                    visit(far)

        visit(self._root)
        return [idx for _, idx in best]

    @staticmethod
    def _insert_best(
        best: list[tuple[float, int]], item: tuple[float, int], count: int
    ) -> None:
        # Insertion sort into a tiny list; count is small (M <= 64).
        lo, hi = 0, len(best)
        while lo < hi:
            mid = (lo + hi) // 2
            if best[mid] < item:
                lo = mid + 1
            else:
                hi = mid
        best.insert(lo, item)
        if len(best) > count:
            best.pop()
