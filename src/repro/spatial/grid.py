"""Uniform grid index over the unit square.

The grid is the workhorse index of this library: proximity-graph
construction needs "all users within distance delta" for every user, and
the LBS server needs "all POIs inside a rectangle".  A uniform grid with
cell size close to delta answers both in expected O(result size).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class GridIndex:
    """A uniform grid over ``bounds`` bucketing point ids by cell.

    Parameters
    ----------
    points:
        The indexed points; their position in this sequence is their id.
    cell_size:
        Edge length of a grid cell.  For radius queries of radius ``r``,
        ``cell_size`` around ``r`` gives the best constant factors.
    bounds:
        The indexed area; defaults to the unit square.  Points outside the
        bounds are clamped into the boundary cells, so indexing never fails.
    """

    def __init__(
        self,
        points: Sequence[Point],
        cell_size: float,
        bounds: Rect | None = None,
    ) -> None:
        if cell_size <= 0:
            raise ConfigurationError(f"cell_size must be positive, got {cell_size}")
        self._points = list(points)
        self._bounds = bounds if bounds is not None else Rect.unit_square()
        self._cell_size = cell_size
        self._nx = max(1, math.ceil(self._bounds.width / cell_size))
        self._ny = max(1, math.ceil(self._bounds.height / cell_size))
        # Both representations are built lazily on first use: the scalar
        # queries walk a dict of cell -> point ids, the batch queries flat
        # CSR arrays.  Either workload pays only for what it touches.
        self._cells_dict: dict[tuple[int, int], list[int]] | None = None
        self._bulk: (
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
            | None
        ) = None

    def __len__(self) -> int:
        return len(self._points)

    @property
    def cell_size(self) -> float:
        """Edge length of one grid cell."""
        return self._cell_size

    @property
    def shape(self) -> tuple[int, int]:
        """Number of cells along x and y."""
        return (self._nx, self._ny)

    def point(self, idx: int) -> Point:
        """The point stored under id ``idx``."""
        return self._points[idx]

    def _cell_of(self, point: Point) -> tuple[int, int]:
        cx = int((point.x - self._bounds.x_min) / self._cell_size)
        cy = int((point.y - self._bounds.y_min) / self._cell_size)
        return (min(max(cx, 0), self._nx - 1), min(max(cy, 0), self._ny - 1))

    @property
    def _cells(self) -> dict[tuple[int, int], list[int]]:
        if self._cells_dict is None:
            cells: dict[tuple[int, int], list[int]] = {}
            for idx, point in enumerate(self._points):
                cells.setdefault(self._cell_of(point), []).append(idx)
            self._cells_dict = cells
        return self._cells_dict

    def _cells_overlapping(self, rect: Rect) -> Iterable[tuple[int, int]]:
        lo_x, lo_y = self._cell_of(Point(rect.x_min, rect.y_min))
        hi_x, hi_y = self._cell_of(Point(rect.x_max, rect.y_max))
        for cx in range(lo_x, hi_x + 1):
            for cy in range(lo_y, hi_y + 1):
                yield (cx, cy)

    # -- queries -------------------------------------------------------------

    def query_rect(self, rect: Rect) -> list[int]:
        """Ids of all points inside the closed rectangle ``rect``."""
        result: list[int] = []
        for cell in self._cells_overlapping(rect):
            for idx in self._cells.get(cell, ()):
                if rect.contains(self._points[idx]):
                    result.append(idx)
        return result

    def count_rect(self, rect: Rect) -> int:
        """Number of points inside ``rect`` (no id materialisation)."""
        count = 0
        for cell in self._cells_overlapping(rect):
            for idx in self._cells.get(cell, ()):
                if rect.contains(self._points[idx]):
                    count += 1
        return count

    def query_radius(self, center: Point, radius: float) -> list[int]:
        """Ids of all points within ``radius`` of ``center`` (inclusive).

        The center point itself is included when it is indexed.
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        box = Rect(
            center.x - radius, center.x + radius, center.y - radius, center.y + radius
        )
        r2 = radius * radius
        result: list[int] = []
        for cell in self._cells_overlapping(box):
            for idx in self._cells.get(cell, ()):
                if center.squared_distance_to(self._points[idx]) <= r2:
                    result.append(idx)
        return result

    def nearest_neighbors(
        self, center: Point, count: int, max_radius: float | None = None
    ) -> list[int]:
        """Ids of the ``count`` nearest points to ``center``, nearest first.

        Points at distance greater than ``max_radius`` are never returned.
        If the index holds fewer eligible points than ``count``, all of them
        are returned.  Expanding ring search: candidates are gathered from
        cells in growing square rings until the answer is provably complete.
        """
        if count <= 0:
            return []
        limit = max_radius if max_radius is not None else math.inf
        ccx, ccy = self._cell_of(center)
        best: list[tuple[float, int]] = []
        max_ring = max(self._nx, self._ny)
        for ring in range(0, max_ring + 1):
            # Points in ring `ring` are at least (ring - 1) * cell_size away
            # from the center; once that lower bound exceeds the radius
            # limit, no further ring can contribute, regardless of whether
            # outer rings still hold (out-of-range) points.
            if (ring - 1) * self._cell_size > limit:
                break
            # Everything indexed is already gathered: the remaining rings
            # are provably empty (sparse populations would otherwise force
            # a full-grid walk when `count` exceeds the population).
            if len(best) == len(self._points):
                break
            # Gather the cells forming this ring around the center cell.
            for cx, cy in self._ring_cells(ccx, ccy, ring):
                for idx in self._cells.get((cx, cy), ()):
                    d2 = center.squared_distance_to(self._points[idx])
                    if d2 <= limit * limit:
                        best.append((d2, idx))
            # Points in rings > `ring` are at least (ring) * cell_size away
            # from the center, so once we hold `count` answers closer than
            # that lower bound, the result is complete.
            if len(best) >= count:
                best.sort()
                kth_dist = math.sqrt(best[count - 1][0])
                if kth_dist <= ring * self._cell_size:
                    return [idx for _, idx in best[:count]]
        best.sort()
        return [idx for _, idx in best[:count]]

    # -- batch queries --------------------------------------------------------

    def _bulk_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flat array views of the index, built once on first batch query.

        Returns ``(coords, bucket_counts, bucket_indptr, bucket_points,
        bucket_coords)``: point coordinates as an ``(n, 2)`` array, the
        per-cell point count and CSR layout over row-major cell ids
        ``cx * ny + cy`` with each cell's points in insertion (ascending
        id) order — the same order the scalar queries scan them in — and
        the coordinates permuted into that bucket order (``(2, n)``,
        per-axis contiguous) so candidate gathers stream sequentially
        instead of hopping the heap.
        """
        if self._bulk is None:
            n = len(self._points)
            coords = np.array(
                [(p.x, p.y) for p in self._points], dtype=float
            ).reshape(n, 2)
            cx, cy = self._cell_coords(coords[:, 0], coords[:, 1])
            cell_ids = cx * self._ny + cy
            bucket_counts = np.bincount(cell_ids, minlength=self._nx * self._ny)
            bucket_indptr = np.concatenate(
                ([0], np.cumsum(bucket_counts))
            ).astype(np.int64)
            bucket_points = np.argsort(cell_ids, kind="stable").astype(np.int64)
            bucket_coords = np.ascontiguousarray(coords[bucket_points].T)
            self._bulk = (
                coords,
                bucket_counts,
                bucket_indptr,
                bucket_points,
                bucket_coords,
            )
        return self._bulk

    def _cell_coords(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`_cell_of`: clamped cell coordinates per point."""
        cx = ((xs - self._bounds.x_min) / self._cell_size).astype(np.int64)
        cy = ((ys - self._bounds.y_min) / self._cell_size).astype(np.int64)
        np.clip(cx, 0, self._nx - 1, out=cx)
        np.clip(cy, 0, self._ny - 1, out=cy)
        return cx, cy

    def points_array(self) -> np.ndarray:
        """The indexed coordinates as an ``(n, 2)`` float array (shared)."""
        return self._bulk_arrays()[0]

    def cell_bucket_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR bucket layout ``(indptr, point_ids)`` over row-major cell ids.

        ``point_ids[indptr[c]:indptr[c + 1]]`` are the points of cell
        ``c = cx * ny + cy`` in ascending id order.
        """
        _, _, bucket_indptr, bucket_points, _ = self._bulk_arrays()
        return bucket_indptr, bucket_points

    def batch_query_radius(
        self, radius: float, centers: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """All radius queries at once: CSR ``(indptr, neighbor_ids)``.

        ``neighbor_ids[indptr[i]:indptr[i + 1]]`` are the indexed points
        within ``radius`` of center ``i`` — by default every indexed point
        is a center, which is exactly the all-pairs query WPG construction
        needs.  The per-center result equals :meth:`query_radius` for the
        same center, in the same order (cells row-major, points by id), so
        scalar and batch callers can be cross-validated element-wise.

        ``centers`` may override the query centers with an ``(m, 2)``
        coordinate array.  The sweep enumerates cell offsets, so it is
        efficient when ``radius`` is within a small multiple of
        ``cell_size`` (the WPG regime ``cell_size == delta``).
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        (
            coords,
            bucket_counts,
            bucket_indptr,
            bucket_points,
            bucket_coords,
        ) = self._bulk_arrays()
        centers_xy = coords if centers is None else np.asarray(centers, dtype=float)
        m = len(centers_xy)
        xs = np.ascontiguousarray(centers_xy[:, 0])
        ys = np.ascontiguousarray(centers_xy[:, 1])
        bucket_xs, bucket_ys = bucket_coords
        r2 = radius * radius
        # The cells overlapping each center's bounding box, computed exactly
        # like the scalar path (box corners through the clamped cell map).
        lo_x, lo_y = self._cell_coords(xs - radius, ys - radius)
        hi_x, hi_y = self._cell_coords(xs + radius, ys + radius)
        span_x = hi_x - lo_x
        span_y = hi_y - lo_y
        center_chunks: list[np.ndarray] = []
        cand_chunks: list[np.ndarray] = []
        # Offsets enumerated x-major to mirror _cells_overlapping's order;
        # the stable sort below then restores per-center cell order.
        for i in range(int(span_x.max()) + 1 if m else 0):
            for j in range(int(span_y.max()) + 1 if m else 0):
                valid = np.flatnonzero((i <= span_x) & (j <= span_y))
                if len(valid) == 0:
                    continue
                cell_ids = (lo_x[valid] + i) * self._ny + (lo_y[valid] + j)
                counts = bucket_counts[cell_ids]
                occupied = counts > 0
                valid, cell_ids, counts = (
                    valid[occupied],
                    cell_ids[occupied],
                    counts[occupied],
                )
                if len(valid) == 0:
                    continue
                total = int(counts.sum())
                # Ragged gather: positions within each bucket segment.
                # Candidate reads are near-sequential in bucket order, so
                # the distance filter streams instead of random-gathering.
                ends = np.cumsum(counts)
                cand_pos = np.repeat(bucket_indptr[cell_ids], counts) + (
                    np.arange(total) - np.repeat(ends - counts, counts)
                )
                dx = np.repeat(xs[valid], counts) - bucket_xs[cand_pos]
                dy = np.repeat(ys[valid], counts) - bucket_ys[cand_pos]
                keep = dx * dx + dy * dy <= r2
                cand_chunks.append(bucket_points[cand_pos[keep]])
                center_chunks.append(np.repeat(valid, counts)[keep])
        if not cand_chunks:
            return np.zeros(m + 1, dtype=np.int64), np.zeros(0, dtype=np.int64)
        cen = np.concatenate(center_chunks)
        cand = np.concatenate(cand_chunks)
        order = np.argsort(cen, kind="stable")
        cen, cand = cen[order], cand[order]
        indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(cen, minlength=m)))
        ).astype(np.int64)
        return indptr, cand

    def _ring_cells(
        self, ccx: int, ccy: int, ring: int
    ) -> Iterable[tuple[int, int]]:
        if ring == 0:
            if 0 <= ccx < self._nx and 0 <= ccy < self._ny:
                yield (ccx, ccy)
            return
        lo_x, hi_x = ccx - ring, ccx + ring
        lo_y, hi_y = ccy - ring, ccy + ring
        for cx in range(lo_x, hi_x + 1):
            for cy in (lo_y, hi_y):
                if 0 <= cx < self._nx and 0 <= cy < self._ny:
                    yield (cx, cy)
        for cy in range(lo_y + 1, hi_y):
            for cx in (lo_x, hi_x):
                if 0 <= cx < self._nx and 0 <= cy < self._ny:
                    yield (cx, cy)
