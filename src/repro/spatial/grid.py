"""Uniform grid index over the unit square.

The grid is the workhorse index of this library: proximity-graph
construction needs "all users within distance delta" for every user, and
the LBS server needs "all POIs inside a rectangle".  A uniform grid with
cell size close to delta answers both in expected O(result size).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class GridIndex:
    """A uniform grid over ``bounds`` bucketing point ids by cell.

    Parameters
    ----------
    points:
        The indexed points; their position in this sequence is their id.
    cell_size:
        Edge length of a grid cell.  For radius queries of radius ``r``,
        ``cell_size`` around ``r`` gives the best constant factors.
    bounds:
        The indexed area; defaults to the unit square.  Points outside the
        bounds are clamped into the boundary cells, so indexing never fails.
    """

    def __init__(
        self,
        points: Sequence[Point],
        cell_size: float,
        bounds: Rect | None = None,
    ) -> None:
        if cell_size <= 0:
            raise ConfigurationError(f"cell_size must be positive, got {cell_size}")
        self._points = list(points)
        self._bounds = bounds if bounds is not None else Rect.unit_square()
        self._cell_size = cell_size
        self._nx = max(1, math.ceil(self._bounds.width / cell_size))
        self._ny = max(1, math.ceil(self._bounds.height / cell_size))
        self._cells: dict[tuple[int, int], list[int]] = {}
        for idx, point in enumerate(self._points):
            self._cells.setdefault(self._cell_of(point), []).append(idx)

    def __len__(self) -> int:
        return len(self._points)

    @property
    def cell_size(self) -> float:
        """Edge length of one grid cell."""
        return self._cell_size

    @property
    def shape(self) -> tuple[int, int]:
        """Number of cells along x and y."""
        return (self._nx, self._ny)

    def point(self, idx: int) -> Point:
        """The point stored under id ``idx``."""
        return self._points[idx]

    def _cell_of(self, point: Point) -> tuple[int, int]:
        cx = int((point.x - self._bounds.x_min) / self._cell_size)
        cy = int((point.y - self._bounds.y_min) / self._cell_size)
        return (min(max(cx, 0), self._nx - 1), min(max(cy, 0), self._ny - 1))

    def _cells_overlapping(self, rect: Rect) -> Iterable[tuple[int, int]]:
        lo_x, lo_y = self._cell_of(Point(rect.x_min, rect.y_min))
        hi_x, hi_y = self._cell_of(Point(rect.x_max, rect.y_max))
        for cx in range(lo_x, hi_x + 1):
            for cy in range(lo_y, hi_y + 1):
                yield (cx, cy)

    # -- queries -------------------------------------------------------------

    def query_rect(self, rect: Rect) -> list[int]:
        """Ids of all points inside the closed rectangle ``rect``."""
        result: list[int] = []
        for cell in self._cells_overlapping(rect):
            for idx in self._cells.get(cell, ()):
                if rect.contains(self._points[idx]):
                    result.append(idx)
        return result

    def count_rect(self, rect: Rect) -> int:
        """Number of points inside ``rect`` (no id materialisation)."""
        count = 0
        for cell in self._cells_overlapping(rect):
            for idx in self._cells.get(cell, ()):
                if rect.contains(self._points[idx]):
                    count += 1
        return count

    def query_radius(self, center: Point, radius: float) -> list[int]:
        """Ids of all points within ``radius`` of ``center`` (inclusive).

        The center point itself is included when it is indexed.
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        box = Rect(
            center.x - radius, center.x + radius, center.y - radius, center.y + radius
        )
        r2 = radius * radius
        result: list[int] = []
        for cell in self._cells_overlapping(box):
            for idx in self._cells.get(cell, ()):
                if center.squared_distance_to(self._points[idx]) <= r2:
                    result.append(idx)
        return result

    def nearest_neighbors(
        self, center: Point, count: int, max_radius: float | None = None
    ) -> list[int]:
        """Ids of the ``count`` nearest points to ``center``, nearest first.

        Points at distance greater than ``max_radius`` are never returned.
        If the index holds fewer eligible points than ``count``, all of them
        are returned.  Expanding ring search: candidates are gathered from
        cells in growing square rings until the answer is provably complete.
        """
        if count <= 0:
            return []
        limit = max_radius if max_radius is not None else math.inf
        ccx, ccy = self._cell_of(center)
        best: list[tuple[float, int]] = []
        max_ring = max(self._nx, self._ny)
        for ring in range(0, max_ring + 1):
            # Gather the cells forming this ring around the center cell.
            added_any = False
            for cx, cy in self._ring_cells(ccx, ccy, ring):
                for idx in self._cells.get((cx, cy), ()):
                    d2 = center.squared_distance_to(self._points[idx])
                    if d2 <= limit * limit:
                        best.append((d2, idx))
                        added_any = True
            # Points in rings > `ring` are at least (ring) * cell_size away
            # from the center, so once we hold `count` answers closer than
            # that lower bound, the result is complete.
            if len(best) >= count:
                best.sort()
                kth_dist = math.sqrt(best[count - 1][0])
                if kth_dist <= ring * self._cell_size:
                    return [idx for _, idx in best[:count]]
            if ring * self._cell_size > limit and not added_any:
                break
        best.sort()
        return [idx for _, idx in best[:count]]

    def _ring_cells(
        self, ccx: int, ccy: int, ring: int
    ) -> Iterable[tuple[int, int]]:
        if ring == 0:
            if 0 <= ccx < self._nx and 0 <= ccy < self._ny:
                yield (ccx, ccy)
            return
        lo_x, hi_x = ccx - ring, ccx + ring
        lo_y, hi_y = ccy - ring, ccy + ring
        for cx in range(lo_x, hi_x + 1):
            for cy in (lo_y, hi_y):
                if 0 <= cx < self._nx and 0 <= cy < self._ny:
                    yield (cx, cy)
        for cy in range(lo_y + 1, hi_y):
            for cx in (lo_x, hi_x):
                if 0 <= cx < self._nx and 0 <= cy < self._ny:
                    yield (cx, cy)
