"""Uniform grid index over the unit square.

The grid is the workhorse index of this library: proximity-graph
construction needs "all users within distance delta" for every user, and
the LBS server needs "all POIs inside a rectangle".  A uniform grid with
cell size close to delta answers both in expected O(result size).
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class GridIndex:
    """A uniform grid over ``bounds`` bucketing point ids by cell.

    Parameters
    ----------
    points:
        The indexed points; their position in this sequence is their id.
    cell_size:
        Edge length of a grid cell.  For radius queries of radius ``r``,
        ``cell_size`` around ``r`` gives the best constant factors.
    bounds:
        The indexed area; defaults to the unit square.  Points outside the
        bounds are clamped into the boundary cells, so indexing never fails.

    The index is mutable: :meth:`insert`, :meth:`remove` and :meth:`move`
    update a live population in place, patching the cell buckets and the
    cached batch arrays incrementally instead of rebuilding — the churn
    runtime's foundation.  Ids are stable: a removed id leaves a *hole*
    (never reused, never returned by queries) so every other user keeps
    its id.
    """

    def __init__(
        self,
        points: Sequence[Point],
        cell_size: float,
        bounds: Rect | None = None,
    ) -> None:
        if cell_size <= 0:
            raise ConfigurationError(f"cell_size must be positive, got {cell_size}")
        self._points: list[Point | None] = list(points)
        self._live = len(self._points)
        self._bounds = bounds if bounds is not None else Rect.unit_square()
        self._cell_size = cell_size
        self._nx = max(1, math.ceil(self._bounds.width / cell_size))
        self._ny = max(1, math.ceil(self._bounds.height / cell_size))
        # Both representations are built lazily on first use: the scalar
        # queries walk a dict of cell -> point ids, the batch queries flat
        # CSR arrays.  Either workload pays only for what it touches.
        self._cells_dict: dict[tuple[int, int], list[int]] | None = None
        # Batch-query state: per-slot coordinates and row-major cell ids
        # (capacity-doubled on insert, -1 marks a hole), plus the grouped
        # bucket arrays.  Mutations patch the buffers in O(1) and only
        # drop ``_buckets`` (regrouped lazily, pure numpy) when a point
        # actually changes cell.
        self._coords_buf: np.ndarray | None = None
        self._cell_ids_buf: np.ndarray | None = None
        self._buckets: (
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None
        ) = None

    def __len__(self) -> int:
        """Number of id slots (holes included); see :attr:`live_count`."""
        return len(self._points)

    @property
    def live_count(self) -> int:
        """Number of live (non-removed) points."""
        return self._live

    @property
    def cell_size(self) -> float:
        """Edge length of one grid cell."""
        return self._cell_size

    @property
    def shape(self) -> tuple[int, int]:
        """Number of cells along x and y."""
        return (self._nx, self._ny)

    def point(self, idx: int) -> Point:
        """The point stored under id ``idx``; removed ids raise."""
        point = self._points[idx]
        if point is None:
            raise ConfigurationError(f"point {idx} was removed from the index")
        return point

    def live_ids(self) -> list[int]:
        """All live point ids, ascending."""
        return [i for i, p in enumerate(self._points) if p is not None]

    def _cell_of(self, point: Point) -> tuple[int, int]:
        cx = int((point.x - self._bounds.x_min) / self._cell_size)
        cy = int((point.y - self._bounds.y_min) / self._cell_size)
        return (min(max(cx, 0), self._nx - 1), min(max(cy, 0), self._ny - 1))

    @property
    def _cells(self) -> dict[tuple[int, int], list[int]]:
        if self._cells_dict is None:
            cells: dict[tuple[int, int], list[int]] = {}
            for idx, point in enumerate(self._points):
                if point is not None:
                    cells.setdefault(self._cell_of(point), []).append(idx)
            self._cells_dict = cells
        return self._cells_dict

    # -- mutation -------------------------------------------------------------

    def insert(self, point: Point) -> int:
        """Index a new point; returns its freshly assigned id."""
        idx = len(self._points)
        self._points.append(point)
        self._live += 1
        cell = self._cell_of(point)
        if self._cells_dict is not None:
            self._cells_dict.setdefault(cell, []).append(idx)
        if self._coords_buf is not None:
            self._ensure_capacity(idx + 1)
            self._coords_buf[idx, 0] = point.x
            self._coords_buf[idx, 1] = point.y
            self._cell_ids_buf[idx] = cell[0] * self._ny + cell[1]
            self._buckets = None
        return idx

    def remove(self, idx: int) -> None:
        """Remove point ``idx``; its id becomes a hole and is never reused."""
        point = self._points[idx]
        if point is None:
            raise ConfigurationError(f"point {idx} was already removed")
        self._points[idx] = None
        self._live -= 1
        if self._cells_dict is not None:
            cell = self._cell_of(point)
            bucket = self._cells_dict[cell]
            bucket.remove(idx)
            if not bucket:
                del self._cells_dict[cell]
        if self._coords_buf is not None:
            self._coords_buf[idx] = np.nan
            self._cell_ids_buf[idx] = -1
            self._buckets = None

    def move(self, idx: int, point: Point) -> None:
        """Update point ``idx`` to a new position, keeping its id.

        Moves within the same grid cell patch the cached batch arrays in
        place; only a cell change schedules a (lazy, vectorized) bucket
        regroup.
        """
        old = self._points[idx]
        if old is None:
            raise ConfigurationError(f"cannot move removed point {idx}")
        self._points[idx] = point
        old_cell = self._cell_of(old)
        new_cell = self._cell_of(point)
        if self._cells_dict is not None and new_cell != old_cell:
            bucket = self._cells_dict[old_cell]
            bucket.remove(idx)
            if not bucket:
                del self._cells_dict[old_cell]
            insort(self._cells_dict.setdefault(new_cell, []), idx)
        if self._coords_buf is None:
            return
        self._coords_buf[idx, 0] = point.x
        self._coords_buf[idx, 1] = point.y
        new_cell_id = new_cell[0] * self._ny + new_cell[1]
        if int(self._cell_ids_buf[idx]) != new_cell_id:
            self._cell_ids_buf[idx] = new_cell_id
            self._buckets = None
        elif self._buckets is not None:
            # Same cell: the bucket layout is untouched, only the point's
            # gathered coordinates move.  Its position inside the (id-
            # ascending) bucket segment is found by bisection.
            _counts, indptr, bucket_points, bucket_coords = self._buckets
            lo, hi = int(indptr[new_cell_id]), int(indptr[new_cell_id + 1])
            pos = lo + int(np.searchsorted(bucket_points[lo:hi], idx))
            bucket_coords[0, pos] = point.x
            bucket_coords[1, pos] = point.y

    def move_many(
        self, ids: Sequence[int], points: Sequence[Point]
    ) -> None:
        """Apply a batch of :meth:`move` updates (same order, same effect)."""
        if len(ids) != len(points):
            raise ConfigurationError(
                f"move_many got {len(ids)} ids but {len(points)} points"
            )
        for idx, point in zip(ids, points):
            self.move(idx, point)

    def _ensure_capacity(self, slots: int) -> None:
        """Grow the coordinate/cell-id buffers to hold ``slots`` slots."""
        capacity = len(self._cell_ids_buf)
        if capacity >= slots:
            return
        new_capacity = max(slots, 2 * capacity)
        coords = np.full((new_capacity, 2), np.nan, dtype=float)
        coords[:capacity] = self._coords_buf
        cell_ids = np.full(new_capacity, -1, dtype=np.int64)
        cell_ids[:capacity] = self._cell_ids_buf
        self._coords_buf = coords
        self._cell_ids_buf = cell_ids

    # -- persistence ----------------------------------------------------------

    def export_arrays(self) -> dict[str, np.ndarray]:
        """The index as plain numpy arrays (snapshot form).

        Returns ``coords`` (``(n, 2)`` float, NaN at hole slots),
        ``live`` (``(n,)`` bool mask — the authoritative hole marker),
        and the CSR cell buckets ``bucket_indptr``/``bucket_points``
        exactly as :meth:`cell_bucket_arrays` reports them, so a restore
        can skip the regroup.  Everything is copied: mutating the live
        index never corrupts a snapshot already taken.
        """
        n = len(self._points)
        coords = np.full((n, 2), np.nan, dtype=float)
        live = np.zeros(n, dtype=bool)
        for idx, point in enumerate(self._points):
            if point is not None:
                coords[idx, 0] = point.x
                coords[idx, 1] = point.y
                live[idx] = True
        bucket_indptr, bucket_points = self.cell_bucket_arrays()
        return {
            "coords": coords,
            "live": live,
            "bucket_indptr": bucket_indptr.copy(),
            "bucket_points": bucket_points.copy(),
        }

    @classmethod
    def from_export(
        cls,
        arrays: dict[str, np.ndarray],
        cell_size: float,
        bounds: Rect | None = None,
    ) -> "GridIndex":
        """Rebuild an index from :meth:`export_arrays` output.

        The restored index answers every query identically to the
        exported one — id holes included — and adopts the exported cell
        buckets directly, so no regroup runs on first batch query.
        ``cell_size``/``bounds`` must match the exported index's (they
        are not part of the array payload; callers persist them in their
        own metadata).
        """
        coords = np.asarray(arrays["coords"], dtype=float)
        live = np.asarray(arrays["live"], dtype=bool)
        n = len(coords)
        if coords.ndim != 2 or coords.shape[1] != 2 or live.shape != (n,):
            raise ConfigurationError(
                f"malformed grid export: coords {coords.shape}, "
                f"live {live.shape}"
            )
        index = cls([], cell_size, bounds=bounds)
        index._points = [
            Point(float(coords[i, 0]), float(coords[i, 1])) if live[i] else None
            for i in range(n)
        ]
        index._live = int(live.sum())
        bucket_indptr = np.asarray(arrays["bucket_indptr"], dtype=np.int64)
        bucket_points = np.asarray(arrays["bucket_points"], dtype=np.int64)
        if (
            len(bucket_indptr) != index._nx * index._ny + 1
            or len(bucket_points) != index._live
        ):
            raise ConfigurationError(
                "grid export disagrees with cell_size/bounds: "
                f"{len(bucket_indptr) - 1} buckets for a "
                f"{index._nx}x{index._ny} grid, {len(bucket_points)} "
                f"bucketed points for {index._live} live"
            )
        buf = coords.copy()
        cell_ids = np.full(n, -1, dtype=np.int64)
        if index._live:
            live_ids = np.flatnonzero(live)
            cx, cy = index._cell_coords(buf[live_ids, 0], buf[live_ids, 1])
            cell_ids[live_ids] = cx * index._ny + cy
        index._coords_buf = buf
        index._cell_ids_buf = cell_ids
        bucket_counts = np.diff(bucket_indptr)
        bucket_coords = np.ascontiguousarray(buf[bucket_points].T)
        index._buckets = (
            bucket_counts,
            bucket_indptr,
            bucket_points,
            bucket_coords,
        )
        return index

    def _cells_overlapping(self, rect: Rect) -> Iterable[tuple[int, int]]:
        lo_x, lo_y = self._cell_of(Point(rect.x_min, rect.y_min))
        hi_x, hi_y = self._cell_of(Point(rect.x_max, rect.y_max))
        for cx in range(lo_x, hi_x + 1):
            for cy in range(lo_y, hi_y + 1):
                yield (cx, cy)

    # -- queries -------------------------------------------------------------

    def query_rect(self, rect: Rect) -> list[int]:
        """Ids of all points inside the closed rectangle ``rect``."""
        result: list[int] = []
        for cell in self._cells_overlapping(rect):
            for idx in self._cells.get(cell, ()):
                if rect.contains(self._points[idx]):
                    result.append(idx)
        return result

    def count_rect(self, rect: Rect) -> int:
        """Number of points inside ``rect`` (no id materialisation)."""
        count = 0
        for cell in self._cells_overlapping(rect):
            for idx in self._cells.get(cell, ()):
                if rect.contains(self._points[idx]):
                    count += 1
        return count

    def query_radius(self, center: Point, radius: float) -> list[int]:
        """Ids of all points within ``radius`` of ``center`` (inclusive).

        The center point itself is included when it is indexed.
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        box = Rect(
            center.x - radius, center.x + radius, center.y - radius, center.y + radius
        )
        r2 = radius * radius
        result: list[int] = []
        for cell in self._cells_overlapping(box):
            for idx in self._cells.get(cell, ()):
                if center.squared_distance_to(self._points[idx]) <= r2:
                    result.append(idx)
        return result

    def nearest_neighbors(
        self, center: Point, count: int, max_radius: float | None = None
    ) -> list[int]:
        """Ids of the ``count`` nearest points to ``center``, nearest first.

        Points at distance greater than ``max_radius`` are never returned.
        If the index holds fewer eligible points than ``count``, all of them
        are returned.  Expanding ring search: candidates are gathered from
        cells in growing square rings until the answer is provably complete.
        """
        if count <= 0:
            return []
        limit = max_radius if max_radius is not None else math.inf
        ccx, ccy = self._cell_of(center)
        best: list[tuple[float, int]] = []
        max_ring = max(self._nx, self._ny)
        for ring in range(0, max_ring + 1):
            # Points in ring `ring` are at least (ring - 1) * cell_size away
            # from the center; once that lower bound exceeds the radius
            # limit, no further ring can contribute, regardless of whether
            # outer rings still hold (out-of-range) points.
            if (ring - 1) * self._cell_size > limit:
                break
            # Everything indexed is already gathered: the remaining rings
            # are provably empty (sparse populations would otherwise force
            # a full-grid walk when `count` exceeds the population).
            if len(best) == self._live:
                break
            # Gather the cells forming this ring around the center cell.
            for cx, cy in self._ring_cells(ccx, ccy, ring):
                for idx in self._cells.get((cx, cy), ()):
                    d2 = center.squared_distance_to(self._points[idx])
                    if d2 <= limit * limit:
                        best.append((d2, idx))
            # Points in rings > `ring` are at least (ring) * cell_size away
            # from the center, so once we hold `count` answers closer than
            # that lower bound, the result is complete.
            if len(best) >= count:
                best.sort()
                kth_dist = math.sqrt(best[count - 1][0])
                if kth_dist <= ring * self._cell_size:
                    return [idx for _, idx in best[:count]]
        best.sort()
        return [idx for _, idx in best[:count]]

    # -- batch queries --------------------------------------------------------

    def _bulk_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flat array views of the index, built once on first batch query.

        Returns ``(coords, bucket_counts, bucket_indptr, bucket_points,
        bucket_coords)``: point coordinates as an ``(n, 2)`` array (hole
        slots hold NaN), the per-cell point count and CSR layout over
        row-major cell ids ``cx * ny + cy`` with each cell's points in
        ascending id order — the same order the scalar queries scan them
        in — and the coordinates permuted into that bucket order
        (``(2, live)``, per-axis contiguous) so candidate gathers stream
        sequentially instead of hopping the heap.

        Mutations keep the coordinate/cell-id buffers patched in place;
        only a cell-membership change forces the (pure numpy) regroup
        below, so sustained same-cell movement never regroups at all.
        """
        n = len(self._points)
        if self._coords_buf is None:
            if self._live == n:
                coords = np.array(
                    [(p.x, p.y) for p in self._points], dtype=float
                ).reshape(n, 2)
                cx, cy = self._cell_coords(coords[:, 0], coords[:, 1])
                cell_ids = cx * self._ny + cy
            else:
                coords = np.full((n, 2), np.nan, dtype=float)
                cell_ids = np.full(n, -1, dtype=np.int64)
                live = self.live_ids()
                coords[live] = [
                    (self._points[i].x, self._points[i].y) for i in live
                ]
                cx, cy = self._cell_coords(coords[live, 0], coords[live, 1])
                cell_ids[live] = cx * self._ny + cy
            self._coords_buf = coords
            self._cell_ids_buf = cell_ids
            self._buckets = None
        coords = self._coords_buf[:n]
        if self._buckets is None:
            cell_ids = self._cell_ids_buf[:n]
            if self._live == n:
                order = np.argsort(cell_ids, kind="stable").astype(np.int64)
                counted = cell_ids
            else:
                live = np.flatnonzero(cell_ids >= 0)
                counted = cell_ids[live]
                order = live[np.argsort(counted, kind="stable")].astype(
                    np.int64
                )
            bucket_counts = np.bincount(counted, minlength=self._nx * self._ny)
            bucket_indptr = np.concatenate(
                ([0], np.cumsum(bucket_counts))
            ).astype(np.int64)
            bucket_coords = np.ascontiguousarray(coords[order].T)
            self._buckets = (bucket_counts, bucket_indptr, order, bucket_coords)
        bucket_counts, bucket_indptr, bucket_points, bucket_coords = self._buckets
        return (coords, bucket_counts, bucket_indptr, bucket_points, bucket_coords)

    def _cell_coords(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`_cell_of`: clamped cell coordinates per point."""
        cx = ((xs - self._bounds.x_min) / self._cell_size).astype(np.int64)
        cy = ((ys - self._bounds.y_min) / self._cell_size).astype(np.int64)
        np.clip(cx, 0, self._nx - 1, out=cx)
        np.clip(cy, 0, self._ny - 1, out=cy)
        return cx, cy

    def points_array(self) -> np.ndarray:
        """The indexed coordinates as an ``(n, 2)`` float array (shared).

        Row ``i`` tracks point ``i`` across :meth:`move` updates (in
        place); removed slots hold NaN.  :meth:`insert` may reallocate
        the buffer, so re-fetch after inserting.
        """
        return self._bulk_arrays()[0]

    def cell_bucket_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR bucket layout ``(indptr, point_ids)`` over row-major cell ids.

        ``point_ids[indptr[c]:indptr[c + 1]]`` are the points of cell
        ``c = cx * ny + cy`` in ascending id order.
        """
        _, _, bucket_indptr, bucket_points, _ = self._bulk_arrays()
        return bucket_indptr, bucket_points

    def batch_query_radius(
        self, radius: float, centers: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """All radius queries at once: CSR ``(indptr, neighbor_ids)``.

        ``neighbor_ids[indptr[i]:indptr[i + 1]]`` are the indexed points
        within ``radius`` of center ``i`` — by default every indexed point
        is a center, which is exactly the all-pairs query WPG construction
        needs.  The per-center result equals :meth:`query_radius` for the
        same center, in the same order (cells row-major, points by id), so
        scalar and batch callers can be cross-validated element-wise.

        ``centers`` may override the query centers with an ``(m, 2)``
        coordinate array.  The sweep enumerates cell offsets, so it is
        efficient when ``radius`` is within a small multiple of
        ``cell_size`` (the WPG regime ``cell_size == delta``).
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        if centers is None and self._live < len(self._points):
            raise ConfigurationError(
                "the index has removed slots; pass explicit centers to "
                "batch_query_radius"
            )
        (
            coords,
            bucket_counts,
            bucket_indptr,
            bucket_points,
            bucket_coords,
        ) = self._bulk_arrays()
        centers_xy = coords if centers is None else np.asarray(centers, dtype=float)
        m = len(centers_xy)
        xs = np.ascontiguousarray(centers_xy[:, 0])
        ys = np.ascontiguousarray(centers_xy[:, 1])
        bucket_xs, bucket_ys = bucket_coords
        r2 = radius * radius
        # The cells overlapping each center's bounding box, computed exactly
        # like the scalar path (box corners through the clamped cell map).
        lo_x, lo_y = self._cell_coords(xs - radius, ys - radius)
        hi_x, hi_y = self._cell_coords(xs + radius, ys + radius)
        span_x = hi_x - lo_x
        span_y = hi_y - lo_y
        center_chunks: list[np.ndarray] = []
        cand_chunks: list[np.ndarray] = []
        # Offsets enumerated x-major to mirror _cells_overlapping's order;
        # the stable sort below then restores per-center cell order.
        for i in range(int(span_x.max()) + 1 if m else 0):
            for j in range(int(span_y.max()) + 1 if m else 0):
                valid = np.flatnonzero((i <= span_x) & (j <= span_y))
                if len(valid) == 0:
                    continue
                cell_ids = (lo_x[valid] + i) * self._ny + (lo_y[valid] + j)
                counts = bucket_counts[cell_ids]
                occupied = counts > 0
                valid, cell_ids, counts = (
                    valid[occupied],
                    cell_ids[occupied],
                    counts[occupied],
                )
                if len(valid) == 0:
                    continue
                total = int(counts.sum())
                # Ragged gather: positions within each bucket segment.
                # Candidate reads are near-sequential in bucket order, so
                # the distance filter streams instead of random-gathering.
                ends = np.cumsum(counts)
                cand_pos = np.repeat(bucket_indptr[cell_ids], counts) + (
                    np.arange(total) - np.repeat(ends - counts, counts)
                )
                dx = np.repeat(xs[valid], counts) - bucket_xs[cand_pos]
                dy = np.repeat(ys[valid], counts) - bucket_ys[cand_pos]
                keep = dx * dx + dy * dy <= r2
                cand_chunks.append(bucket_points[cand_pos[keep]])
                center_chunks.append(np.repeat(valid, counts)[keep])
        if not cand_chunks:
            return np.zeros(m + 1, dtype=np.int64), np.zeros(0, dtype=np.int64)
        cen = np.concatenate(center_chunks)
        cand = np.concatenate(cand_chunks)
        order = np.argsort(cen, kind="stable")
        cen, cand = cen[order], cand[order]
        indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(cen, minlength=m)))
        ).astype(np.int64)
        return indptr, cand

    def _ring_cells(
        self, ccx: int, ccy: int, ring: int
    ) -> Iterable[tuple[int, int]]:
        if ring == 0:
            if 0 <= ccx < self._nx and 0 <= ccy < self._ny:
                yield (ccx, ccy)
            return
        lo_x, hi_x = ccx - ring, ccx + ring
        lo_y, hi_y = ccy - ring, ccy + ring
        for cx in range(lo_x, hi_x + 1):
            for cy in (lo_y, hi_y):
                if 0 <= cx < self._nx and 0 <= cy < self._ny:
                    yield (cx, cy)
        for cy in range(lo_y + 1, hi_y):
            for cx in (lo_x, hi_x):
                if 0 <= cx < self._nx and 0 <= cy < self._ny:
                    yield (cx, cy)
