"""Uniform facade over the spatial indexes.

Proximity-graph construction and the radio measurement layer only need two
queries — "who is within delta of me" and "my M nearest peers within
delta" — and should not care which index answers them.
"""

from __future__ import annotations

from typing import Literal, Protocol, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDTree

IndexKind = Literal["grid", "kdtree"]


class SpatialIndex(Protocol):
    """The query surface both concrete indexes implement."""

    def __len__(self) -> int: ...

    def point(self, idx: int) -> Point:
        """The point stored under id ``idx``."""
        ...

    def query_radius(self, center: Point, radius: float) -> list[int]:
        """Ids of points within ``radius`` of ``center``."""
        ...

    def nearest_neighbors(
        self, center: Point, count: int, max_radius: float | None = None
    ) -> list[int]:
        """Ids of the ``count`` nearest points, nearest first."""
        ...


class NeighborFinder:
    """Answers peer-discovery queries for a static user population.

    Parameters
    ----------
    points:
        User positions; position in the sequence is the user id.
    kind:
        Which index to use; ``"grid"`` (default) or ``"kdtree"``.
    cell_size:
        Grid cell size; only used for the grid index.  Callers building a
        WPG pass the communication range ``delta`` here.
    """

    def __init__(
        self,
        points: Sequence[Point],
        kind: IndexKind = "grid",
        cell_size: float = 0.002,
    ) -> None:
        self._index: SpatialIndex
        if kind == "grid":
            self._index = GridIndex(points, cell_size=cell_size)
        elif kind == "kdtree":
            self._index = KDTree(points)
        else:
            raise ConfigurationError(f"unknown index kind: {kind!r}")

    def __len__(self) -> int:
        return len(self._index)

    def point(self, idx: int) -> Point:
        """The point stored under id ``idx``."""
        return self._index.point(idx)

    def peers_in_range(self, user: int, delta: float) -> list[int]:
        """Ids of all users within communication range of ``user`` (excl. self)."""
        center = self._index.point(user)
        return [i for i in self._index.query_radius(center, delta) if i != user]

    def batch_peers_in_range(self, delta: float) -> tuple[np.ndarray, np.ndarray]:
        """Every user's delta-neighborhood at once: CSR ``(indptr, peers)``.

        ``peers[indptr[u]:indptr[u + 1]]`` equals ``peers_in_range(u, delta)``
        (self excluded, same order).  Only the grid index supports the
        batch sweep; a kd-tree-backed finder raises
        :class:`ConfigurationError`.
        """
        if not isinstance(self._index, GridIndex):
            raise ConfigurationError(
                "batch_peers_in_range requires the grid index "
                f"(got {type(self._index).__name__})"
            )
        indptr, nbrs = self._index.batch_query_radius(delta)
        n = len(self._index)
        counts = np.diff(indptr)
        users = np.repeat(np.arange(n, dtype=np.int64), counts)
        not_self = nbrs != users
        users, nbrs = users[not_self], nbrs[not_self]
        new_indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(users, minlength=n)))
        ).astype(np.int64)
        return new_indptr, nbrs

    def nearest_peers(self, user: int, count: int, delta: float) -> list[int]:
        """The ``count`` nearest users to ``user`` within ``delta``, nearest first.

        This models a device keeping connections to its strongest-signal
        peers, capped at the device limit M.
        """
        center = self._index.point(user)
        # Request one extra because the user itself is its own 1-NN.
        found = self._index.nearest_neighbors(center, count + 1, max_radius=delta)
        return [i for i in found if i != user][:count]
