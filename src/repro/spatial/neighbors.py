"""Uniform facade over the spatial indexes.

Proximity-graph construction and the radio measurement layer only need two
queries — "who is within delta of me" and "my M nearest peers within
delta" — and should not care which index answers them.
"""

from __future__ import annotations

from typing import Literal, Protocol, Sequence

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDTree

IndexKind = Literal["grid", "kdtree"]


class SpatialIndex(Protocol):
    """The query surface both concrete indexes implement."""

    def __len__(self) -> int: ...

    def point(self, idx: int) -> Point:
        """The point stored under id ``idx``."""
        ...

    def query_radius(self, center: Point, radius: float) -> list[int]:
        """Ids of points within ``radius`` of ``center``."""
        ...

    def nearest_neighbors(
        self, center: Point, count: int, max_radius: float | None = None
    ) -> list[int]:
        """Ids of the ``count`` nearest points, nearest first."""
        ...


class NeighborFinder:
    """Answers peer-discovery queries for a static user population.

    Parameters
    ----------
    points:
        User positions; position in the sequence is the user id.
    kind:
        Which index to use; ``"grid"`` (default) or ``"kdtree"``.
    cell_size:
        Grid cell size; only used for the grid index.  Callers building a
        WPG pass the communication range ``delta`` here.
    """

    def __init__(
        self,
        points: Sequence[Point],
        kind: IndexKind = "grid",
        cell_size: float = 0.002,
    ) -> None:
        self._index: SpatialIndex
        if kind == "grid":
            self._index = GridIndex(points, cell_size=cell_size)
        elif kind == "kdtree":
            self._index = KDTree(points)
        else:
            raise ConfigurationError(f"unknown index kind: {kind!r}")

    def __len__(self) -> int:
        return len(self._index)

    def point(self, idx: int) -> Point:
        """The point stored under id ``idx``."""
        return self._index.point(idx)

    def peers_in_range(self, user: int, delta: float) -> list[int]:
        """Ids of all users within communication range of ``user`` (excl. self)."""
        center = self._index.point(user)
        return [i for i in self._index.query_radius(center, delta) if i != user]

    def nearest_peers(self, user: int, count: int, delta: float) -> list[int]:
        """The ``count`` nearest users to ``user`` within ``delta``, nearest first.

        This models a device keeping connections to its strongest-signal
        peers, capped at the device limit M.
        """
        center = self._index.point(user)
        # Request one extra because the user itself is its own 1-NN.
        found = self._index.nearest_neighbors(center, count + 1, max_radius=delta)
        return [i for i in found if i != user][:count]
