"""Spatial indexes used to build proximity graphs and answer LBS queries."""

from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDTree
from repro.spatial.neighbors import NeighborFinder

__all__ = ["GridIndex", "KDTree", "NeighborFinder"]
