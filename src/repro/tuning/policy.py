"""The tuning policy: which knobs are live, and their safety bounds."""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class TuningPolicy:
    """Off-by-default switches for the engine's online tuning loop.

    The default-constructed policy disables everything: an engine built
    with it is bit-identical to one built without a policy at all (the
    ``sharing-off`` leg of every differential test).

    Parameters
    ----------
    share_regions:
        Proactive reciprocity-based region sharing: push cloaked
        regions into per-member cache slots and pre-compute each
        member's on-demand region at churn time.
    adapt_delta:
        Scale the granularity floor (``min_area``) per density cell —
        a no-op for engines with ``min_area == 0``.
    relax_k:
        Retry oracle-confirmed sub-k failures at a relaxed k′ down to
        the per-cell floor.
    k_floor:
        Hard lower bound for any relaxed k′ (never below 2: a cluster
        of one offers no anonymity).
    delta_scale_min:
        The tightest per-cell granularity scale; the planned scale
        lives in ``[delta_scale_min, 1]``.
    density_pivot:
        Cell occupancy at which adaptation starts.  ``None`` picks the
        mean occupancy over non-empty cells at plan time, which keeps
        the plan a pure function of the positions.
    """

    share_regions: bool = False
    adapt_delta: bool = False
    relax_k: bool = False
    k_floor: int = 2
    delta_scale_min: float = 0.25
    density_pivot: float | None = None

    def __post_init__(self) -> None:
        if self.k_floor < 2:
            raise ConfigurationError(
                f"k_floor must be >= 2 (k=1 is no anonymity), got {self.k_floor}"
            )
        if not 0.0 < self.delta_scale_min <= 1.0:
            raise ConfigurationError(
                f"delta_scale_min must be in (0, 1], got {self.delta_scale_min}"
            )
        if self.density_pivot is not None and self.density_pivot <= 0.0:
            raise ConfigurationError(
                f"density_pivot must be positive, got {self.density_pivot}"
            )

    def enabled(self) -> bool:
        """Whether any knob is live (False for the default policy)."""
        return self.share_regions or self.adapt_delta or self.relax_k

    def to_meta(self) -> dict:
        """JSON-ready payload (snapshot meta, service specs)."""
        return asdict(self)

    @classmethod
    def from_meta(cls, payload: dict) -> "TuningPolicy":
        """Inverse of :meth:`to_meta`; unknown keys are rejected."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - set of names
        extra = set(payload) - known
        if extra:
            raise ConfigurationError(
                f"unknown tuning policy keys: {sorted(extra)}"
            )
        return cls(**payload)
