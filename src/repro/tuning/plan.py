"""The δ-plan: per-density-cell tuning targets, derived from occupancy.

A :class:`DeltaPlan` is a pure function of the user positions and the
policy constants — no request history, no wall clock — which is what
lets a warm restart (snapshot + journal replay) rebuild the exact plan
the live engine was using, and lets the monotonicity property tests
quantify over the plan directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.geometry.point import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tuning.policy import TuningPolicy

Cell = tuple[int, int]


def cell_occupancy(
    points: Iterable[Point], cell_size: float
) -> dict[Cell, int]:
    """Live users per δ-cell over the unit square.

    Mirrors :class:`repro.spatial.grid.GridIndex` bucketing (row/column
    by floor division, clamped into the boundary cells) without needing
    the churn runtime to exist — the plan must be computable before the
    first move and after a restore alike.
    """
    n = max(1, math.ceil(1.0 / cell_size))
    cells: dict[Cell, int] = {}
    for point in points:
        cx = min(max(int(point.x / cell_size), 0), n - 1)
        cy = min(max(int(point.y / cell_size), 0), n - 1)
        key = (cx, cy)
        cells[key] = cells.get(key, 0) + 1
    return cells


@dataclass(frozen=True, slots=True)
class DeltaPlan:
    """Per-cell tuning targets for one population snapshot.

    ``scale(occupancy)`` is monotone non-increasing and bounded in
    ``[scale_min, 1]``: cells at or below the pivot occupancy keep the
    full granularity (scale 1); denser cells shrink hyperbolically —
    twice the pivot density halves the padding, floored at
    ``scale_min``.  ``relax_floor`` is the dual knob for k-relaxation:
    at or above the pivot no relaxation is allowed (a dense cell that
    fails sub-k is suspicious, not tunable), and the floor decays
    linearly with occupancy down to the policy's hard ``k_floor``.
    """

    cell_size: float
    pivot: float
    scale_min: float
    cells: Mapping[Cell, int] = field(default_factory=dict)

    def cell_of(self, point: Point) -> Cell:
        n = max(1, math.ceil(1.0 / self.cell_size))
        return (
            min(max(int(point.x / self.cell_size), 0), n - 1),
            min(max(int(point.y / self.cell_size), 0), n - 1),
        )

    def occupancy_at(self, point: Point) -> int:
        """Live users in ``point``'s cell (0 for an empty cell)."""
        return self.cells.get(self.cell_of(point), 0)

    def scale(self, occupancy: int) -> float:
        """Granularity scale for a cell of ``occupancy`` users."""
        if occupancy <= self.pivot:
            return 1.0
        return max(self.scale_min, self.pivot / occupancy)

    def scale_at(self, point: Point) -> float:
        return self.scale(self.occupancy_at(point))

    def delta_at(self, point: Point, base_delta: float) -> float:
        """The planned per-cell δ: never above ``base_delta``."""
        return base_delta * self.scale_at(point)

    def relax_floor(self, occupancy: int, k: int, k_floor: int) -> int:
        """Lowest k′ a relaxation may reach in a cell of ``occupancy``.

        Monotone non-decreasing in occupancy: ``k`` (no relaxation) at
        or above the pivot, down to ``k_floor`` as the cell empties.
        """
        if k <= k_floor:
            return k
        if occupancy >= self.pivot:
            return k
        return max(k_floor, math.ceil(k * occupancy / self.pivot))

    def relax_floor_at(self, point: Point, k: int, k_floor: int) -> int:
        return self.relax_floor(self.occupancy_at(point), k, k_floor)


def build_plan(
    points: Iterable[Point],
    cell_size: float,
    policy: "TuningPolicy",
    k: int,
) -> DeltaPlan:
    """Plan the tuning targets for the current positions.

    ``k`` is accepted for symmetry with the engine call site (the floor
    computation takes it per query); the plan itself depends only on
    the occupancy map and the policy constants.
    """
    cells = cell_occupancy(points, cell_size)
    if policy.density_pivot is not None:
        pivot = float(policy.density_pivot)
    elif cells:
        pivot = sum(cells.values()) / len(cells)
    else:
        pivot = 1.0
    return DeltaPlan(
        cell_size=cell_size,
        pivot=pivot,
        scale_min=policy.delta_scale_min,
        cells=cells,
    )
