"""Online adaptive tuning: proactive region sharing + density-driven knobs.

The ROADMAP's last open infrastructure item: the engine's δ and k are
fixed global constants, and under churn the region cache serves only a
few percent of requests because every move drains a whole cluster's
cached geometry.  This package closes both gaps without ever changing
an answer the untuned engine would have given:

* **Proactive region sharing** (:attr:`TuningPolicy.share_regions`) —
  the paper's reciprocity property says a cloaked region belongs to the
  *cluster*, not the requester, so the moment a region exists every
  member's answer is determined.  The engine pushes the region into a
  per-member slot at cloak time, and at churn time *pre-computes* each
  member's own on-demand region over the new positions (the progressive
  bounding protocol seeds at the requester's coordinate, so the region
  is requester-dependent — one slot per member keeps the answers
  bit-identical).  The first member served from a slot promotes its
  rect to the cluster's cached region, exactly as its on-demand miss
  would have.

* **Adaptive δ-granularity** (:attr:`TuningPolicy.adapt_delta`) — the
  WPG's δ is structural (changing it re-wires the graph for everyone),
  so the per-cell knob is the *granularity floor*: the minimum spatial
  extent a published region is padded to.  Denser cells need less
  padding for the same privacy, so the planned δ-scale is monotone
  non-increasing in cell occupancy; a tuned region is always contained
  in the untuned one and still covers every member.

* **Oracle-gated k-relaxation** (:attr:`TuningPolicy.relax_k`) — a
  request that fails sub-k is retried at a relaxed k′ only after the
  exact level-scan oracle (:func:`repro.verify.oracles.oracle_smallest_cluster`)
  confirms no k-valid cluster exists; if the oracle finds one, the
  failure is a defect and is re-raised, never masked.  k′ probes from
  k-1 down to a per-density-cell floor (dense cells never relax).

Everything is deterministic and replayable: the δ-plan is a pure
function of the current positions, shared slots are part of the durable
snapshot, and journal replay re-derives every re-share bit-exactly.
The differential test layer (``region-share-equal`` and
``tuning-sound`` in :mod:`repro.verify.invariants`) pins the soundness
story on fuzzed worlds.
"""

from repro.tuning.plan import DeltaPlan, build_plan, cell_occupancy
from repro.tuning.policy import TuningPolicy

__all__ = [
    "DeltaPlan",
    "TuningPolicy",
    "build_plan",
    "cell_occupancy",
]
