"""The end-to-end two-phase cloaking engine (paper Fig. 3).

A request from a host user flows:

1. If the host's cluster already has a cloaked region, reuse it (Fig. 3's
   shortcut) — zero cost.
2. Phase 1 — k-clustering, either at the centralized anonymizer or
   distributedly at the host (both phase-1 services share the interface
   ``request(host) -> ClusterResult``).
3. Phase 2 — secure bounding among the cluster's members produces the
   region; it is cached for the whole cluster (reciprocity: the region is
   *theirs*, not the host's).
4. The region goes into the service request; the cost of that request is
   the server layer's business (:mod:`repro.server.costs`).

The engine owns the simulation's god view (the dataset) only to *play*
the users during secure bounding — the clustering services never see a
coordinate, and the bounding protocol reveals only yes/no answers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Literal, Optional, Protocol, Sequence

import numpy as np

from repro import obs
from repro.config import SimulationConfig
from repro.datasets.base import MutablePointDataset, PointDataset
from repro.errors import ClusteringError, ConfigurationError, PersistError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs import names as metric
from repro.clustering.base import ClusterRegistry, ClusterResult
from repro.clustering.distributed import DistributedClustering
from repro.clustering.tree import TreeClustering
from repro.cloaking.anonymizer import CentralizedAnonymizer
from repro.cloaking.region import CloakedRegion
from repro.bounding.boxing import optimal_bounding_box, secure_bounding_box
from repro.bounding.policies import IncrementPolicy
from repro.bounding.presets import paper_policy
from repro.graph.cluster_tree import ClusterTree
from repro.graph.incremental import ChurnPatch, IncrementalWPG
from repro.graph.io import graph_from_arrays, graph_to_arrays
from repro.graph.wpg import WeightedProximityGraph
from repro.network.failures import FailurePlan
from repro.network.ledger import export_ledgers
from repro.network.node import populate_network
from repro.network.reliability import ProtocolAbort, ReliabilityPolicy, resolve
from repro.network.simulator import PeerNetwork
from repro.obs import trace as _trace
from repro.spatial.grid import GridIndex
from repro.tuning.plan import DeltaPlan, build_plan
from repro.tuning.policy import TuningPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only (no runtime import)
    from repro.persist.store import PersistentStore

Mode = Literal["distributed", "centralized"]

#: Cloaked-region area histogram buckets: powers of 4 up to the unit square.
_AREA_BUCKETS = tuple(4.0**exp for exp in range(-9, 1))

#: Churn dirty-set-size histogram buckets: powers of 4 up to 64k users.
_DIRTY_BUCKETS = tuple(4.0**exp for exp in range(0, 9))

#: Builds the per-direction increment policy for a cluster of a given size;
#: ``None`` selects the OPT baseline (exact bounding box, locations exposed).
PolicyBuilder = Optional[Callable[[int], IncrementPolicy]]


class ClusteringService(Protocol):
    """Phase 1: both the anonymizer and the distributed algorithm fit."""

    @property
    def registry(self):  # noqa: ANN201 - ClusterRegistry, avoids import cycle
        """The shared cluster-assignment registry."""
        ...

    def request(self, host: int) -> ClusterResult:
        """Serve one k-clustering request for ``host``."""
        ...


@dataclass(frozen=True, slots=True)
class CloakingResult:
    """Everything one cloaking request produced and cost."""

    host: int
    region: CloakedRegion
    cluster: ClusterResult
    clustering_messages: int
    bounding_messages: int
    region_from_cache: bool
    #: The region came out of a proactively shared per-member slot
    #: (repro.tuning); implies ``region_from_cache``.
    region_shared: bool = False
    #: Set to the relaxed k' when the request was served below the
    #: configured k after the exact oracle confirmed no k-valid cluster.
    relaxed_k: Optional[int] = None

    @property
    def status(self) -> str:
        """The request's canonical outcome tag (flight-recorder status)."""
        if self.region_shared:
            return "cache_hit_shared"
        if self.region_from_cache:
            return "cache_hit"
        if self.relaxed_k is not None:
            return "ok_relaxed"
        return "ok"

    @property
    def total_phase_messages(self) -> int:
        """Clustering plus bounding messages (excludes the service request)."""
        return self.clustering_messages + self.bounding_messages


class CloakingEngine:
    """Serves cloaking requests over a static population.

    Parameters
    ----------
    dataset:
        User positions (played during secure bounding).
    graph:
        The WPG over the same users.
    config:
        Table I parameters (k, costs).
    mode:
        ``"distributed"`` (Fig. 3 paths 2-3) or ``"centralized"`` (path 1).
    policy:
        Per-direction bounding policy: a paper policy name
        (``"linear"``, ``"exponential"``, ``"secure"``, ``"secure-exact"``),
        ``"optimal"`` for the OPT baseline, or a custom
        ``cluster_size -> IncrementPolicy`` callable.
    min_area:
        The *granularity* metric (Section II): if set, every cloaked
        region is expanded (centred, clipped to the unit square) until
        its area reaches this threshold — some services demand a minimum
        spatial extent on top of k-anonymity.
    clustering:
        Optional custom phase-1 service (overrides ``mode``), e.g. the
        hilbASR baseline or a message-level protocol.  The string
        ``"tree"`` opts into the cluster-tree fast path
        (:class:`~repro.clustering.tree.TreeClustering`): the closure
        reading of Algorithm 2 resolved on a persistent bottleneck
        cluster tree, maintained incrementally under :meth:`apply_moves`.
    reliability:
        The fault-tolerance knob.  ``None`` or a disabled policy (the
        default) keeps the analytic request path bit-identical to the
        failure-oblivious engine.  An *enabled* policy runs every
        request message-level over an internal peer network with
        retries, idempotent redelivery, crash eviction and graceful
        degradation — unrecoverable failures surface as a typed clean
        :class:`~repro.network.reliability.ProtocolAbort`.  Requires the
        distributed mode with a progressive policy preset.
    failure_plan:
        Failure injection for the internal network; only meaningful (and
        only accepted) together with an enabled ``reliability`` policy.
    tuning:
        The online adaptive-tuning policy (:mod:`repro.tuning`): opt-in
        proactive region sharing, per-density-cell granularity, and
        oracle-gated k-relaxation.  ``None`` (or the default policy)
        keeps the engine bit-identical to the untuned baseline.  Not
        supported together with an enabled ``reliability`` policy.
    """

    def __init__(
        self,
        dataset: PointDataset,
        graph: WeightedProximityGraph,
        config: SimulationConfig,
        mode: Mode = "distributed",
        policy: str | PolicyBuilder = "secure",
        min_area: float = 0.0,
        clustering: Optional[ClusteringService | str] = None,
        reliability: Optional[ReliabilityPolicy] = None,
        failure_plan: Optional[FailurePlan] = None,
        tuning: Optional[TuningPolicy] = None,
    ) -> None:
        if len(dataset) != graph.vertex_count:
            raise ConfigurationError(
                f"dataset has {len(dataset)} users but the WPG has "
                f"{graph.vertex_count} vertices"
            )
        if min_area < 0.0 or min_area > 1.0:
            raise ConfigurationError(
                f"min_area must be in [0, 1], got {min_area}"
            )
        self._min_area = min_area
        self._tuning = tuning if tuning is not None else TuningPolicy()
        # Per-member shared region slots (user -> (cluster members, rect))
        # and the lazily (re)built per-cell δ-plan; both live only when
        # the tuning policy enables them.
        self._shared_slots: dict[int, tuple[frozenset[int], Rect]] = {}
        self._delta_plan: Optional[DeltaPlan] = None
        self._dataset = dataset
        self._graph = graph
        self._config = config
        self._mode: Mode = mode
        self._policy_spec = policy
        # Churn runtime (grid + incremental WPG maintainer), built lazily
        # on the first apply_moves call.
        self._churn: IncrementalWPG | None = None
        # Snapshot arrays for a restored-but-untouched churn runtime;
        # materialised by the first apply_moves (see _build_churn_runtime).
        self._churn_restore: dict | None = None
        # Durable-state attachment (see repro.persist): a store to
        # journal move batches into and checkpoint/restore against.
        self._store: "PersistentStore | None" = None
        self._journal_seq = 0
        self._replaying = False
        self._devices = None
        self._reliable_session = self._build_reliable_session(
            mode, policy, clustering, resolve(reliability), failure_plan
        )
        self._clustering: ClusteringService
        if self._reliable_session is not None and self._tuning.enabled():
            raise ConfigurationError(
                "tuning is not supported together with an enabled "
                "ReliabilityPolicy: the message-level session owns its "
                "own request path"
            )
        if self._reliable_session is not None:
            # The session's protocol satisfies the registry surface the
            # batch fast path needs; requests delegate wholesale.
            self._clustering_kind = "reliable"
            self._clustering = self._reliable_session._clustering  # type: ignore[assignment]
            self._regions = self._reliable_session.regions
            self._policy_builder = self._resolve_policy(policy)
            self._next_region_id = 0
            return
        if clustering == "tree":
            self._clustering_kind = "tree"
        elif clustering is not None and not isinstance(clustering, str):
            self._clustering_kind = "custom"
        else:
            self._clustering_kind = mode
        if clustering == "tree":
            self._clustering = TreeClustering(graph, config.k)
        elif isinstance(clustering, str):
            raise ConfigurationError(
                f"unknown clustering service name {clustering!r} "
                "(the only named opt-in is 'tree')"
            )
        elif clustering is not None:
            # A custom phase-1 service (e.g. the hilbASR baseline or a
            # message-level protocol) overrides the mode selection.
            self._clustering = clustering
        elif mode == "distributed":
            self._clustering = DistributedClustering(graph, config.k)
        elif mode == "centralized":
            self._clustering = CentralizedAnonymizer(graph, config.k)
        else:
            raise ConfigurationError(f"unknown mode {mode!r}")
        self._policy_builder = self._resolve_policy(policy)
        self._regions: dict[frozenset[int], CloakedRegion] = {}
        # Monotonic so region ids stay unique across invalidations.
        self._next_region_id = 0

    def _build_reliable_session(
        self,
        mode: Mode,
        policy: str | PolicyBuilder,
        clustering: Optional[ClusteringService],
        reliability: Optional[ReliabilityPolicy],
        failure_plan: Optional[FailurePlan],
    ):
        """Wire the internal message-level session when reliability is on."""
        if reliability is None:
            if failure_plan is not None:
                raise ConfigurationError(
                    "failure_plan requires an enabled ReliabilityPolicy: "
                    "the failure-oblivious engine has no recovery path"
                )
            return None
        if clustering is not None or mode != "distributed":
            raise ConfigurationError(
                "ReliabilityPolicy requires the distributed mode "
                "(the fault-tolerant runtime is a peer protocol)"
            )
        if not isinstance(policy, str) or policy == "optimal":
            raise ConfigurationError(
                "ReliabilityPolicy requires a progressive policy preset "
                f"name, got {policy!r}"
            )
        if self._min_area > 0.0:
            raise ConfigurationError(
                "min_area is not supported together with ReliabilityPolicy"
            )
        # Local import: keeps the analytic engine importable without the
        # message-level stack and avoids any package-order surprises.
        from repro.cloaking.p2p_engine import P2PCloakingSession

        network = PeerNetwork(failure_plan)
        self._devices = populate_network(
            network, self._graph, list(self._dataset.points)
        )
        return P2PCloakingSession(
            network,
            self._graph,
            self._dataset,
            self._config,
            policy_name=policy,
            reliability=reliability,
        )

    def _resolve_policy(self, policy: str | PolicyBuilder) -> PolicyBuilder:
        if policy == "optimal":
            return None
        if isinstance(policy, str):
            name = policy
            return lambda size: paper_policy(name, size, self._config)
        return policy

    @property
    def clustering(self) -> ClusteringService:
        """The phase-1 clustering service in use."""
        return self._clustering

    @property
    def graph(self) -> WeightedProximityGraph:
        """The WPG the engine serves over (patched in place under churn)."""
        return self._graph

    @property
    def dataset(self) -> PointDataset:
        """The user positions (a mutable view once churn has started)."""
        return self._dataset

    @property
    def churn_runtime(self) -> Optional[IncrementalWPG]:
        """The incremental maintainer, once :meth:`apply_moves` has run."""
        return self._churn

    def cached_regions(self) -> dict[frozenset[int], CloakedRegion]:
        """A snapshot of the region cache (cluster members -> region)."""
        return dict(self._regions)

    @property
    def regions_cached(self) -> int:
        """Number of distinct cloaked regions formed so far."""
        return len(self._regions)

    @property
    def reliable_session(self):  # noqa: ANN201 - Optional[P2PCloakingSession]
        """The internal message-level session, when reliability is on."""
        return self._reliable_session

    @property
    def devices(self):  # noqa: ANN201 - Optional[dict[int, UserDevice]]
        """The per-user devices of the message-level session, if any.

        Their disclosure ledgers are part of the durable state: a warm
        restart must not forget what each user already revealed.
        """
        return self._devices

    def request(self, host: int) -> CloakingResult:
        """Serve one cloaking request end to end.

        Each call runs under its own trace scope (nested calls adopt the
        enclosing trace), so spans, histogram exemplars, message
        envelopes, and flight-recorder events all correlate on one id.
        """
        with _trace.request_scope():
            recorder = _trace._recorder
            if recorder is None:
                with obs.span(metric.SPAN_REQUEST):
                    return self._request(host)
            recorder.record(_trace.EVT_REQUEST_START, host=host)
            try:
                with obs.span(metric.SPAN_REQUEST):
                    result = self._request(host)
            except ProtocolAbort as exc:
                # abort() already recorded the typed abort event itself.
                recorder.record(
                    _trace.EVT_REQUEST_END, host=host,
                    status=f"abort:{exc.reason}",
                )
                raise
            except Exception as exc:
                recorder.record(
                    _trace.EVT_REQUEST_END, host=host,
                    status=f"error:{type(exc).__name__}",
                )
                raise
            recorder.record(
                _trace.EVT_REQUEST_END, host=host, status=result.status,
            )
            return result

    def _request(self, host: int) -> CloakingResult:
        if self._reliable_session is not None:
            return self._request_reliable(host)
        if self._tuning.share_regions:
            slot = self._shared_slots.get(host)
            if slot is not None:
                return self._serve_shared(host, slot)
        relaxed_k: Optional[int] = None
        with obs.span(metric.SPAN_CLUSTERING):
            if self._tuning.relax_k:
                cluster_result, relaxed_k = self._cluster_relaxable(host)
            else:
                cluster_result = self._clustering.request(host)
        members = cluster_result.members
        cached = self._regions.get(members)
        if obs.enabled():
            obs.inc(metric.CLOAKING_REQUESTS)
            if cached is not None:
                obs.inc(metric.CLOAKING_CACHE_HITS)
                obs.inc(metric.ENGINE_CACHE_DEMAND_HITS)
            else:
                obs.inc(metric.CLOAKING_CACHE_MISSES)
        recorder = _trace._recorder
        if recorder is not None:
            recorder.record(
                _trace.EVT_CLUSTER_FORMED, host=host,
                size=cluster_result.size,
                from_cache=cluster_result.from_cache,
                involved=cluster_result.involved,
            )
            recorder.record(
                _trace.EVT_CACHE_HIT if cached is not None
                else _trace.EVT_CACHE_MISS,
                host=host,
            )
        if cached is not None:
            return CloakingResult(
                host=host,
                region=cached,
                cluster=cluster_result,
                clustering_messages=cluster_result.involved,
                bounding_messages=0,
                region_from_cache=True,
            )
        with obs.span(metric.SPAN_BOUNDING):
            region, bounding_messages = self._bound(members, host)
        region = self._enforce_granularity(region, host)
        cloaked = CloakedRegion(
            rect=region,
            cluster_id=self._next_region_id,
            anonymity=len(members),
        )
        self._next_region_id += 1
        self._regions[members] = cloaked
        if self._tuning.share_regions:
            # Reciprocity (paper Section IV): the region belongs to the
            # cluster, so every member's on-demand answer is now this
            # exact region — push it into each member's slot.
            for member in members:
                self._shared_slots[member] = (members, region)
            if obs.enabled():
                obs.inc(metric.TUNING_PUSHED_SLOTS, len(members))
        if obs.enabled():
            obs.set_gauge(metric.CLOAKING_REGIONS_CACHED, len(self._regions))
            obs.observe(
                metric.CLOAKING_REGION_AREA, region.area, bounds=_AREA_BUCKETS
            )
        return CloakingResult(
            host=host,
            region=cloaked,
            cluster=cluster_result,
            clustering_messages=cluster_result.involved,
            bounding_messages=bounding_messages,
            region_from_cache=False,
            relaxed_k=relaxed_k,
        )

    def _serve_shared(
        self, host: int, slot: tuple[frozenset[int], Rect]
    ) -> CloakingResult:
        """Serve ``host`` from its proactively shared region slot.

        When the cluster's region is still cached the slot is a pure
        shortcut (same :class:`CloakedRegion` object the demand path
        would return).  When churn invalidated it, the slot holds the
        region *this member* would have computed on demand over the
        current positions; serving it promotes the rect to the
        cluster's cached region and rewrites every sibling slot —
        exactly the state the member's on-demand miss would have left.
        """
        members, rect = slot
        region = self._regions.get(members)
        if region is None:
            region = CloakedRegion(
                rect=rect,
                cluster_id=self._next_region_id,
                anonymity=len(members),
            )
            self._next_region_id += 1
            self._regions[members] = region
            for member in members:
                self._shared_slots[member] = (members, rect)
            if obs.enabled():
                obs.inc(metric.TUNING_PROMOTIONS)
                obs.set_gauge(
                    metric.CLOAKING_REGIONS_CACHED, len(self._regions)
                )
                obs.observe(
                    metric.CLOAKING_REGION_AREA,
                    rect.area,
                    bounds=_AREA_BUCKETS,
                )
        if obs.enabled():
            obs.inc(metric.CLOAKING_REQUESTS)
            obs.inc(metric.CLOAKING_CACHE_HITS)
            obs.inc(metric.ENGINE_CACHE_SHARED_HITS)
        recorder = _trace._recorder
        if recorder is not None:
            recorder.record(
                _trace.EVT_CACHE_HIT, host=host, shared=True
            )
        return CloakingResult(
            host=host,
            region=region,
            cluster=ClusterResult(
                host=host, members=members, involved=0, from_cache=True
            ),
            clustering_messages=0,
            bounding_messages=0,
            region_from_cache=True,
            region_shared=True,
        )

    def _cluster_relaxable(
        self, host: int
    ) -> tuple[ClusterResult, Optional[int]]:
        """Phase 1 with the oracle-gated k-relaxation fallback.

        A clean sub-k failure is retried at k' < k only after the exact
        level-scan oracle confirms no k-valid cluster of unassigned
        users exists — if the oracle finds one, the engine missed it (a
        defect) and the original failure propagates untouched.  k'
        probes downward from k-1 to the per-density-cell floor; the
        first k' with a valid cluster wins, preserving as much of the
        anonymity target as the population allows.
        """
        try:
            return self._clustering.request(host), None
        except ClusteringError:
            with obs.span(metric.SPAN_TUNING_RELAX):
                relaxed = self._relax(host)
            if relaxed is None:
                raise
            return relaxed

    def _relax(self, host: int) -> Optional[tuple[ClusterResult, int]]:
        # Local import: repro.verify's package init imports the fuzz
        # harness, which imports this engine — at call time both sides
        # are fully initialised.
        from repro.verify.oracles import oracle_smallest_cluster

        registry = self._clustering.registry
        if host in registry:
            # The failure was not a sub-k formation failure (the host is
            # already clustered) — nothing to relax.
            return None
        k = self._config.k
        exclude = registry.assigned_view()
        if oracle_smallest_cluster(self._graph, host, k, exclude=exclude) is not None:
            # A k-valid cluster exists: the failure is a defect, and
            # masking it with a relaxation would hide the bug.
            if obs.enabled():
                obs.inc(metric.TUNING_RELAX_REJECTED)
            return None
        floor = self._ensure_plan().relax_floor_at(
            self._dataset[host], k, self._tuning.k_floor
        )
        for relaxed_k in range(k - 1, floor - 1, -1):
            service = DistributedClustering(
                self._graph, relaxed_k, registry=registry
            )
            try:
                proposal = service.propose(host)
            except ClusteringError:
                continue
            for group in proposal.groups:
                if host not in group:
                    continue
                # Register only the host's cluster: the other carved
                # groups stay unassigned, free to reach full k later.
                registry.register(group)
                adopt = getattr(self._clustering, "adopt", None)
                if adopt is not None:
                    adopt(group)
                if obs.enabled():
                    obs.inc(metric.TUNING_RELAXATIONS)
                return (
                    ClusterResult(
                        host=host,
                        members=group,
                        involved=proposal.involved,
                        connectivity=proposal.connectivity,
                    ),
                    relaxed_k,
                )
        if obs.enabled():
            obs.inc(metric.TUNING_RELAX_EXHAUSTED)
        return None

    def _ensure_plan(self) -> DeltaPlan:
        """The current δ-plan, rebuilt lazily from the live positions."""
        if self._delta_plan is None:
            self._delta_plan = build_plan(
                list(self._dataset),
                self._config.delta,
                self._tuning,
                self._config.k,
            )
            if obs.enabled():
                obs.inc(metric.TUNING_REPLANS)
        return self._delta_plan

    def _request_reliable(self, host: int) -> CloakingResult:
        """Delegate one request to the fault-tolerant message-level session.

        The session owns the region cache (``self._regions`` is the same
        dict), so cache accounting, invalidation and the batch fast path
        all keep working; a :class:`ProtocolAbort` propagates to the
        caller as the request's clean typed failure.
        """
        result = self._reliable_session.request(host)
        if obs.enabled():
            obs.inc(metric.CLOAKING_REQUESTS)
            obs.inc(
                metric.CLOAKING_CACHE_HITS
                if result.region_from_cache
                else metric.CLOAKING_CACHE_MISSES
            )
            if not result.region_from_cache:
                obs.set_gauge(metric.CLOAKING_REGIONS_CACHED, len(self._regions))
                obs.observe(
                    metric.CLOAKING_REGION_AREA,
                    result.region.rect.area,
                    bounds=_AREA_BUCKETS,
                )
        return CloakingResult(
            host=result.host,
            region=result.region,
            cluster=result.cluster,
            clustering_messages=result.clustering_messages,
            bounding_messages=result.bounding_messages,
            region_from_cache=result.region_from_cache,
        )

    def request_many(self, hosts: Iterable[int]) -> list[CloakingResult]:
        """Serve a batch of cloaking requests, amortising the cache lookups.

        Produces exactly the results sequential :meth:`request` calls
        would (same order), but answers the common case — host already
        clustered, region already cached — with two dict probes instead
        of a round trip through the phase-1 service.  Only hosts that
        still need clustering or bounding fall through to the full path.
        """
        with _trace.request_scope():
            with obs.span(metric.SPAN_REQUEST_MANY):
                return self._request_many(hosts)

    def _request_many(self, hosts: Iterable[int]) -> list[CloakingResult]:
        registry = self._clustering.registry
        regions = self._regions
        sharing = self._tuning.share_regions
        results: list[CloakingResult] = []
        fast_hits = shared_hits = 0
        recorder = _trace._recorder
        for host in hosts:
            if sharing:
                slot = self._shared_slots.get(host)
                # A slot whose region was invalidated needs promotion —
                # that (rarer) path runs through request() below.
                if slot is not None and slot[0] in regions:
                    shared_hits += 1
                    if recorder is not None:
                        recorder.record(
                            _trace.EVT_CACHE_HIT,
                            host=host,
                            fast_path=True,
                            shared=True,
                        )
                    results.append(
                        CloakingResult(
                            host=host,
                            region=regions[slot[0]],
                            cluster=ClusterResult(
                                host=host,
                                members=slot[0],
                                involved=0,
                                from_cache=True,
                            ),
                            clustering_messages=0,
                            bounding_messages=0,
                            region_from_cache=True,
                            region_shared=True,
                        )
                    )
                    continue
            members = registry.cluster_of(host)
            cached = regions.get(members) if members is not None else None
            if members is not None and cached is not None:
                fast_hits += 1
                if recorder is not None:
                    recorder.record(
                        _trace.EVT_CACHE_HIT, host=host, fast_path=True
                    )
                # Exactly the answer request() assembles for an
                # already-clustered host with a cached region: every
                # phase-1 service reports such hits as involved=0,
                # from_cache=True, connectivity left at its default.
                results.append(
                    CloakingResult(
                        host=host,
                        region=cached,
                        cluster=ClusterResult(
                            host=host,
                            members=members,
                            involved=0,
                            from_cache=True,
                        ),
                        clustering_messages=0,
                        bounding_messages=0,
                        region_from_cache=True,
                    )
                )
            else:
                results.append(self.request(host))
        if (fast_hits or shared_hits) and obs.enabled():
            # The fast path skips request(), so its accounting lands here
            # in one batched update instead of per-host increments.
            obs.inc(metric.CLOAKING_REQUESTS, fast_hits + shared_hits)
            obs.inc(metric.CLOAKING_CACHE_HITS, fast_hits + shared_hits)
            if fast_hits:
                obs.inc(metric.ENGINE_CACHE_DEMAND_HITS, fast_hits)
            if shared_hits:
                obs.inc(metric.ENGINE_CACHE_SHARED_HITS, shared_hits)
        return results

    def invalidate_region(self, members: Iterable[int]) -> bool:
        """Drop the cached region for the cluster ``members``, if any.

        Mobility support: when a cluster member moves, the cached region
        no longer covers the cluster and must be rebuilt on the next
        request.  Returns True when a cached region was dropped.
        """
        key = frozenset(members)
        dropped = self._regions.pop(key, None) is not None
        if self._shared_slots:
            # Drain every shared copy with the region: a slot must never
            # serve geometry the demand path would recompute.
            for member in key:
                slot = self._shared_slots.get(member)
                if slot is not None and slot[0] == key:
                    del self._shared_slots[member]
        if dropped and obs.enabled():
            obs.inc(metric.CLOAKING_REGIONS_INVALIDATED)
            obs.set_gauge(metric.CLOAKING_REGIONS_CACHED, len(self._regions))
        return dropped

    def clear_regions(self) -> int:
        """Invalidate every cached region; returns how many were dropped."""
        dropped = len(self._regions)
        self._regions.clear()
        self._shared_slots.clear()
        if dropped and obs.enabled():
            obs.inc(metric.CLOAKING_REGIONS_INVALIDATED, dropped)
            obs.set_gauge(metric.CLOAKING_REGIONS_CACHED, 0)
        return dropped

    def adopt_cluster(self, members: Iterable[int]) -> bool:
        """Adopt a cluster another replica of this engine formed.

        The sharded service keeps one engine replica per worker process;
        requests for different WPG components commute, so replicas may
        form clusters independently between synchronisation barriers and
        exchange them here.  Registers the cluster (reciprocity-checked)
        and feeds any clustering service that maintains derived state —
        the cluster tree marks the adopted members' leaves exactly as if
        it had formed the cluster itself.

        Returns True when newly registered, False when this exact
        cluster is already present (idempotent re-sync).  A *conflicting*
        overlap — some member assigned to a different cluster — raises
        :class:`~repro.errors.ClusteringError`: two replicas that formed
        different clusters over shared users were never replicas at all.
        """
        group = frozenset(members)
        if not group:
            raise ClusteringError("cannot adopt an empty cluster")
        registry = self._clustering.registry
        assigned = {v: registry.cluster_of(v) for v in group}
        existing = {c for c in assigned.values() if c is not None}
        if existing:
            if existing == {group} and all(
                c is not None for c in assigned.values()
            ):
                return False
            raise ClusteringError(
                f"adopted cluster {sorted(group)[:5]}... conflicts with "
                f"existing assignments"
            )
        registry.register(group)
        adopt = getattr(self._clustering, "adopt", None)
        if adopt is not None:
            adopt(group)
        return True

    def adopt_region(
        self, members: Iterable[int], rect: Rect, anonymity: int
    ) -> bool:
        """Seed the region cache with a region another replica bounded.

        Companion of :meth:`adopt_cluster` for the second phase: the
        cloaked region is a pure function of the cluster's member
        positions, so a replica can cache a peer's region verbatim and
        serve subsequent same-cluster requests as cache hits — exactly
        the answers a single-process engine would give.  Returns True
        when the entry was added, False when the cluster already has a
        cached region (idempotent re-sync; the existing region wins, as
        both were computed from identical positions).
        """
        key = frozenset(members)
        if key in self._regions:
            return False
        self._regions[key] = CloakedRegion(
            rect=rect, cluster_id=self._next_region_id, anonymity=anonymity
        )
        self._next_region_id += 1
        if self._tuning.share_regions:
            # Cross-replica propagation of the proactive push: the
            # adopted region is the cluster's answer for every member.
            for member in key:
                self._shared_slots[member] = (key, rect)
            if obs.enabled():
                obs.inc(metric.TUNING_PUSHED_SLOTS, len(key))
        if obs.enabled():
            obs.set_gauge(metric.CLOAKING_REGIONS_CACHED, len(self._regions))
        return True

    def apply_moves(self, moves: Sequence[tuple[int, Point]]) -> ChurnPatch:
        """Move a batch of users and bring the engine's world up to date.

        The dynamic-population entry point: consumes ``(user id, new
        position)`` pairs, patches the spatial index and the WPG
        incrementally (see :class:`~repro.graph.incremental.IncrementalWPG`
        — after the call the graph is bit-identical to a from-scratch
        rebuild over the final positions), updates the dataset the
        bounding protocol plays, and invalidates the cached cloaked
        region of every cluster with a moved member.  Cluster
        *assignments* survive a move — reciprocity keeps them permanent —
        only the cached geometry is dropped, so the next request re-bounds
        over the new positions.

        The first call builds the churn runtime (grid index + incremental
        maintainer) from the current positions; an empty batch is a valid
        warm-up.  Requires the failure-oblivious engine (no reliability
        policy) and a graph built with a stateless radio model — the
        default :func:`~repro.graph.build.build_wpg_fast` output
        qualifies.
        """
        with _trace.request_scope():
            with obs.span(metric.SPAN_CHURN_APPLY):
                return self._apply_moves(list(moves))

    def _apply_moves(self, moves: list[tuple[int, Point]]) -> ChurnPatch:
        if self._churn is None:
            self._churn = self._build_churn_runtime()
        if moves and self._store is not None and not self._replaying:
            # Write-ahead: the batch must be durable before any live
            # structure mutates.  Pre-validate what the maintainer would
            # reject so an invalid batch never reaches the journal.
            ids = [user for user, _ in moves]
            if len(set(ids)) != len(ids):
                raise ConfigurationError(
                    "apply_moves got duplicate user ids in one batch"
                )
            self._journal_seq += 1
            self._store.journal.append(self._journal_seq, moves)
        patch = self._churn.apply_moves(moves)
        # Clustering services that maintain derived structures over the
        # graph (the cluster tree) consume the patch's edge diffs here,
        # so they track the in-place graph mutation batch for batch.
        consume_patch = getattr(self._clustering, "apply_churn_patch", None)
        if consume_patch is not None:
            consume_patch(patch)
        for user, point in moves:
            self._dataset.move(user, point)  # type: ignore[attr-defined]
        registry = self._clustering.registry
        invalidated = 0
        seen: set[frozenset[int]] = set()
        for user, _ in moves:
            members = registry.cluster_of(user)
            if members is None or members in seen:
                continue
            seen.add(members)
            if self.invalidate_region(members):
                invalidated += 1
        if self._tuning.enabled():
            # The δ-plan is a pure function of the positions; drop it so
            # the next consumer replans over the post-move occupancy.
            self._delta_plan = None
        if self._tuning.share_regions and seen:
            with obs.span(metric.SPAN_TUNING_RESHARE):
                self._reshare(seen)
        if obs.enabled():
            obs.inc(metric.CHURN_BATCHES)
            obs.inc(metric.CHURN_MOVES, patch.moved)
            obs.inc(metric.CHURN_DIRTY_USERS, patch.dirty_users)
            obs.inc(metric.CHURN_EDGES_ADDED, patch.edges_added)
            obs.inc(metric.CHURN_EDGES_REMOVED, patch.edges_removed)
            obs.inc(metric.CHURN_EDGES_REWEIGHTED, patch.edges_reweighted)
            obs.inc(metric.CHURN_REGIONS_INVALIDATED, invalidated)
            obs.observe(
                metric.CHURN_DIRTY_PER_BATCH,
                patch.dirty_users,
                bounds=_DIRTY_BUCKETS,
            )
        recorder = _trace._recorder
        if recorder is not None:
            recorder.record(
                _trace.EVT_CHURN_PATCH, moves=patch.moved,
                dirty_users=patch.dirty_users,
                edges_added=patch.edges_added,
                edges_removed=patch.edges_removed,
                edges_reweighted=patch.edges_reweighted,
                regions_invalidated=invalidated,
            )
        return patch

    def _reshare(self, clusters: Iterable[frozenset[int]]) -> int:
        """Proactively re-compute the shared slots of churned clusters.

        For every cluster that lost (or never had) its cached region
        because a member moved, pre-compute *each member's own*
        on-demand region over the new positions — the progressive
        bounding protocol seeds at the requester's coordinate, so the
        region is requester-dependent and one rect cannot speak for the
        whole cluster.  The first member served from its slot promotes
        that rect to the cluster's cached region (see
        :meth:`_serve_shared`), after which the siblings serve the
        promoted geometry exactly as the demand path would.
        """
        filled = 0
        for members in clusters:
            if members in self._regions:  # pragma: no cover - invalidated above
                continue
            for member in sorted(members):
                rect, _ = self._bound(members, member)
                rect = self._enforce_granularity(rect, member)
                self._shared_slots[member] = (members, rect)
                filled += 1
        if filled and obs.enabled():
            obs.inc(metric.TUNING_RESHARED_SLOTS, filled)
        return filled

    @property
    def tuning(self) -> TuningPolicy:
        """The online tuning policy this engine was built with."""
        return self._tuning

    def shared_slots(self) -> dict[int, tuple[frozenset[int], Rect]]:
        """A snapshot of the per-member shared region slots."""
        return dict(self._shared_slots)

    def delta_plan(self) -> Optional[DeltaPlan]:
        """The current δ-plan, building it on first use when tuning is on."""
        if not self._tuning.enabled():
            return None
        return self._ensure_plan()

    def retune(self) -> None:
        """Drop the cached δ-plan; the next consumer replans immediately.

        Replanning also happens automatically after every churn batch —
        this is the operator's explicit knob (and the soak test's
        ``retune`` op).
        """
        self._delta_plan = None

    def _build_churn_runtime(self) -> IncrementalWPG:
        """First-move setup: mutable dataset, grid, incremental maintainer."""
        if self._reliable_session is not None:
            raise ConfigurationError(
                "apply_moves requires the failure-oblivious engine: the "
                "message-level reliability session pins devices to their "
                "initial positions"
            )
        if not isinstance(self._dataset, MutablePointDataset):
            self._dataset = MutablePointDataset.from_dataset(self._dataset)
        if self._churn_restore is not None:
            # Restored engine: rebuild grid + picks through the trusted
            # constructors from the stashed snapshot arrays.  Deferred to
            # here so a warm restart that never churns again pays nothing
            # — symmetric with the lazy first-move setup below.
            stash = self._churn_restore
            self._churn_restore = None
            grid = GridIndex.from_export(
                stash["grid"], cell_size=self._config.delta
            )
            return IncrementalWPG.restore(
                grid,
                self._config.delta,
                self._config.max_peers,
                self._graph,
                *stash["picks"],
            )
        grid = GridIndex(list(self._dataset), cell_size=self._config.delta)
        return IncrementalWPG(
            grid,
            delta=self._config.delta,
            max_peers=self._config.max_peers,
            graph=self._graph,
        )

    # -- durable state (repro.persist) -----------------------------------------

    @property
    def journal_seq(self) -> int:
        """The last journal sequence number this engine wrote (0 = none)."""
        return self._journal_seq

    def _require_persistable(self) -> None:
        if not isinstance(self._policy_spec, str):
            raise PersistError(
                "a custom policy callable is not restorable — persist "
                "engines built with a named policy preset"
            )
        if self._clustering_kind == "custom":
            raise PersistError(
                "a custom phase-1 clustering service is not restorable"
            )

    def enable_persistence(self, store: "PersistentStore") -> None:
        """Attach a durable store: journal every future move batch.

        From this call on, :meth:`apply_moves` appends each batch to the
        store's write-ahead journal (fsync'd) *before* mutating live
        state, and :meth:`checkpoint` rotates snapshots.  The engine's
        configuration must be restorable — named policy, stock phase-1
        service — or a later :meth:`restore` could not rebuild it.
        """
        self._require_persistable()
        self._store = store

    def disable_persistence(self) -> None:
        """Detach the store (journal handle closed, no more appends)."""
        if self._store is not None:
            self._store.close()
            self._store = None

    def snapshot_state(self) -> tuple[dict[str, np.ndarray], dict]:
        """Capture the engine's full durable state as ``(arrays, meta)``.

        Arrays (bit-exact numpy columns): user positions, the WPG, and —
        once churn has started — the grid's cell buckets and the
        incremental maintainer's directed-picks table; tree-flavored
        engines add the cluster-tree dendrogram columns.  Meta (JSON):
        config, engine flavor, the region cache, the cluster registry in
        registration order, centralized partition flags, and (for
        message-level sessions) every device's disclosure ledger.
        """
        self._require_persistable()
        if self._churn is None and self._churn_restore is not None:
            # Restored engine that never churned again: materialise the
            # deferred runtime so the snapshot carries its arrays forward.
            self._churn = self._build_churn_runtime()
        arrays: dict[str, np.ndarray] = {}
        points = self._dataset.points
        arrays["positions"] = np.array(
            [[p.x, p.y] for p in points], dtype=float
        ).reshape(len(points), 2)
        for key, value in graph_to_arrays(self._graph).items():
            arrays[f"graph_{key}"] = value
        has_churn = self._churn is not None
        if has_churn:
            for key, value in self._churn.grid.export_arrays().items():
                arrays[f"grid_{key}"] = value
            indptr, peers, ranks = self._churn.export_picks()
            arrays["picks_indptr"] = indptr
            arrays["picks_peers"] = peers
            arrays["picks_ranks"] = ranks
        clustering = self._clustering
        if isinstance(clustering, TreeClustering):
            for key, value in clustering.tree.to_state().items():
                dtype = float if key == "weight" else np.int64
                arrays[f"tree_{key}"] = np.asarray(value, dtype=dtype)
        registry = clustering.registry
        meta: dict = {
            "engine": {
                "mode": self._mode,
                "policy": self._policy_spec,
                "min_area": self._min_area,
                "clustering": self._clustering_kind,
                "reliability": self._reliable_session is not None,
                "has_churn": has_churn,
                "dataset_name": self._dataset.name,
            },
            "config": dataclasses.asdict(self._config),
            "next_region_id": self._next_region_id,
            "regions": [
                {
                    "members": sorted(members),
                    "rect": [
                        region.rect.x_min.hex(),
                        region.rect.x_max.hex(),
                        region.rect.y_min.hex(),
                        region.rect.y_max.hex(),
                    ],
                    "cluster_id": region.cluster_id,
                    "anonymity": region.anonymity,
                }
                for members, region in self._regions.items()
            ],
            "registry": [
                sorted(registry.cluster_by_id(cid))
                for cid in range(len(registry))
            ],
            "ledgers": export_ledgers(self._devices) if self._devices else None,
        }
        if self._tuning.enabled():
            # The δ-plan is derivable (pure function of the restored
            # positions); the shared slots are not — a slot records which
            # churned clusters were proactively re-shared, so it rides
            # the snapshot bit-exactly (rects in float hex).
            meta["tuning"] = {
                "policy": self._tuning.to_meta(),
                "slots": [
                    {
                        "user": user,
                        "members": sorted(members),
                        "rect": [
                            rect.x_min.hex(),
                            rect.x_max.hex(),
                            rect.y_min.hex(),
                            rect.y_max.hex(),
                        ],
                    }
                    for user, (members, rect) in sorted(
                        self._shared_slots.items()
                    )
                ],
            }
        if isinstance(clustering, CentralizedAnonymizer):
            meta["centralized"] = {
                "partitioned": clustering.has_partitioned,
                "unclusterable": sorted(clustering.unclusterable),
            }
        return arrays, meta

    def checkpoint(self):  # noqa: ANN201 - Path, avoids top-level import
        """Snapshot the full state, truncate the journal, prune old snapshots.

        After a checkpoint the journal is empty: every recorded batch is
        covered by the snapshot.  The snapshot is committed (atomic
        rename) *before* truncation, and replay skips record seqs the
        snapshot covers — so a crash anywhere inside this method loses
        nothing.
        """
        if self._store is None:
            raise PersistError(
                "persistence is not enabled: call enable_persistence(store)"
            )
        with obs.span(metric.SPAN_PERSIST_CHECKPOINT):
            arrays, meta = self.snapshot_state()
            path = self._store.checkpoint(self._journal_seq, arrays, meta)
        if obs.enabled():
            obs.inc(metric.PERSIST_CHECKPOINTS)
        return path

    @classmethod
    def restore(cls, store: "PersistentStore") -> "CloakingEngine":
        """Rebuild an engine from the store's latest snapshot + journal.

        The snapshot's arrays come back through the trusted constructors
        (no re-rank, no re-partition, no tree rebuild); the journal's
        surviving records — anything past the snapshot's seq, torn tail
        discarded — replay through the live churn path.  The result is
        bit-identical to the engine that never crashed: same graph, same
        tree, same regions, same registry, same future behaviour.  The
        restored engine stays attached to ``store``.
        """
        with obs.span(metric.SPAN_PERSIST_RESTORE):
            arrays, meta = store.require_latest_snapshot()
            info = meta["engine"]
            if info["reliability"]:
                raise PersistError(
                    "cannot restore a reliability-mode engine: the "
                    "message-level session is not replayable (its "
                    "snapshots exist for disclosure-ledger audits)"
                )
            if info["clustering"] == "custom":
                raise PersistError(
                    "cannot restore a custom clustering service"
                )
            config = SimulationConfig(**meta["config"])
            graph = graph_from_arrays(
                {
                    "vertices": arrays["graph_vertices"],
                    "us": arrays["graph_us"],
                    "vs": arrays["graph_vs"],
                    "ws": arrays["graph_ws"],
                }
            )
            dataset = MutablePointDataset(
                [
                    Point(x, y)
                    for x, y in arrays["positions"].tolist()
                ],
                name=info.get("dataset_name", "dataset"),
            )
            registry = ClusterRegistry()
            for members in meta["registry"]:
                registry.register(members)
            kind = info["clustering"]
            if kind == "tree":
                tree_state = {
                    key: arrays[f"tree_{key}"].tolist()
                    for key in (
                        "comp_ids",
                        "node_indptr",
                        "parent",
                        "weight",
                        "size",
                        "leaf_lo",
                        "leaf_order",
                        "next_id",
                    )
                }
                tree = ClusterTree.from_state(graph, tree_state)
                service: ClusteringService = TreeClustering(
                    graph, config.k, registry=registry, tree=tree
                )
            elif kind == "centralized":
                central_service = CentralizedAnonymizer(
                    graph, config.k, registry=registry
                )
                central = meta["centralized"]
                central_service.restore_partition_state(
                    central["partitioned"],
                    frozenset(central["unclusterable"]),
                )
                service = central_service
            else:
                service = DistributedClustering(
                    graph, config.k, registry=registry
                )
            tuning_meta = meta.get("tuning")
            tuning = (
                TuningPolicy.from_meta(tuning_meta["policy"])
                if tuning_meta
                else None
            )
            engine = cls(
                dataset,
                graph,
                config,
                mode=info["mode"],
                policy=info["policy"],
                min_area=info["min_area"],
                clustering=service,
                tuning=tuning,
            )
            engine._clustering_kind = kind
            engine._next_region_id = int(meta["next_region_id"])
            for entry in meta["regions"]:
                rect = Rect(*(float.fromhex(h) for h in entry["rect"]))
                engine._regions[frozenset(entry["members"])] = CloakedRegion(
                    rect=rect,
                    cluster_id=int(entry["cluster_id"]),
                    anonymity=int(entry["anonymity"]),
                )
            if tuning_meta:
                # Restore the shared slots *after* the regions so replayed
                # journal batches drain and re-share exactly like the
                # engine that never crashed.
                for entry in tuning_meta["slots"]:
                    engine._shared_slots[int(entry["user"])] = (
                        frozenset(entry["members"]),
                        Rect(*(float.fromhex(h) for h in entry["rect"])),
                    )
            if info["has_churn"]:
                # Stashed, not rebuilt: the first apply_moves (usually
                # the journal replay just below) materialises the grid
                # and picks through the trusted-path constructors, so a
                # warm restart with an empty journal defers the cost —
                # exactly like a fresh engine defers first-move setup.
                engine._churn_restore = {
                    "grid": {
                        "coords": arrays["grid_coords"],
                        "live": arrays["grid_live"],
                        "bucket_indptr": arrays["grid_bucket_indptr"],
                        "bucket_points": arrays["grid_bucket_points"],
                    },
                    "picks": (
                        arrays["picks_indptr"],
                        arrays["picks_peers"],
                        arrays["picks_ranks"],
                    ),
                }
            snapshot_seq = int(meta["journal_seq"])
            engine._journal_seq = snapshot_seq
            engine._store = store
            engine._replaying = True
            replayed = 0
            try:
                with obs.span(metric.SPAN_PERSIST_REPLAY):
                    for record in store.journal.records():
                        if record.seq <= snapshot_seq:
                            continue
                        engine.apply_moves(list(record.moves))
                        engine._journal_seq = record.seq
                        replayed += 1
            finally:
                engine._replaying = False
            if obs.enabled():
                obs.inc(metric.PERSIST_RESTORES)
                if replayed:
                    obs.inc(metric.PERSIST_REPLAYED_BATCHES, replayed)
        return engine

    def _granularity_target(self, host: Optional[int]) -> float:
        """The minimum region area enforced for ``host``'s request.

        The static metric unless the tuning policy adapts δ per density
        cell: then the plan's scale (monotone non-increasing in cell
        occupancy, bounded below by ``delta_scale_min``) shrinks the
        enforced *extent*, so the area target scales quadratically.  A
        tuned region is therefore always contained in the untuned one.
        """
        if self._min_area <= 0.0 or not self._tuning.adapt_delta or host is None:
            return self._min_area
        scale = self._ensure_plan().scale_at(self._dataset[host])
        return self._min_area * scale * scale

    def _enforce_granularity(
        self, region: Rect, host: Optional[int] = None
    ) -> Rect:
        """Grow ``region`` until it satisfies the minimum-area metric.

        Uniform margin on all sides, then clipped to the unit square.
        The analytic rounds solve the unclipped margin and usually land
        in one or two iterations, but a region clipped on two or more
        sides (a map corner) can stall: the solved margin ignores the
        sides the clipping eats.  A bisection over the uniform margin
        then finishes the job — margin 1 always covers the whole unit
        square and ``min_area <= 1``, so a satisfying margin exists and
        the target is guaranteed, never silently under-delivered.
        """
        target = self._granularity_target(host)
        if target <= 0.0 or region.area >= target:
            return region
        unit = Rect.unit_square()
        grown = region
        for _round in range(64):
            if grown.area >= target:
                return grown
            # Solve (w + 2m)(h + 2m) = target for the margin m, ignoring
            # clipping; clip and re-check.
            w, h = grown.width, grown.height
            # Quadratic: 4m^2 + 2(w + h)m + (wh - target) = 0.
            disc = (w + h) ** 2 - 4.0 * (w * h - target)
            margin = (-(w + h) + disc**0.5) / 4.0
            grown = grown.expanded(max(margin, 1e-6)).clipped_to(unit)
        if grown.area >= target:
            return grown
        # Corner stall: the clipped area is nondecreasing in the margin,
        # so bisect it on the original region.  ``hi`` satisfies the
        # target at every step (it starts at 1), hence so does the result.
        lo, hi = 0.0, 1.0
        for _ in range(80):
            mid = (lo + hi) / 2.0
            if region.expanded(mid).clipped_to(unit).area >= target:
                hi = mid
            else:
                lo = mid
        return region.expanded(hi).clipped_to(unit)

    def _bound(self, members: frozenset[int], host: int) -> tuple[Rect, int]:
        """Phase 2 over the cluster; returns (region, bounding messages).

        The requesting ``host`` initiates the secure bounding rounds, so
        its position within the sorted member list is the protocol's host
        index — not slot 0, which only coincides with the host when the
        host happens to be the smallest member id.
        """
        ordered = sorted(members)
        points = [self._dataset[i] for i in ordered]
        if self._policy_builder is None:
            # OPT baseline: exact box, one position message per member.
            return optimal_bounding_box(points), len(points)
        size = len(points)
        result = secure_bounding_box(
            points,
            host_index=ordered.index(host),
            policy_factory=lambda: self._policy_builder(size),
            clip_to=Rect.unit_square(),
        )
        return result.region, result.messages
