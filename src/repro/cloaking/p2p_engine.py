"""End-to-end message-level cloaking (both phases over the wire).

:class:`~repro.cloaking.engine.CloakingEngine` runs the algorithms
analytically; this module runs the complete Fig. 3 workflow as actual
network traffic: phase 1 gathers adjacency lists by RPC
(:class:`~repro.clustering.protocol.P2PClusteringProtocol`) and phase 2
issues four directional progressive-bounding runs whose every
verification is a ``verify_bound`` round trip
(:func:`~repro.bounding.p2p.p2p_upper_bound`).

The host's device is the only process that ever sees the gathered data,
and what it sees is adjacency lists and yes/no answers — never a peer
coordinate.  Failure injection applies to both phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.bounding.p2p import p2p_upper_bound, resilient_bounding_box
from repro.bounding.policies import IncrementPolicy
from repro.bounding.presets import paper_policy
from repro.clustering.base import ClusterRegistry, ClusterResult
from repro.clustering.protocol import P2PClusteringProtocol
from repro.cloaking.region import CloakedRegion
from repro.config import SimulationConfig
from repro.datasets.base import PointDataset
from repro.errors import ConfigurationError
from repro.geometry.rect import Rect
from repro.graph.wpg import WeightedProximityGraph
from repro.network.node import populate_network
from repro.network.reliability import (
    ProtocolAbort,
    ReliabilityPolicy,
    ReliableTransport,
    resolve,
)
from repro.network.simulator import PeerNetwork
from repro.obs import trace as _trace


@dataclass(frozen=True, slots=True)
class P2PCloakingResult:
    """One wire-level cloaking request's outcome and traffic."""

    host: int
    region: CloakedRegion
    cluster: ClusterResult
    clustering_messages: int
    bounding_messages: int
    messages_dropped: int
    region_from_cache: bool
    unresolved_members: frozenset[int]


class P2PCloakingSession:
    """Serves cloaking requests entirely through the peer network.

    Parameters
    ----------
    network:
        The peer network; if the devices are not yet attached, pass
        ``dataset``/``graph`` and call :func:`attach_devices` or use
        :meth:`bootstrapped`.
    graph:
        The WPG (hosts read their own adjacency from it; everyone else's
        crosses the network).
    dataset:
        Private positions, used ONLY to instantiate each user's device —
        the session logic itself never reads a peer coordinate.
    config:
        Table I parameters.
    policy_name:
        The bounding preset for phase 2 (``secure`` by default).
    retries:
        Per-call retransmission budget under lossy networks.
    """

    def __init__(
        self,
        network: PeerNetwork,
        graph: WeightedProximityGraph,
        dataset: PointDataset,
        config: SimulationConfig,
        policy_name: str = "secure",
        retries: int = 0,
        registry: Optional[ClusterRegistry] = None,
        reliability: Optional[ReliabilityPolicy] = None,
    ) -> None:
        if len(dataset) != graph.vertex_count:
            raise ConfigurationError(
                f"dataset has {len(dataset)} users but the WPG has "
                f"{graph.vertex_count} vertices"
            )
        self._network = network
        self._graph = graph
        self._dataset = dataset
        self._config = config
        self._policy_name = policy_name
        self._retries = retries
        self._reliability = resolve(reliability)
        # One transport shared by both phases: a crash detected while
        # clustering is already known when bounding starts.
        self._transport = (
            ReliableTransport(network, self._reliability)
            if self._reliability is not None
            else None
        )
        self._clustering = P2PClusteringProtocol(
            network,
            graph,
            config.k,
            registry=registry,
            retries=retries,
            reliability=self._reliability,
            transport=self._transport,
        )
        self._regions: dict[frozenset[int], CloakedRegion] = {}

    @classmethod
    def bootstrapped(
        cls,
        dataset: PointDataset,
        graph: WeightedProximityGraph,
        config: SimulationConfig,
        network: Optional[PeerNetwork] = None,
        **kwargs: object,
    ) -> "P2PCloakingSession":
        """Create a network, attach every user's device, build a session."""
        net = network if network is not None else PeerNetwork()
        populate_network(net, graph, list(dataset.points))
        return cls(net, graph, dataset, config, **kwargs)  # type: ignore[arg-type]

    @property
    def registry(self) -> ClusterRegistry:
        """The shared cluster-assignment registry."""
        return self._clustering.registry

    @property
    def network(self) -> PeerNetwork:
        """The peer network carrying both phases (traffic stats live here)."""
        return self._network

    @property
    def transport(self) -> Optional[ReliableTransport]:
        """The reliable transport, when a policy is enabled."""
        return self._transport

    @property
    def regions(self) -> dict[frozenset[int], CloakedRegion]:
        """The cluster -> cloaked-region cache (shared with the engine)."""
        return self._regions

    @property
    def evicted(self) -> frozenset[int]:
        """Peers evicted during clustering (reliability runs only)."""
        return self._clustering.evicted

    def request(self, host: int) -> P2PCloakingResult:
        """Serve one cloaking request over the wire, end to end.

        With a reliability policy, transport failures degrade gracefully
        (evictions, restarts) and unrecoverable ones surface as a typed
        :class:`~repro.network.reliability.ProtocolAbort`; without one,
        they propagate as raw :class:`~repro.errors.ProtocolError`\\ s,
        exactly the seed behavior.

        Runs under a trace scope of its own; when called from the
        engine's reliable path it adopts the engine's trace instead, and
        only the scope *owner* emits the request start/end events.
        """
        owner = _trace._current is None
        with _trace.request_scope():
            recorder = _trace._recorder
            if recorder is None:
                return self._request_wire(host)
            if owner:
                recorder.record(_trace.EVT_REQUEST_START, host=host)
            try:
                result = self._request_wire(host)
            except ProtocolAbort as exc:
                if owner:
                    recorder.record(
                        _trace.EVT_REQUEST_END, host=host,
                        status=f"abort:{exc.reason}",
                    )
                raise
            except Exception as exc:
                if owner:
                    recorder.record(
                        _trace.EVT_REQUEST_END, host=host,
                        status=f"error:{type(exc).__name__}",
                    )
                raise
            if owner:
                recorder.record(
                    _trace.EVT_REQUEST_END, host=host,
                    status="cache_hit" if result.region_from_cache else "ok",
                )
            return result

    def _request_wire(self, host: int) -> P2PCloakingResult:
        clustering_report = self._clustering.request(host)
        cluster = clustering_report.result
        cached = self._regions.get(cluster.members)
        recorder = _trace._recorder
        if recorder is not None:
            recorder.record(
                _trace.EVT_CACHE_HIT if cached is not None
                else _trace.EVT_CACHE_MISS,
                host=host,
            )
        if cached is not None:
            return P2PCloakingResult(
                host=host,
                region=cached,
                cluster=cluster,
                clustering_messages=clustering_report.messages_sent,
                bounding_messages=0,
                messages_dropped=clustering_report.messages_dropped,
                region_from_cache=True,
                unresolved_members=frozenset(),
            )
        if self._reliability is not None:
            return self._finish_reliable(host, cluster, clustering_report)
        region, bounding_messages, dropped, unresolved = self._bound(host, cluster)
        cloaked = CloakedRegion(
            rect=region,
            cluster_id=len(self._regions),
            anonymity=cluster.size,
        )
        self._regions[cluster.members] = cloaked
        return P2PCloakingResult(
            host=host,
            region=cloaked,
            cluster=cluster,
            clustering_messages=clustering_report.messages_sent,
            bounding_messages=bounding_messages,
            messages_dropped=clustering_report.messages_dropped + dropped,
            region_from_cache=False,
            unresolved_members=unresolved,
        )

    def _finish_reliable(
        self,
        host: int,
        cluster: ClusterResult,
        clustering_report,  # noqa: ANN001 - ProtocolRunReport
    ) -> P2PCloakingResult:
        """Phase 2 under the reliability policy: restartable bounding.

        The cloak is built over the members that survive bounding (>= k
        guaranteed, else the helper aborts), so a member crashing between
        the two phases degrades the region, never the guarantee.
        """
        report = resilient_bounding_box(
            self._transport,
            host,
            cluster.members,
            self._dataset[host],  # the host's own private coordinate
            self._policy,
            k=self._config.k,
            max_restarts=self._reliability.max_reforms,
            clip_to=Rect.unit_square(),
        )
        cloaked = CloakedRegion(
            rect=report.region,
            cluster_id=len(self._regions),
            anonymity=len(report.survivors),
        )
        self._regions[cluster.members] = cloaked
        return P2PCloakingResult(
            host=host,
            region=cloaked,
            cluster=cluster,
            clustering_messages=clustering_report.messages_sent,
            bounding_messages=report.messages,
            messages_dropped=clustering_report.messages_dropped
            + report.messages_dropped,
            region_from_cache=False,
            unresolved_members=report.evicted,
        )

    def _bound(
        self, host: int, cluster: ClusterResult
    ) -> tuple[Rect, int, int, frozenset[int]]:
        members = sorted(cluster.members)
        size = len(members)
        position = self._dataset[host]  # the host's own private coordinate
        directions = (
            (0, 1.0, position.x),
            (0, -1.0, -position.x),
            (1, 1.0, position.y),
            (1, -1.0, -position.y),
        )
        bounds: list[float] = []
        messages = 0
        dropped = 0
        unresolved: set[int] = set()
        for axis, sign, start in directions:
            policy = self._policy(size)
            report = p2p_upper_bound(
                self._network,
                host,
                members,
                axis=axis,
                sign=sign,
                start=start,
                policy=policy,
                retries=self._retries,
            )
            bounds.append(report.outcome.bound)
            messages += report.outcome.messages
            dropped += report.messages_dropped
            unresolved |= report.unresolved
        x_max, neg_x_min, y_max, neg_y_min = bounds
        region = Rect(-neg_x_min, x_max, -neg_y_min, y_max).clipped_to(
            Rect.unit_square()
        )
        return region, messages, dropped, frozenset(unresolved)

    def _policy(self, size: int) -> IncrementPolicy:
        return paper_policy(self._policy_name, size, self._config)


#: Convenience alias matching the analytic engine's naming.
PolicyName = str
SessionFactory = Callable[..., P2PCloakingSession]
