"""The two-phase non-exposure cloaking workflow (paper Fig. 3)."""

from repro.cloaking.region import CloakedRegion
from repro.cloaking.anonymizer import CentralizedAnonymizer
from repro.cloaking.engine import CloakingEngine, CloakingResult
from repro.cloaking.p2p_engine import P2PCloakingResult, P2PCloakingSession

__all__ = [
    "CentralizedAnonymizer",
    "CloakedRegion",
    "CloakingEngine",
    "CloakingResult",
    "P2PCloakingResult",
    "P2PCloakingSession",
]
