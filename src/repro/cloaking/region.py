"""The cloaked region: what actually goes into the service request."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class CloakedRegion:
    """A k-anonymous rectangle shared by every member of one cluster.

    ``anonymity`` is the cluster size (>= the requested k); the region is
    identical for all members (reciprocity), so an adversary intercepting
    a request cannot tell which member issued it.
    """

    rect: Rect
    cluster_id: int
    anonymity: int

    def __post_init__(self) -> None:
        if self.anonymity < 1:
            raise ConfigurationError(
                f"anonymity must be >= 1, got {self.anonymity}"
            )

    @property
    def area(self) -> float:
        """The paper's "size of cloaked location" metric."""
        return self.rect.area

    def satisfies(self, k: int) -> bool:
        """True when the region provides at least k-anonymity."""
        return self.anonymity >= k
