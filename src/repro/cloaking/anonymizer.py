"""The centralized anonymizer (Fig. 3, path 1).

A dedicated trusted-for-proximity server that, on the first cloaking
request, collects the complete proximity information from every user
(|D| messages — the paper's upper-bound curve in Figs. 9a/12a), runs the
centralized Algorithm 1 over the whole WPG, and registers every cluster.
All subsequent requests are answered from the registry at zero cost.

Note what the anonymizer sees: adjacency lists and rank weights — never a
coordinate.  That is the paper's entire point: even the anonymizer need
not be trusted with locations.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.errors import ClusteringError, ConfigurationError
from repro.clustering.base import ClusterRegistry, ClusterResult, Partition
from repro.obs import names as metric
from repro.clustering.centralized import Method, centralized_k_clustering
from repro.graph.wpg import WeightedProximityGraph


class CentralizedAnonymizer:
    """Serves k-clustering requests from a whole-WPG partition."""

    def __init__(
        self,
        graph: WeightedProximityGraph,
        k: int,
        registry: Optional[ClusterRegistry] = None,
        method: Method = "greedy",
        precomputed: "Optional[Partition]" = None,
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if precomputed is not None and precomputed.k != k:
            raise ConfigurationError(
                f"precomputed partition has k={precomputed.k}, expected {k}"
            )
        self._graph = graph
        self._k = k
        self._registry = registry if registry is not None else ClusterRegistry()
        self._method = method
        self._partitioned = False
        self._unclusterable: set[int] = set()
        self._precomputed = precomputed

    @property
    def registry(self) -> ClusterRegistry:
        """The shared cluster-assignment registry."""
        return self._registry

    @property
    def k(self) -> int:
        """The anonymity requirement."""
        return self._k

    @property
    def has_partitioned(self) -> bool:
        """True once the one-time whole-WPG partition has run."""
        return self._partitioned

    def request(self, host: int) -> ClusterResult:
        """Serve one cloaking request.

        The first request pays for everyone: all |D| - 1 other users
        submit their proximity information.  Later requests cost nothing.
        """
        if host not in self._graph:
            raise ClusteringError(f"unknown host {host}")
        involved = 0
        if not self._partitioned:
            involved = self._graph.vertex_count - 1
            with obs.span(metric.SPAN_PARTITION_ALL):
                self._partition_all()
        if obs.enabled():
            obs.inc(metric.CLUSTERING_REQUESTS)
            if involved:
                obs.inc(metric.CLUSTERING_INVOLVED_USERS, involved)
            else:
                obs.inc(metric.CLUSTERING_CACHE_HITS)
        cluster = self._registry.cluster_of(host)
        if cluster is None:
            raise ClusteringError(
                f"host {host} is in a component with fewer than k={self._k} users"
            )
        return ClusterResult(
            host,
            cluster,
            involved=involved,
            from_cache=self._partitioned and involved == 0,
        )

    def _partition_all(self) -> None:
        if self._precomputed is not None:
            partition = self._precomputed
        else:
            partition = centralized_k_clustering(
                self._graph, self._k, method=self._method
            )
        partition.validate()
        for group in partition.clusters:
            self._registry.register(group)
        for piece in partition.invalid:
            self._unclusterable |= piece
        self._partitioned = True

    @property
    def unclusterable(self) -> frozenset[int]:
        """Users in components too small to ever reach k-anonymity."""
        return frozenset(self._unclusterable)

    def restore_partition_state(
        self, partitioned: bool, unclusterable: frozenset[int]
    ) -> None:
        """Adopt a persisted partition flag (see :mod:`repro.persist`).

        A restored registry already holds every registered cluster; if
        the snapshotted anonymizer had run its one-time partition, the
        flag must come back too — otherwise the next request would run
        ``_partition_all`` again and double-register every group.
        """
        self._partitioned = bool(partitioned)
        self._unclusterable = set(unclusterable)
