"""Received-signal-strength models.

The paper's experiments "adopt a simple RSS model that is reversely
correlated to the distance"; :class:`IdealRSSModel` is that model.
:class:`LogDistanceRSSModel` adds the standard log-distance path-loss law
with optional log-normal shadowing, used by the robustness experiments to
show the algorithms tolerate noisy rankings.

All models return *larger is closer* readings, so sorting peers by
descending RSS sorts them by ascending estimated distance.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.errors import ConfigurationError


class RSSModel(Protocol):
    """Signal-strength reading for a transmitter at distance ``distance``."""

    def rss(self, distance: float) -> float:
        """Signal-strength reading at ``distance`` (larger = closer)."""
        ...


def rss_batch_fallback(model: RSSModel, distances: np.ndarray) -> np.ndarray:
    """Per-element readings for models without a vectorized ``rss_batch``.

    Readings are taken in array order, so stateful models (shadowing RNGs)
    consume their noise stream exactly as a scalar caller iterating the
    same pairs would — batch and scalar rankings stay bit-identical.
    """
    return np.fromiter(
        (model.rss(float(d)) for d in distances), dtype=float, count=len(distances)
    )


class IdealRSSModel:
    """Noise-free RSS strictly decreasing in distance.

    ``rss(d) = 1 / (d + eps)`` — the exact functional form is irrelevant
    because only the induced peer *ranking* is consumed, and any strictly
    decreasing function induces the distance ranking.
    """

    def __init__(self, epsilon: float = 1e-9) -> None:
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self._epsilon = epsilon

    def rss(self, distance: float) -> float:
        """Signal-strength reading at ``distance`` (larger = closer)."""
        if distance < 0:
            raise ConfigurationError(f"distance must be non-negative, got {distance}")
        return 1.0 / (distance + self._epsilon)

    def rss_batch(self, distances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rss`; bit-identical to the scalar readings."""
        if np.any(distances < 0):
            raise ConfigurationError("distances must be non-negative")
        return 1.0 / (distances + self._epsilon)


class LogDistanceRSSModel:
    """Log-distance path loss with optional log-normal shadowing.

    ``P(d) = P0 - 10 * n * log10(d / d0) + X`` where ``X ~ N(0, sigma^2)``
    in dB.  With ``sigma > 0`` the induced ranking is a noisy permutation
    of the true distance ranking — exactly the imperfection a real device
    observing WiFi RSS (paper Fig. 1) would see.

    The model is deterministic given its seed: the shadowing term for a
    given (ordered) pair of readings is drawn from the instance RNG, so
    construct one instance per simulated measurement campaign.
    """

    def __init__(
        self,
        reference_power_db: float = -40.0,
        path_loss_exponent: float = 2.5,
        reference_distance: float = 1e-4,
        shadowing_sigma_db: float = 0.0,
        seed: int = 0,
    ) -> None:
        if path_loss_exponent <= 0:
            raise ConfigurationError(
                f"path_loss_exponent must be positive, got {path_loss_exponent}"
            )
        if reference_distance <= 0:
            raise ConfigurationError(
                f"reference_distance must be positive, got {reference_distance}"
            )
        if shadowing_sigma_db < 0:
            raise ConfigurationError(
                f"shadowing_sigma_db must be non-negative, got {shadowing_sigma_db}"
            )
        self._p0 = reference_power_db
        self._n = path_loss_exponent
        self._d0 = reference_distance
        self._sigma = shadowing_sigma_db
        self._rng = np.random.default_rng(seed)

    def rss(self, distance: float) -> float:
        """Signal-strength reading at ``distance`` (larger = closer)."""
        if distance < 0:
            raise ConfigurationError(f"distance must be non-negative, got {distance}")
        effective = max(distance, self._d0)
        # np.log10 (not math.log10) so the scalar and batch paths round
        # identically — rankings must not depend on which path computed them.
        reading = self._p0 - 10.0 * self._n * float(np.log10(effective / self._d0))
        if self._sigma > 0:
            reading += float(self._rng.normal(0.0, self._sigma))
        return reading

    def rss_batch(self, distances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rss`; bit-identical to scalar readings.

        The shadowing draws come from the same RNG stream in array order,
        so a batch of n readings equals n successive scalar readings.
        """
        if np.any(distances < 0):
            raise ConfigurationError("distances must be non-negative")
        effective = np.maximum(distances, self._d0)
        readings = self._p0 - 10.0 * self._n * np.log10(effective / self._d0)
        if self._sigma > 0:
            readings = readings + self._rng.normal(0.0, self._sigma, size=len(readings))
        return readings
