"""Radio proximity measurement: RSS and TDOA models plus peer ranking."""

from repro.radio.rss import IdealRSSModel, LogDistanceRSSModel, RSSModel
from repro.radio.tdoa import TDOAModel
from repro.radio.measurement import ProximityMeter, ProximityModel

__all__ = [
    "IdealRSSModel",
    "LogDistanceRSSModel",
    "ProximityMeter",
    "ProximityModel",
    "RSSModel",
    "TDOAModel",
]
