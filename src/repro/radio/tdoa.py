"""Time-difference-of-arrival proximity model.

TDOA is the paper's second proposed proximity source: the shorter the
beacon round trip, the closer the peer.  Readings are *smaller is closer*,
the opposite sense of RSS; :class:`~repro.radio.measurement.ProximityMeter`
normalises both into a single "closeness" ordering.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: Signal propagation speed in unit-square lengths per second.  The value
#: is arbitrary (only ratios matter for rankings); it is chosen so typical
#: peer distances (~1e-3) give arrival times around a microsecond.
PROPAGATION_SPEED = 1000.0


class TDOAModel:
    """Beacon arrival time for a peer at a given distance.

    ``t(d) = d / c + jitter`` where jitter is zero-mean Gaussian clock
    noise.  With zero jitter the induced ranking equals the distance
    ranking.
    """

    def __init__(
        self,
        propagation_speed: float = PROPAGATION_SPEED,
        jitter_sigma: float = 0.0,
        seed: int = 0,
    ) -> None:
        if propagation_speed <= 0:
            raise ConfigurationError(
                f"propagation_speed must be positive, got {propagation_speed}"
            )
        if jitter_sigma < 0:
            raise ConfigurationError(
                f"jitter_sigma must be non-negative, got {jitter_sigma}"
            )
        self._speed = propagation_speed
        self._jitter = jitter_sigma
        self._rng = np.random.default_rng(seed)

    def arrival_time(self, distance: float) -> float:
        """Time of arrival of a beacon from a peer ``distance`` away."""
        if distance < 0:
            raise ConfigurationError(f"distance must be non-negative, got {distance}")
        reading = distance / self._speed
        if self._jitter > 0:
            reading += float(self._rng.normal(0.0, self._jitter))
        return max(reading, 0.0)

    def rss(self, distance: float) -> float:
        """Adapter to the RSS protocol: negate so larger means closer."""
        return -self.arrival_time(distance)

    def rss_batch(self, distances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rss`; bit-identical to scalar readings.

        Jitter draws come from the same RNG stream in array order, so a
        batch of n readings equals n successive scalar readings.
        """
        if np.any(distances < 0):
            raise ConfigurationError("distances must be non-negative")
        readings = distances / self._speed
        if self._jitter > 0:
            readings = readings + self._rng.normal(0.0, self._jitter, size=len(readings))
        return -np.maximum(readings, 0.0)
