"""Peer proximity measurement: turning radio readings into rankings.

Section VI of the paper defines the edge weights of the weighted proximity
graph as *mutual ranks*: each user sorts its connected peers by RSS
(strongest first) and the weight of edge ``(a, b)`` is the minimum of a's
rank in b's list and b's rank in a's list.  :class:`ProximityMeter`
implements the per-user half of that: given a user and its peers, produce
the RSS-sorted ranking.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

import numpy as np

from repro.datasets.base import PointDataset
from repro.errors import ConfigurationError
from repro.radio.rss import IdealRSSModel, RSSModel, rss_batch_fallback


class ProximityModel(Protocol):
    """Anything producing a larger-is-closer reading from a distance."""

    def rss(self, distance: float) -> float:
        """Signal-strength reading at ``distance`` (larger = closer)."""
        ...


class ProximityMeter:
    """Measures peer closeness for users of a static population.

    Parameters
    ----------
    dataset:
        The user positions (ids are dataset indexes).
    model:
        The radio model; defaults to the paper's ideal inverse-distance
        RSS.  Pass a :class:`~repro.radio.rss.LogDistanceRSSModel` with
        shadowing, or a :class:`~repro.radio.tdoa.TDOAModel`, for noisy or
        TDOA-based rankings.
    """

    def __init__(self, dataset: PointDataset, model: RSSModel | None = None) -> None:
        self._dataset = dataset
        self._model = model if model is not None else IdealRSSModel()
        self._coords: np.ndarray | None = None

    def reading(self, user: int, peer: int) -> float:
        """The radio reading ``user`` observes for ``peer`` (larger = closer)."""
        if user == peer:
            raise ConfigurationError("a user cannot measure itself")
        # sqrt of the squared distance (not hypot): the exact same floating
        # operations the vectorized rank_all performs, so scalar and batch
        # readings — and therefore rankings — are bit-identical.
        distance = math.sqrt(self._dataset[user].squared_distance_to(self._dataset[peer]))
        return self._model.rss(distance)

    def rank_peers(self, user: int, peers: Sequence[int]) -> list[int]:
        """``peers`` sorted by closeness to ``user`` (closest first).

        Ties are broken by peer id so rankings are deterministic.
        """
        readings = {peer: self.reading(user, peer) for peer in peers}
        return sorted(peers, key=lambda p: (-readings[p], p))

    def ranks(self, user: int, peers: Sequence[int]) -> dict[int, int]:
        """1-based rank of each peer in ``user``'s closeness ordering.

        Rank 1 is the closest peer — exactly the quantity the WPG builder
        takes the pairwise minimum of.
        """
        ordered = self.rank_peers(user, peers)
        return {peer: rank for rank, peer in enumerate(ordered, start=1)}

    # -- batch measurement ----------------------------------------------------

    def _coords_array(self) -> np.ndarray:
        if self._coords is None:
            # Transposed (2, n) so each axis is contiguous for the gathers.
            self._coords = np.ascontiguousarray(self._dataset.as_array().T)
        return self._coords

    def rank_all(self, indptr: np.ndarray, neighbors: np.ndarray) -> np.ndarray:
        """Every user's neighborhood ranked in one vectorized pass.

        ``neighbors[indptr[u]:indptr[u + 1]]`` are user ``u``'s candidate
        peers, in the order a scalar caller would pass them to
        :meth:`rank_peers` (stateful noisy models consume their noise
        stream in exactly that pair order).  Returns an array of the same
        length with each segment reordered closest-first, ties broken by
        peer id — segment ``u`` equals ``rank_peers(u, segment_u)``.
        """
        indptr = np.asarray(indptr, dtype=np.int64)
        neighbors = np.asarray(neighbors, dtype=np.int64)
        counts = np.diff(indptr)
        users = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
        if np.any(users == neighbors):
            raise ConfigurationError("a user cannot measure itself")
        xs, ys = self._coords_array()
        dx = xs[users] - xs[neighbors]
        dy = ys[users] - ys[neighbors]
        distances = np.sqrt(dx * dx + dy * dy)
        batch = getattr(self._model, "rss_batch", None)
        if batch is not None:
            readings = batch(distances)
        else:
            readings = rss_batch_fallback(self._model, distances)
        # Sort by (user, -reading, peer id): the per-user (-reading, id)
        # ordering of rank_peers, all segments at once.
        order = np.lexsort((neighbors, -readings, users))
        return neighbors[order]
