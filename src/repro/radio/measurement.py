"""Peer proximity measurement: turning radio readings into rankings.

Section VI of the paper defines the edge weights of the weighted proximity
graph as *mutual ranks*: each user sorts its connected peers by RSS
(strongest first) and the weight of edge ``(a, b)`` is the minimum of a's
rank in b's list and b's rank in a's list.  :class:`ProximityMeter`
implements the per-user half of that: given a user and its peers, produce
the RSS-sorted ranking.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.datasets.base import PointDataset
from repro.errors import ConfigurationError
from repro.radio.rss import IdealRSSModel, RSSModel


class ProximityModel(Protocol):
    """Anything producing a larger-is-closer reading from a distance."""

    def rss(self, distance: float) -> float:
        """Signal-strength reading at ``distance`` (larger = closer)."""
        ...


class ProximityMeter:
    """Measures peer closeness for users of a static population.

    Parameters
    ----------
    dataset:
        The user positions (ids are dataset indexes).
    model:
        The radio model; defaults to the paper's ideal inverse-distance
        RSS.  Pass a :class:`~repro.radio.rss.LogDistanceRSSModel` with
        shadowing, or a :class:`~repro.radio.tdoa.TDOAModel`, for noisy or
        TDOA-based rankings.
    """

    def __init__(self, dataset: PointDataset, model: RSSModel | None = None) -> None:
        self._dataset = dataset
        self._model = model if model is not None else IdealRSSModel()

    def reading(self, user: int, peer: int) -> float:
        """The radio reading ``user`` observes for ``peer`` (larger = closer)."""
        if user == peer:
            raise ConfigurationError("a user cannot measure itself")
        distance = self._dataset[user].distance_to(self._dataset[peer])
        return self._model.rss(distance)

    def rank_peers(self, user: int, peers: Sequence[int]) -> list[int]:
        """``peers`` sorted by closeness to ``user`` (closest first).

        Ties are broken by peer id so rankings are deterministic.
        """
        readings = {peer: self.reading(user, peer) for peer in peers}
        return sorted(peers, key=lambda p: (-readings[p], p))

    def ranks(self, user: int, peers: Sequence[int]) -> dict[int, int]:
        """1-based rank of each peer in ``user``'s closeness ordering.

        Rank 1 is the closest peer — exactly the quantity the WPG builder
        takes the pairwise minimum of.
        """
        ordered = self.rank_peers(user, peers)
        return {peer: rank for rank, peer in enumerate(ordered, start=1)}
