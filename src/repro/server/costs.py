"""Request-cost accounting (Sections V and VI).

The experiments charge a service request by the content it ships: every
candidate POI inside the cloaked region costs Cr messages' worth of
content (Table I: Cr = 1000 bounding messages per POI).  Larger cloaked
regions therefore trade privacy for a proportionally larger download —
the degradation the whole minimisation effort targets.
"""

from __future__ import annotations

from repro import obs
from repro.config import SimulationConfig
from repro.geometry.rect import Rect
from repro.obs import names as metric
from repro.server.poidb import POIDatabase


def request_cost_messages(
    db: POIDatabase, region: Rect, config: SimulationConfig
) -> float:
    """Cost of one service request over ``region``, in message units.

    ``Cr * |POIs inside region|`` — the candidate superset of the range
    query, each POI's content weighing Cr bounding messages.
    """
    with obs.span(metric.SPAN_REQUEST_COST):
        candidates = db.count_in_region(region)
    cost = config.request_cost * candidates
    if obs.enabled():
        obs.inc(metric.SERVER_REQUESTS)
        obs.inc(metric.SERVER_CANDIDATE_POIS, candidates)
        obs.inc(metric.SERVER_COST_MESSAGES, cost)
        obs.observe(
            metric.SERVER_CANDIDATES_PER_REQUEST,
            candidates,
            bounds=obs.COUNT_BUCKETS,
        )
    return cost


def total_request_cost(
    db: POIDatabase,
    region: Rect,
    clustering_messages: int,
    bounding_messages: int,
    config: SimulationConfig,
) -> float:
    """End-to-end cost of a cloaked request (Fig. 10 / Fig. 13c).

    Clustering and bounding messages cost one unit each (Cb = 1 in
    Table I scales them); the request itself costs per POI shipped.
    """
    return (
        clustering_messages
        + config.bounding_cost * bounding_messages
        + request_cost_messages(db, region, config)
    )
