"""The LBS server side: POI database, cloaked-region queries, costs."""

from repro.server.poidb import POIDatabase
from repro.server.queries import range_query, range_knn_query
from repro.server.costs import request_cost_messages, total_request_cost

__all__ = [
    "POIDatabase",
    "range_knn_query",
    "range_query",
    "request_cost_messages",
    "total_request_cost",
]
