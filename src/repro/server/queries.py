"""Query processing over cloaked regions (related work, Casper-style).

A server receiving a cloaked rectangle instead of a point cannot answer
exactly; it returns a *candidate superset* the client filters locally:

* :func:`range_query` — all POIs intersecting the query range anchored
  anywhere in the cloaked region (the experiments' service request);
* :func:`range_knn_query` — the k-range-nearest-neighbor query of Hu and
  Lee: every POI that could be among the k nearest of *some* point in
  the region.

Both return candidate id lists whose length is the request's
communication cost in POI-content units.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.server.poidb import POIDatabase


def range_query(db: POIDatabase, region: Rect, radius: float = 0.0) -> list[int]:
    """Candidates for a radius query issued from somewhere in ``region``.

    The superset is every POI within ``radius`` of the region, i.e.
    inside the region expanded by ``radius`` (corner rounding ignored, as
    in Casper's rectangular candidate sets — the superset stays a
    superset).  ``radius=0`` degenerates to "POIs inside the cloaked
    region", the cost the experiments charge.
    """
    if radius < 0:
        raise ConfigurationError(f"radius must be non-negative, got {radius}")
    return db.in_region(region.expanded(radius))


def range_knn_query(db: POIDatabase, region: Rect, k: int) -> list[int]:
    """k-range-NN candidates: the union of kNN answers over the region.

    Sound superset construction: for any anchor p inside the region and
    any corner c, ``kNNdist(p) <= |p - c| + kNNdist(c)`` (take c's k
    nearest; they all lie within that radius of p).  Since some corner is
    within the region's diagonal of p, every anchor's k-th-NN distance is
    at most ``max_corner kNNdist(corner) + diagonal``, so every possible
    answer lies within that radius of the region.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if len(db) < k:
        return list(range(len(db)))
    corners = [
        Point(region.x_min, region.y_min),
        Point(region.x_min, region.y_max),
        Point(region.x_max, region.y_min),
        Point(region.x_max, region.y_max),
    ]
    corner_radius = 0.0
    for corner in corners:
        ids = db.nearest(corner, k)
        corner_radius = max(corner_radius, corner.distance_to(db.poi(ids[-1])))
    return db.in_region(region.expanded(corner_radius + region.diagonal))


def filter_exact_knn(
    db: POIDatabase, candidates: list[int], position: Point, k: int
) -> list[int]:
    """The client-side refinement step: exact kNN from the candidate set."""
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    ranked = sorted(
        candidates, key=lambda i: position.squared_distance_to(db.poi(i))
    )
    return ranked[:k]
