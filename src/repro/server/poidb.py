"""The POI database the LBS server queries against.

In the paper's experiments the POI dataset doubles as the user population
("each POI represents a user who is standing right at its coordinates")
and the service request is a range query on the same dataset.  The
database indexes the points with the grid index so region queries cost
O(result).
"""

from __future__ import annotations

from typing import Sequence

from repro.datasets.base import PointDataset
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.spatial.grid import GridIndex


class POIDatabase:
    """A static point-of-interest database with rectangle retrieval.

    ``cell_size`` trades index memory against query speed; the default
    suits unit-square datasets with 1e4-1e5 points.
    """

    def __init__(self, dataset: PointDataset, cell_size: float = 0.01) -> None:
        if cell_size <= 0:
            raise ConfigurationError(f"cell_size must be positive, got {cell_size}")
        self._dataset = dataset
        self._index = GridIndex(dataset.points, cell_size=cell_size)

    def __len__(self) -> int:
        return len(self._dataset)

    @property
    def dataset(self) -> PointDataset:
        """The underlying point dataset."""
        return self._dataset

    def poi(self, idx: int) -> Point:
        """The POI point stored under ``idx``."""
        return self._dataset[idx]

    def in_region(self, region: Rect) -> list[int]:
        """Ids of every POI inside the closed rectangle ``region``."""
        return self._index.query_rect(region)

    def count_in_region(self, region: Rect) -> int:
        """Number of POIs inside ``region`` (cheaper than :meth:`in_region`)."""
        return self._index.count_rect(region)

    def nearest(self, center: Point, count: int) -> list[int]:
        """The ``count`` POIs nearest to ``center``, nearest first."""
        return self._index.nearest_neighbors(center, count)

    def points_of(self, ids: Sequence[int]) -> list[Point]:
        """Materialise the points for a list of ids."""
        return [self._dataset[i] for i in ids]
