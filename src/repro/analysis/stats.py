"""Small statistics helpers used by the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a metric series."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    stddev: float

    @classmethod
    def empty(cls) -> "Summary":
        """An all-NaN summary for an empty series."""
        return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan)


def summarize(values: Sequence[float]) -> Summary:
    """Summarise ``values``; an empty series yields NaNs, not errors."""
    if not values:
        return Summary.empty()
    ordered = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n
    if n % 2:
        median = ordered[n // 2]
    else:
        median = (ordered[n // 2 - 1] + ordered[n // 2]) / 2.0
    variance = sum((v - mean) ** 2 for v in ordered) / n
    return Summary(
        count=n,
        mean=mean,
        median=median,
        minimum=ordered[0],
        maximum=ordered[-1],
        stddev=math.sqrt(variance),
    )
