"""Plain-text tables and series, the way the benchmark harness prints them.

Every figure runner renders its result through these helpers so bench
output is uniform and diffable against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """An aligned monospace table with a header separator."""
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells)) if cells
        else len(headers[col])
        for col in range(len(headers))
    ]
    def line(parts: Sequence[str]) -> str:
        return "  ".join(part.rjust(width) for part, width in zip(parts, widths))

    out = [line(headers), line(["-" * width for width in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    title: str = "",
) -> str:
    """One x column plus one column per named series (a figure's data)."""
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(column[i] for column in series.values())]
        for i, x in enumerate(x_values)
    ]
    table = format_table(headers, rows)
    return f"{title}\n{table}" if title else table
