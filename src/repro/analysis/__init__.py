"""Metric aggregation and report formatting."""

from repro.analysis.stats import Summary, summarize
from repro.analysis.reporting import format_series, format_table

__all__ = ["Summary", "format_series", "format_table", "summarize"]
