"""Tests for the experiment harness and figure runners (small scale)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fig9_degree import run_fig9
from repro.experiments.fig10_total_cost import run_fig10
from repro.experiments.fig11_k import run_fig11
from repro.experiments.fig12_requests import run_fig12
from repro.experiments.fig13_bounding import run_fig13
from repro.experiments.harness import (
    ALGORITHMS,
    ExperimentSetup,
    run_clustering_workload,
)
from repro.experiments.tables import table1_text
from repro.experiments.workloads import clusterable_users, sample_hosts
from repro.server.poidb import POIDatabase


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup.paper_default(users=4000, requests=60)


@pytest.fixture(scope="module")
def default_graph(setup):
    return setup.graph(setup.base_config)


class TestWorkloads:
    def test_clusterable_users_component_sizes(self, default_graph):
        eligible = set(clusterable_users(default_graph, 10))
        from repro.graph.components import connected_component

        for user in list(eligible)[:20]:
            assert len(connected_component(default_graph, user)) >= 10

    def test_sample_hosts_distinct_and_eligible(self, default_graph):
        hosts = sample_hosts(default_graph, 10, 50, seed=1)
        assert len(set(hosts)) == 50
        assert set(hosts) <= set(clusterable_users(default_graph, 10))

    def test_sample_hosts_reproducible(self, default_graph):
        assert sample_hosts(default_graph, 10, 30, seed=5) == sample_hosts(
            default_graph, 10, 30, seed=5
        )

    def test_sample_too_many_raises(self, default_graph):
        with pytest.raises(ConfigurationError):
            sample_hosts(default_graph, 10, 10**7, seed=0)


class TestSetup:
    def test_delta_scaled_below_full_population(self, setup):
        assert setup.base_config.delta == pytest.approx(
            2e-3 * math.sqrt(104770 / 4000)
        )

    def test_graph_cache(self, setup):
        g1 = setup.graph(setup.base_config)
        g2 = setup.graph(setup.base_config)
        assert g1 is g2

    def test_partition_cache(self, setup, default_graph):
        p1 = setup.whole_partition(default_graph, 10)
        p2 = setup.whole_partition(default_graph, 10)
        assert p1 is p2

    def test_unknown_algorithm(self, setup, default_graph):
        with pytest.raises(ConfigurationError):
            setup.service("simulated-annealing", default_graph, 5)  # type: ignore[arg-type]


class TestWorkloadRun:
    def test_metrics_for_each_algorithm(self, setup, default_graph):
        hosts = sample_hosts(default_graph, 10, 40, seed=2)
        for algorithm in ALGORITHMS:
            result = run_clustering_workload(
                setup, algorithm, setup.base_config, hosts, graph=default_graph
            )
            assert result.served + result.failures == len(hosts)
            if result.served:
                assert result.avg_comm_cost >= 0
                assert result.avg_cloaked_area > 0
            for cluster in result.clusters:
                assert len(cluster) >= setup.base_config.k

    def test_poi_counts_when_db_given(self, setup, default_graph):
        hosts = sample_hosts(default_graph, 10, 20, seed=3)
        db = POIDatabase(setup.dataset)
        result = run_clustering_workload(
            setup, "t-conn", setup.base_config, hosts, graph=default_graph, db=db
        )
        assert len(result.per_request_pois) == result.served
        # A k-cluster's box contains at least its k members (users = POIs).
        assert all(p >= setup.base_config.k for p in result.per_request_pois)


class TestFigureRunners:
    def test_fig9_structure_and_shape(self, setup):
        result = run_fig9(setup, m_values=(4, 16), requests=40, seed=7)
        assert result.m_values == (4, 16)
        assert result.avg_degrees[0] < result.avg_degrees[1]
        costs = result.comm_cost_series()
        # Centralized pays |D|/S and must dominate; kNN must be cheapest.
        assert costs["centralized t-conn"][0] > costs["t-conn"][0]
        assert costs["knn"][0] < costs["t-conn"][0]
        assert "Fig 9(a)" in result.format()

    def test_fig10_series(self, setup):
        result = run_fig10(setup, ratios=(0, 10), requests=40, seed=7)
        series = result.total_cost_series()
        for curve in series.values():
            assert curve[0] < curve[1]  # more POI content costs more
        assert "Fig 10" in result.format()

    def test_fig11_knn_cost_linear_in_k(self, setup):
        result = run_fig11(setup, k_values=(5, 15), requests=40, seed=7)
        knn_costs = result.comm_cost_series()["knn"]
        assert knn_costs[1] > knn_costs[0]
        assert "Fig 11(b)" in result.format()

    def test_fig12_tconn_cost_drops_with_s(self, setup):
        result = run_fig12(setup, s_values=(30, 120), seed=7)
        tconn = result.comm_cost_series()["t-conn"]
        central = result.comm_cost_series()["centralized t-conn"]
        assert tconn[1] < tconn[0]
        assert central[1] == pytest.approx(central[0] / 4, rel=0.01)
        assert "Fig 12(a)" in result.format()

    def test_fig13_policy_orderings(self, setup):
        result = run_fig13(setup, k_values=(5,), requests=30, seed=7)
        cells = {policy: runs[0] for policy, runs in result.cells.items()}
        # Bounds always valid: every policy's request >= optimal's.
        for policy in ("linear", "exponential", "secure"):
            assert cells[policy].avg_request_ratio >= 1.0 - 1e-9
        # The aggressive policy is loosest; the conservative one tightest.
        assert cells["exponential"].avg_request_ratio >= cells["linear"].avg_request_ratio
        # Secure's total does not exceed the other progressives'.
        assert cells["secure"].avg_total_cost <= cells["linear"].avg_total_cost + 1e-9
        assert cells["secure"].avg_total_cost <= cells["exponential"].avg_total_cost + 1e-9
        assert "Fig 13(d)" in result.format()


class TestTable1:
    def test_contains_all_parameters(self):
        text = table1_text()
        for needle in ("104770", "0.002", "1000", "2000", "delta", "Cb", "Cr"):
            assert needle in text
