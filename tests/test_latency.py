"""Tests for the protocol latency estimators."""

import math

import pytest

from repro.bounding.boxing import secure_bounding_box
from repro.bounding.policies import LinearPolicy
from repro.bounding.protocol import progressive_upper_bound
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.network.latency import (
    LatencyModel,
    bounding_run_latency,
    cloaking_latency,
    clustering_latency,
)


def deterministic(rtt: float = 0.1) -> LatencyModel:
    return LatencyModel(median_rtt=rtt, sigma=0.0)


class TestLatencyModel:
    def test_deterministic_rtt(self):
        model = deterministic(0.2)
        assert model.sample_rtt() == pytest.approx(0.2)
        assert model.slowest_of(50) == pytest.approx(0.2)

    def test_random_rtts_positive_and_varied(self):
        model = LatencyModel(median_rtt=0.05, sigma=0.8, seed=3)
        samples = [model.sample_rtt() for _ in range(50)]
        assert all(s > 0 for s in samples)
        assert len(set(samples)) > 40

    def test_slowest_of_grows_with_concurrency(self):
        """Expected maximum of more log-normal samples is larger."""
        lone = LatencyModel(median_rtt=0.05, sigma=0.8, seed=1)
        crowd = LatencyModel(median_rtt=0.05, sigma=0.8, seed=1)
        avg_one = sum(lone.slowest_of(1) for _ in range(300)) / 300
        avg_many = sum(crowd.slowest_of(30) for _ in range(300)) / 300
        assert avg_many > avg_one

    def test_replay(self):
        a = LatencyModel(seed=9)
        b = LatencyModel(seed=9)
        assert [a.sample_rtt() for _ in range(10)] == [
            b.sample_rtt() for _ in range(10)
        ]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(median_rtt=0.0)
        with pytest.raises(ConfigurationError):
            LatencyModel(sigma=-1.0)
        with pytest.raises(ConfigurationError):
            LatencyModel().slowest_of(0)


class TestClusteringLatency:
    def test_sequential_sum(self):
        assert clustering_latency(7, deterministic(0.1)) == pytest.approx(0.7)

    def test_zero_involved(self):
        assert clustering_latency(0, deterministic()) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            clustering_latency(-1, deterministic())


class TestBoundingLatency:
    def test_no_iterations_is_free(self):
        outcome = progressive_upper_bound([0.1, 0.2], 0.5, LinearPolicy(0.1))
        assert outcome.iterations == 0
        assert bounding_run_latency(outcome, deterministic()) == 0.0

    def test_one_round_trip_per_iteration(self):
        outcome = progressive_upper_bound([0.95], 0.5, LinearPolicy(0.1))
        assert outcome.iterations == 5
        latency = bounding_run_latency(outcome, deterministic(0.1))
        assert latency == pytest.approx(0.5)

    def test_rounds_not_messages(self):
        """Parallel verification: 3 members cost rounds, not 3x rounds."""
        outcome = progressive_upper_bound(
            [0.55, 0.56, 0.57], 0.5, LinearPolicy(0.1)
        )
        assert outcome.iterations == 1
        assert outcome.messages == 3
        latency = bounding_run_latency(outcome, deterministic(0.1))
        assert latency == pytest.approx(0.1)  # one round, three replies


class TestCloakingLatency:
    @pytest.fixture()
    def box(self):
        members = [Point(0.5, 0.5), Point(0.52, 0.51), Point(0.49, 0.53)]
        return secure_bounding_box(members, 0, lambda: LinearPolicy(0.01))

    def test_parallel_directions_take_the_max(self, box):
        model_a = deterministic(0.1)
        parallel = cloaking_latency(10, box.directions, model_a)
        model_b = deterministic(0.1)
        serial = cloaking_latency(
            10, box.directions, model_b, parallel_directions=False
        )
        assert serial >= parallel
        # Phase 1 alone costs 10 * 0.1.
        assert parallel >= 1.0

    def test_monotone_in_involved_users(self, box):
        few = cloaking_latency(5, box.directions, deterministic(0.1))
        many = cloaking_latency(50, box.directions, deterministic(0.1))
        assert many > few

    def test_no_directions(self):
        assert cloaking_latency(4, {}, deterministic(0.1)) == pytest.approx(0.4)

    def test_end_to_end_with_real_pipeline(self):
        """Estimate the latency of an actual wire-level cloaking request."""
        from repro.cloaking.p2p_engine import P2PCloakingSession
        from repro.config import SimulationConfig
        from repro.datasets import uniform_points
        from repro.graph.build import build_wpg

        config = SimulationConfig(
            user_count=300, delta=0.09, max_peers=8, k=6
        )
        dataset = uniform_points(300, seed=44)
        graph = build_wpg(dataset, config.delta, config.max_peers)
        session = P2PCloakingSession.bootstrapped(dataset, graph, config)
        result = session.request(3)
        # Reconstruct per-direction outcomes by re-running the analytic
        # boxing (identical inputs -> identical outcomes).
        from repro.bounding.boxing import secure_bounding_box as boxit
        from repro.bounding.presets import paper_policy

        members = sorted(result.cluster.members)
        points = [dataset[i] for i in members]
        box = boxit(
            points, 0,
            lambda: paper_policy("secure", len(points), config),
        )
        latency = cloaking_latency(
            result.cluster.involved, box.directions, LatencyModel(seed=1)
        )
        assert latency > 0
        assert math.isfinite(latency)
