"""Tests for the progressive bounding protocol, policies, boxing, privacy."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounding.boxing import optimal_bounding_box, secure_bounding_box
from repro.bounding.costmodel import AreaRequestCost
from repro.bounding.distributions import UniformIncrement
from repro.bounding.policies import ExponentialPolicy, LinearPolicy, SecurePolicy
from repro.bounding.privacy import (
    PrivacyFloorPolicy,
    privacy_loss_intervals,
    privacy_loss_metric,
)
from repro.bounding.protocol import optimal_bound, progressive_upper_bound
from repro.errors import BoundingError, ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect

values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=25,
)
policies = st.sampled_from(
    [
        LinearPolicy(0.05),
        ExponentialPolicy(0.01),
        SecurePolicy(UniformIncrement(0.3), AreaRequestCost(100.0), cb=1.0),
    ]
)


class TestPolicies:
    def test_linear_constant(self):
        policy = LinearPolicy(0.2)
        assert policy.increment(5, 0.0) == 0.2
        assert policy.increment(1, 3.0) == 0.2

    def test_exponential_doubles(self):
        policy = ExponentialPolicy(0.1)
        assert policy.increment(5, 0.0) == 0.1
        assert policy.increment(5, 0.4) == 0.4  # increment == extent: doubles

    def test_secure_adapts_to_n(self):
        policy = SecurePolicy(UniformIncrement(1.0), AreaRequestCost(100.0), cb=1.0)
        small = policy.increment(1, 0.0)
        large = policy.increment(10, 0.0)
        assert large >= small

    def test_secure_exact_mode(self):
        policy = SecurePolicy(
            UniformIncrement(1.0), AreaRequestCost(100.0), cb=1.0, mode="exact"
        )
        assert policy.increment(3, 0.0) > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinearPolicy(0.0)
        with pytest.raises(ConfigurationError):
            ExponentialPolicy(-1.0)
        with pytest.raises(ConfigurationError):
            SecurePolicy(UniformIncrement(1.0), AreaRequestCost(1.0), cb=0.0)
        with pytest.raises(ConfigurationError):
            SecurePolicy(
                UniformIncrement(1.0), AreaRequestCost(1.0), cb=1.0, mode="wild"
            )  # type: ignore[arg-type]
        policy = SecurePolicy(UniformIncrement(1.0), AreaRequestCost(1.0), cb=1.0)
        with pytest.raises(ConfigurationError):
            policy.increment(0, 0.0)


class TestProtocol:
    def test_empty_values_raise(self):
        with pytest.raises(ConfigurationError):
            progressive_upper_bound([], 0.0, LinearPolicy(0.1))

    def test_all_covered_at_start(self):
        outcome = progressive_upper_bound([0.1, 0.2], 0.5, LinearPolicy(0.1))
        assert outcome.iterations == 0
        assert outcome.messages == 0
        assert outcome.bound == 0.5

    def test_single_user_iterates(self):
        outcome = progressive_upper_bound([0.95], 0.5, LinearPolicy(0.1))
        assert outcome.bound >= 0.95
        assert outcome.iterations == 5
        assert outcome.messages == 5  # one user verifying each round

    def test_messages_count_disagreeing_only(self):
        # Two users: one agrees after round 1, the other after round 2.
        outcome = progressive_upper_bound([0.55, 0.65], 0.5, LinearPolicy(0.1))
        assert outcome.iterations == 2
        assert outcome.messages == 3  # 2 + 1

    def test_agreement_intervals_pin_values(self):
        values = [0.55, 0.65]
        outcome = progressive_upper_bound(values, 0.5, LinearPolicy(0.1))
        for index, (low, high) in outcome.agreement_intervals.items():
            assert low < values[index] <= high or math.isinf(low)

    def test_non_positive_increment_rejected(self):
        class BrokenPolicy:
            name = "broken"

            def increment(self, disagreeing, extent):
                return 0.0

        with pytest.raises(BoundingError):
            progressive_upper_bound([1.0], 0.0, BrokenPolicy())

    def test_max_iterations_guard(self):
        with pytest.raises(BoundingError):
            progressive_upper_bound(
                [1e12], 0.0, LinearPolicy(1.0), max_iterations=10
            )

    @given(values=values_strategy, policy=policies)
    @settings(max_examples=60, deadline=None)
    def test_property_bound_covers_all_values(self, values, policy):
        """The protocol's fundamental guarantee: the result upper-bounds
        every private value, whatever the policy."""
        outcome = progressive_upper_bound(values, 0.0, policy)
        assert outcome.bound >= max(values)
        assert outcome.overshoot(values) >= 0.0

    @given(values=values_strategy)
    @settings(max_examples=30, deadline=None)
    def test_property_intervals_cover_every_user(self, values):
        outcome = progressive_upper_bound(values, 0.0, LinearPolicy(0.13))
        assert set(outcome.agreement_intervals) == set(range(len(values)))

    def test_optimal_bound_is_exact_max(self):
        assert optimal_bound([0.2, 0.9, 0.5]) == 0.9
        with pytest.raises(ConfigurationError):
            optimal_bound([])


class TestBoxing:
    @pytest.fixture()
    def cluster(self):
        return [
            Point(0.50, 0.50),
            Point(0.52, 0.49),
            Point(0.48, 0.53),
            Point(0.51, 0.47),
        ]

    def test_box_contains_all_members(self, cluster):
        result = secure_bounding_box(cluster, 0, lambda: LinearPolicy(0.01))
        assert all(result.region.contains(p) for p in cluster)

    def test_box_contains_optimal_box(self, cluster):
        result = secure_bounding_box(cluster, 0, lambda: LinearPolicy(0.01))
        assert result.region.contains_rect(optimal_bounding_box(cluster))

    def test_clip_to_unit_square(self):
        members = [Point(0.99, 0.99), Point(0.98, 0.98)]
        result = secure_bounding_box(
            members, 0, lambda: LinearPolicy(0.05), clip_to=Rect.unit_square()
        )
        assert Rect.unit_square().contains_rect(result.region)
        assert all(result.region.contains(p) for p in members)

    def test_costs_aggregate_directions(self, cluster):
        result = secure_bounding_box(cluster, 0, lambda: LinearPolicy(0.01))
        assert set(result.directions) == {"x_max", "x_min", "y_max", "y_min"}
        assert result.messages == sum(
            run.messages for run in result.directions.values()
        )
        assert result.iterations == sum(
            run.iterations for run in result.directions.values()
        )

    def test_bad_host_index(self, cluster):
        with pytest.raises(ConfigurationError):
            secure_bounding_box(cluster, 9, lambda: LinearPolicy(0.01))

    def test_optimal_box_tight(self, cluster):
        box = optimal_bounding_box(cluster)
        assert box == Rect(0.48, 0.52, 0.47, 0.53)


class TestPrivacy:
    def test_interval_widths(self):
        outcome = progressive_upper_bound([0.55, 0.95], 0.5, LinearPolicy(0.1))
        widths = privacy_loss_intervals(outcome)
        assert all(w == pytest.approx(0.1) for w in widths)

    def test_metric_summary(self):
        outcome = progressive_upper_bound([0.55, 0.95], 0.5, LinearPolicy(0.1))
        loss = privacy_loss_metric([outcome])
        assert loss.users_measured == 2
        assert loss.min_width == pytest.approx(0.1)
        assert loss.worst_bits == pytest.approx(math.log2(1 / 0.1))

    def test_metric_empty(self):
        outcome = progressive_upper_bound([0.1], 0.5, LinearPolicy(0.1))
        loss = privacy_loss_metric([outcome])
        assert loss.users_measured == 0

    def test_metric_validation(self):
        with pytest.raises(ConfigurationError):
            privacy_loss_metric([], domain=0.0)

    def test_floor_policy_limits_leak(self):
        """With a privacy floor, no agreement interval is narrower than it."""
        inner = SecurePolicy(UniformIncrement(0.5), AreaRequestCost(1e4), cb=1.0)
        floored = PrivacyFloorPolicy(inner, floor=0.05)
        values = [0.51, 0.62, 0.93]
        outcome = progressive_upper_bound(values, 0.5, floored)
        widths = privacy_loss_intervals(outcome)
        assert min(widths) >= 0.05 - 1e-12

    def test_floor_policy_validation(self):
        with pytest.raises(ConfigurationError):
            PrivacyFloorPolicy(LinearPolicy(0.1), floor=0.0)

    def test_floor_tradeoff_looser_bound(self):
        """The floor buys privacy with a (weakly) looser bound."""
        values = [0.501, 0.502, 0.503]
        tight = progressive_upper_bound(values, 0.5, LinearPolicy(0.001))
        floored = progressive_upper_bound(
            values, 0.5, PrivacyFloorPolicy(LinearPolicy(0.001), floor=0.05)
        )
        assert floored.bound >= tight.bound
        assert min(privacy_loss_intervals(floored)) >= 0.05 - 1e-12
