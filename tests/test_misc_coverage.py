"""Focused tests for corners the broader suites pass over."""

import pytest

from repro.errors import (
    BoundingError,
    ClusteringError,
    ConfigurationError,
    DatasetError,
    GraphError,
    ProtocolError,
    ReproError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error",
        [
            BoundingError,
            ClusteringError,
            ConfigurationError,
            DatasetError,
            GraphError,
            ProtocolError,
        ],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)
        with pytest.raises(ReproError):
            raise error("boom")


class TestPublicAPI:
    def test_package_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        import repro

        assert repro.__version__


class TestRegularGraphSwaps:
    def test_swapped_graph_stays_regular(self):
        from repro.graph.generators import random_regular_graph

        for seed in (0, 1, 2):
            graph = random_regular_graph(14, 4, seed=seed)
            assert all(graph.degree(v) == 4 for v in graph.vertices())
            assert graph.edge_count == 14 * 4 // 2

    def test_different_seeds_differ(self):
        from repro.graph.generators import random_regular_graph

        a = random_regular_graph(20, 4, seed=1)
        b = random_regular_graph(20, 4, seed=2)
        assert {e.key() for e in a.edges()} != {e.key() for e in b.edges()}

    def test_odd_degree_even_vertices(self):
        from repro.graph.generators import random_regular_graph

        graph = random_regular_graph(10, 3, seed=4)
        assert all(graph.degree(v) == 3 for v in graph.vertices())

    def test_degree_zero(self):
        from repro.graph.generators import random_regular_graph

        graph = random_regular_graph(5, 0, seed=0)
        assert graph.edge_count == 0


class TestNetworkSizes:
    def test_response_size_accounted(self):
        from repro.network.simulator import PeerNetwork

        net = PeerNetwork()
        net.register(2, "blob", lambda s, p: "data")
        net.call(1, 2, "blob", response_size=500.0)
        # 1 request (size 1) + 1 response (size 500).
        assert net.stats.total_size == 501.0

    def test_stats_by_kind_separates_replies(self):
        from repro.network.simulator import PeerNetwork

        net = PeerNetwork()
        net.register(2, "ping", lambda s, p: "pong")
        net.call(1, 2, "ping")
        assert net.stats.by_kind["ping"] == 1
        assert net.stats.by_kind["ping:reply"] == 1


class TestHarnessCache:
    def test_shared_setup_is_cached(self):
        from repro.experiments.harness import shared_setup

        assert shared_setup(users=1200, requests=10) is shared_setup(
            users=1200, requests=10
        )

    def test_full_scale_delta_unchanged(self):
        from repro.experiments.harness import ExperimentSetup

        setup = ExperimentSetup.paper_default(users=104_770, requests=10)
        assert setup.base_config.delta == pytest.approx(2e-3)


class TestMaterializingView:
    def test_subgraph_served_locally(self):
        """Step 3's subgraph call must not issue network traffic."""
        from repro.clustering.protocol import _MaterializingView
        from repro.datasets import uniform_points
        from repro.graph.build import build_wpg
        from repro.network.node import populate_network
        from repro.network.remote_graph import RemoteGraphView
        from repro.network.simulator import PeerNetwork

        dataset = uniform_points(60, seed=2)
        graph = build_wpg(dataset, delta=0.3, max_peers=5)
        net = PeerNetwork()
        populate_network(net, graph, list(dataset.points))
        view = _MaterializingView(
            RemoteGraphView(net, 0, graph.adjacency_message(0)), graph
        )
        sent_before = net.stats.sent
        sub = view.subgraph([0, 1, 2])
        assert net.stats.sent == sent_before
        assert sub.vertex_count == 3
