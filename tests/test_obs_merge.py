"""merge_snapshots: folding per-process obs/v1 documents into one.

The sharded service runs one metrics registry per worker process; the
dispatcher gathers each worker's snapshot over the wire and merges them
with :func:`repro.obs.merge_snapshots`.  These tests pin the fold's
semantics: counters and gauges sum, histograms sum count/total/buckets
and fold min/max, exemplars union keeping the largest observation per
bucket, tails are dropped (per-process quantiles cannot be combined
exactly), and structural mismatches are typed errors rather than silent
miscounts.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.obs import merge_snapshots, validate_snapshot
from repro.obs.export import snapshot
from repro.obs.registry import MetricsRegistry

SCHEMA = json.loads(
    (Path(__file__).resolve().parents[1] / "benchmarks" / "obs_snapshot_schema.json")
    .read_text()
)

BOUNDS = (1.0, 10.0, 100.0)


def snap(fill) -> dict:
    registry = MetricsRegistry()
    fill(registry)
    return snapshot(registry)


def worker_a(registry: MetricsRegistry) -> None:
    registry.counter("service.requests").inc(3)
    registry.counter("service.worker.frames").inc(5)
    registry.gauge("cloaking.regions_cached").set(2)
    hist = registry.histogram("cloaking.involved", BOUNDS)
    for value in (0.5, 4.0, 250.0):
        hist.observe(value)


def worker_b(registry: MetricsRegistry) -> None:
    registry.counter("service.requests").inc(4)
    registry.counter("service.overloads").inc(1)
    registry.gauge("cloaking.regions_cached").set(7)
    hist = registry.histogram("cloaking.involved", BOUNDS)
    for value in (2.0, 60.0):
        hist.observe(value)


def test_counters_sum_and_union():
    merged = merge_snapshots([snap(worker_a), snap(worker_b)])
    assert merged["counters"]["service.requests"] == 7
    assert merged["counters"]["service.worker.frames"] == 5
    assert merged["counters"]["service.overloads"] == 1


def test_gauges_sum_per_process_quantities():
    # Each worker's cached-region gauge is a per-process count; the
    # fleet-wide total is their sum.
    merged = merge_snapshots([snap(worker_a), snap(worker_b)])
    assert merged["gauges"]["cloaking.regions_cached"] == 9


def test_histograms_sum_buckets_and_fold_min_max():
    merged = merge_snapshots([snap(worker_a), snap(worker_b)])
    hist = merged["histograms"]["cloaking.involved"]
    assert hist["count"] == 5
    assert hist["total"] == pytest.approx(0.5 + 4.0 + 250.0 + 2.0 + 60.0)
    assert hist["mean"] == pytest.approx(hist["total"] / 5)
    assert hist["min"] == 0.5
    assert hist["max"] == 250.0
    assert hist["bounds"] == list(BOUNDS)
    # buckets: <=1: {0.5}; <=10: {4, 2}; <=100: {60}; overflow: {250}
    assert hist["bucket_counts"] == [1, 2, 1, 1]


def test_single_snapshot_is_identity_for_scalars():
    one = snap(worker_a)
    merged = merge_snapshots([one])
    assert merged["counters"] == one["counters"]
    assert merged["gauges"] == one["gauges"]
    hist = merged["histograms"]["cloaking.involved"]
    for key in ("count", "total", "min", "max", "bounds", "bucket_counts"):
        assert hist[key] == one["histograms"]["cloaking.involved"][key]


def test_merged_snapshot_passes_the_checked_in_schema():
    merged = merge_snapshots([snap(worker_a), snap(worker_b)])
    assert validate_snapshot(merged, SCHEMA) == []


def test_exemplar_union_keeps_largest_value_per_bucket():
    a, b = snap(worker_a), snap(worker_b)
    a["histograms"]["cloaking.involved"]["exemplars"] = {
        "1": {"trace_id": 11, "value": 4.0},
        "3": {"trace_id": 12, "value": 250.0},
    }
    b["histograms"]["cloaking.involved"]["exemplars"] = {
        "1": {"trace_id": 77, "value": 9.0},
    }
    merged = merge_snapshots([a, b])
    exemplars = merged["histograms"]["cloaking.involved"]["exemplars"]
    assert exemplars["1"] == {"trace_id": 77, "value": 9.0}  # 9.0 beats 4.0
    assert exemplars["3"] == {"trace_id": 12, "value": 250.0}


def test_tails_are_dropped_not_fabricated():
    a = snap(worker_a)
    a["histograms"]["cloaking.involved"]["tails"] = {"p99": 4.2}
    merged = merge_snapshots([a, snap(worker_b)])
    assert "tails" not in merged["histograms"]["cloaking.involved"]


def test_empty_input_is_a_typed_error():
    with pytest.raises(ConfigurationError):
        merge_snapshots([])


def test_wrong_schema_tag_is_a_typed_error():
    bad = snap(worker_a)
    bad["schema"] = "obs/v0"
    with pytest.raises(ConfigurationError, match="obs/v1"):
        merge_snapshots([snap(worker_b), bad])


def test_conflicting_bucket_bounds_are_a_typed_error():
    def other_bounds(registry: MetricsRegistry) -> None:
        registry.histogram("cloaking.involved", (5.0, 50.0)).observe(1.0)

    with pytest.raises(ConfigurationError, match="bounds"):
        merge_snapshots([snap(worker_a), snap(other_bounds)])


def test_disjoint_histogram_names_all_survive():
    def only_spans(registry: MetricsRegistry) -> None:
        registry.span_stats("service.request").observe(0.002)

    merged = merge_snapshots([snap(worker_a), snap(only_spans)])
    assert "cloaking.involved" in merged["histograms"]
    assert merged["spans"]["service.request"]["count"] == 1
