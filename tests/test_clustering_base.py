"""Tests for cluster results, the registry and involvement metering."""

import pytest

from repro.clustering.base import (
    ClusterRegistry,
    ClusterResult,
    InvolvementMeter,
    Partition,
)
from repro.errors import ClusteringError


class TestClusterResult:
    def test_host_must_be_member(self):
        with pytest.raises(ClusteringError):
            ClusterResult(host=1, members=frozenset({2, 3}), involved=0)

    def test_size(self):
        r = ClusterResult(host=1, members=frozenset({1, 2, 3}), involved=2)
        assert r.size == 3
        assert not r.from_cache


class TestPartition:
    def test_validate_good(self):
        p = Partition(k=2, clusters=[{1, 2}, {3, 4, 5}], invalid=[{6}])
        p.validate()

    def test_validate_small_cluster(self):
        p = Partition(k=3, clusters=[{1, 2}])
        with pytest.raises(ClusteringError):
            p.validate()

    def test_validate_overlap(self):
        p = Partition(k=2, clusters=[{1, 2}, {2, 3}])
        with pytest.raises(ClusteringError):
            p.validate()

    def test_validate_invalid_piece_too_big(self):
        p = Partition(k=2, invalid=[{1, 2, 3}])
        with pytest.raises(ClusteringError):
            p.validate()

    def test_validate_invalid_overlapping_cluster(self):
        p = Partition(k=2, clusters=[{1, 2}], invalid=[{2}])
        with pytest.raises(ClusteringError):
            p.validate()

    def test_cluster_of(self):
        p = Partition(k=2, clusters=[{1, 2}], invalid=[{9}])
        assert p.cluster_of(1) == {1, 2}
        assert p.cluster_of(9) is None  # invalid pieces are not clusters
        assert p.cluster_of(42) is None

    def test_covered(self):
        p = Partition(k=2, clusters=[{1, 2}], invalid=[{9}])
        assert p.covered == 3


class TestClusterRegistry:
    def test_register_and_lookup(self):
        reg = ClusterRegistry()
        cid = reg.register({1, 2, 3})
        assert reg.cluster_of(2) == frozenset({1, 2, 3})
        assert reg.cluster_by_id(cid) == frozenset({1, 2, 3})
        assert 2 in reg
        assert 9 not in reg

    def test_register_empty_raises(self):
        with pytest.raises(ClusteringError):
            ClusterRegistry().register([])

    def test_double_registration_violates_reciprocity(self):
        reg = ClusterRegistry()
        reg.register({1, 2})
        with pytest.raises(ClusteringError):
            reg.register({2, 3})

    def test_assigned_snapshot(self):
        reg = ClusterRegistry()
        reg.register({1, 2})
        snap = reg.assigned
        reg.register({3, 4})
        assert snap == frozenset({1, 2})
        assert reg.assigned == frozenset({1, 2, 3, 4})

    def test_assigned_view_is_live(self):
        reg = ClusterRegistry()
        view = reg.assigned_view()
        reg.register({5, 6})
        assert 5 in view

    def test_check_reciprocity_passes(self):
        reg = ClusterRegistry()
        reg.register({1, 2})
        reg.register({3, 4})
        reg.check_reciprocity()

    def test_len_counts_clusters(self):
        reg = ClusterRegistry()
        reg.register({1, 2})
        reg.register({3, 4})
        assert len(reg) == 2
        assert reg.assigned_count == 4


class TestInvolvementMeter:
    def test_host_not_counted(self):
        meter = InvolvementMeter(host=7)
        meter.touch(7)
        meter.touch(1)
        meter.touch(1)
        assert meter.count == 1
        assert meter.involved == frozenset({1})

    def test_touch_all(self):
        meter = InvolvementMeter(host=0)
        meter.touch_all([0, 1, 2, 3])
        assert meter.count == 3

    def test_callable_protocol(self):
        meter = InvolvementMeter(host=0)
        meter(5)
        assert meter.count == 1
