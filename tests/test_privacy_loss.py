"""PrivacyLoss aggregation — above all, the empty-run sentinel contract.

An empty run (nobody pinned to a finite interval) must report the one
canonical sentinel ``PrivacyLoss.empty()``: widths at the min-identity
``inf`` and ``worst_bits`` at the max-identity ``0.0``, so folding it
into sweeps can neither shrink a minimum nor poison a sum.  Anything
else claiming ``users_measured == 0`` is rejected at construction.
"""

from __future__ import annotations

import math

import pytest

from repro.bounding.policies import LinearPolicy
from repro.bounding.privacy import (
    PrivacyFloorPolicy,
    PrivacyLoss,
    privacy_loss_intervals,
    privacy_loss_metric,
)
from repro.bounding.protocol import BoundingOutcome, progressive_upper_bound
from repro.errors import ConfigurationError


class TestEmptySentinel:
    def test_empty_constructor(self):
        loss = PrivacyLoss.empty()
        assert loss.users_measured == 0
        assert math.isinf(loss.min_width) and math.isinf(loss.mean_width)
        assert loss.worst_bits == 0.0
        assert loss.is_empty

    def test_min_aggregation_identity(self):
        # Folding the sentinel into a minimum never shrinks a real value.
        real = PrivacyLoss(3, 0.05, 0.1, math.log2(1.0 / 0.05))
        assert min(real.min_width, PrivacyLoss.empty().min_width) == 0.05

    def test_max_aggregation_identity(self):
        real = PrivacyLoss(3, 0.05, 0.1, math.log2(1.0 / 0.05))
        assert max(real.worst_bits, PrivacyLoss.empty().worst_bits) == real.worst_bits

    @pytest.mark.parametrize(
        "args",
        [
            (0, 1.0, math.inf, 0.0),  # finite min_width
            (0, math.inf, 1.0, 0.0),  # finite mean_width
            (0, math.inf, math.inf, 2.0),  # nonzero bits
            (0, math.inf, math.inf, -math.inf),  # the algebraic -inf
        ],
    )
    def test_nonstandard_empty_instances_rejected(self, args):
        with pytest.raises(ConfigurationError):
            PrivacyLoss(*args)

    def test_negative_users_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivacyLoss(-1, math.inf, math.inf, 0.0)

    def test_nonempty_instances_unconstrained(self):
        loss = PrivacyLoss(2, 0.1, 0.2, math.log2(10.0))
        assert not loss.is_empty


class TestMetricAggregation:
    def test_no_outcomes_is_the_sentinel(self):
        assert privacy_loss_metric([]) == PrivacyLoss.empty()

    def test_everyone_covered_at_start_is_the_sentinel(self):
        # start above every value: nobody verifies, nobody leaks.
        outcome = progressive_upper_bound([0.1, 0.2, 0.3], 0.5, LinearPolicy(0.1))
        assert privacy_loss_intervals(outcome) == []
        assert privacy_loss_metric([outcome]) == PrivacyLoss.empty()

    def test_real_run_measures_the_exposed_users(self):
        outcome = progressive_upper_bound(
            [0.2, 0.45, 0.7], 0.2, LinearPolicy(0.1)
        )
        loss = privacy_loss_metric([outcome])
        assert loss.users_measured == outcome.exposed_users == 2
        widths = privacy_loss_intervals(outcome)
        assert loss.min_width == pytest.approx(min(widths))
        assert loss.mean_width == pytest.approx(sum(widths) / len(widths))
        assert loss.worst_bits == pytest.approx(math.log2(1.0 / min(widths)))

    def test_aggregates_across_runs(self):
        a = progressive_upper_bound([0.3, 0.6], 0.3, LinearPolicy(0.2))
        b = progressive_upper_bound([0.1, 0.9], 0.1, LinearPolicy(0.05))
        loss = privacy_loss_metric([a, b])
        assert loss.users_measured == a.exposed_users + b.exposed_users
        assert loss.min_width == pytest.approx(
            min(privacy_loss_intervals(a) + privacy_loss_intervals(b))
        )

    def test_zero_width_interval_is_infinite_bits(self):
        outcome = BoundingOutcome(
            bound=0.5,
            start=0.0,
            iterations=1,
            messages=1,
            agreement_intervals={0: (0.5, 0.5)},
        )
        assert privacy_loss_metric([outcome]).worst_bits == math.inf

    def test_domain_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            privacy_loss_metric([], domain=0.0)


class TestPrivacyFloorPolicy:
    def test_floor_lifts_small_increments(self):
        policy = PrivacyFloorPolicy(LinearPolicy(0.01), floor=0.05)
        assert policy.increment(3, 0.0) == 0.05
        assert policy.floor == 0.05
        assert policy.name == "linear+floor"

    def test_large_increments_pass_through(self):
        policy = PrivacyFloorPolicy(LinearPolicy(0.2), floor=0.05)
        assert policy.increment(3, 0.0) == 0.2

    def test_floor_bounds_every_interval_width(self):
        policy_factory = lambda: PrivacyFloorPolicy(LinearPolicy(0.01), floor=0.05)
        outcome = progressive_upper_bound(
            [0.2, 0.31, 0.52, 0.9], 0.2, policy_factory()
        )
        for width in privacy_loss_intervals(outcome):
            assert width >= 0.05 - 1e-12

    def test_invalid_floor_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivacyFloorPolicy(LinearPolicy(0.1), floor=0.0)
