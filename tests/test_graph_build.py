"""Tests for WPG construction (Section VI's recipe)."""

import pytest

from repro.datasets.base import PointDataset
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.graph.build import build_wpg
from repro.graph.metrics import average_degree
from repro.radio.measurement import ProximityMeter
from repro.radio.rss import LogDistanceRSSModel


@pytest.fixture()
def line():
    """Five users on a line, spacing 0.01."""
    return PointDataset([Point(0.1 + 0.01 * i, 0.5) for i in range(5)])


class TestParameters:
    def test_bad_delta_raises(self, line):
        with pytest.raises(ConfigurationError):
            build_wpg(line, delta=0.0, max_peers=3)

    def test_bad_max_peers_raises(self, line):
        with pytest.raises(ConfigurationError):
            build_wpg(line, delta=0.1, max_peers=0)


class TestEdgeSemantics:
    def test_out_of_range_users_disconnected(self, line):
        graph = build_wpg(line, delta=0.005, max_peers=3)
        assert graph.edge_count == 0
        assert graph.vertex_count == 5

    def test_all_vertices_present(self, line):
        graph = build_wpg(line, delta=0.1, max_peers=3)
        assert set(graph.vertices()) == set(range(5))

    def test_mutual_rank_weights_on_line(self, line):
        """End users rank their sole adjacent peer first: weight-1 edges."""
        graph = build_wpg(line, delta=0.1, max_peers=4)
        # 0's nearest is 1, and 4's nearest is 3: rank 1 on one side
        # suffices because the weight is the min of the two ranks.
        assert graph.weight(0, 1) == 1.0
        assert graph.weight(3, 4) == 1.0
        # The farthest pair can rank each other no better than last.
        assert graph.weight(0, 4) == 4.0

    def test_weight_is_min_of_mutual_ranks(self):
        """An asymmetric pair takes the smaller rank.

        User 3 sits far right; its nearest peer is 2 (rank 1), while 2
        ranks 1 and 0 closer than 3 (rank 3).  min(1, 3) = 1.
        """
        ds = PointDataset(
            [Point(0.10, 0.5), Point(0.11, 0.5), Point(0.12, 0.5), Point(0.2, 0.5)]
        )
        graph = build_wpg(ds, delta=0.5, max_peers=3)
        assert graph.weight(2, 3) == 1.0

    def test_max_peers_caps_degree_growth(self):
        """Without the cap every pair in range connects; the cap thins it."""
        ds = PointDataset([Point(0.5 + 0.001 * i, 0.5) for i in range(30)])
        dense = build_wpg(ds, delta=0.1, max_peers=29)
        capped = build_wpg(ds, delta=0.1, max_peers=3)
        assert average_degree(capped) < average_degree(dense)
        # An edge exists iff at least one endpoint lists the other, so a
        # vertex's degree can exceed M but weights never exceed M.
        assert max(e.weight for e in capped.edges()) <= 3

    def test_weights_are_positive_integers(self, small_dataset, small_config):
        graph = build_wpg(small_dataset, small_config.delta, small_config.max_peers)
        for edge in graph.edges():
            assert edge.weight == int(edge.weight)
            assert 1 <= edge.weight <= small_config.max_peers

    def test_symmetry_weight_agreed_by_both(self, small_graph):
        for edge in small_graph.edges():
            assert small_graph.weight(edge.u, edge.v) == small_graph.weight(
                edge.v, edge.u
            )


class TestCustomMeter:
    def test_noisy_meter_changes_rankings(self, line):
        clean = build_wpg(line, delta=0.1, max_peers=4)
        noisy_meter = ProximityMeter(
            line, model=LogDistanceRSSModel(shadowing_sigma_db=20.0, seed=3)
        )
        noisy = build_wpg(line, delta=0.1, max_peers=4, meter=noisy_meter)
        # Same vertices and edge count class, but some weight must differ
        # under 20 dB shadowing on a 5-user line.
        clean_weights = {e.key(): e.weight for e in clean.edges()}
        noisy_weights = {e.key(): e.weight for e in noisy.edges()}
        assert clean_weights != noisy_weights

    def test_graph_never_stores_coordinates(self, small_graph):
        """The WPG API exposes adjacency only — no positional leakage."""
        assert not hasattr(small_graph, "points")
        assert not hasattr(small_graph, "positions")
