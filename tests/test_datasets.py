"""Tests for dataset containers, generators and I/O."""

import math

import numpy as np
import pytest

from repro.datasets import (
    PointDataset,
    california_like_poi,
    gaussian_clusters,
    grid_points,
    load_csv,
    save_csv,
    uniform_points,
)
from repro.errors import DatasetError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class TestPointDataset:
    def test_empty_raises(self):
        with pytest.raises(DatasetError):
            PointDataset([])

    def test_len_iter_getitem(self):
        ds = PointDataset([Point(0, 0), Point(1, 1)])
        assert len(ds) == 2
        assert list(ds) == [Point(0, 0), Point(1, 1)]
        assert ds[1] == Point(1, 1)

    def test_bounds(self):
        ds = PointDataset([Point(0.2, 0.5), Point(0.8, 0.1)])
        assert ds.bounds() == Rect(0.2, 0.8, 0.1, 0.5)

    def test_as_array(self):
        arr = PointDataset([Point(1, 2), Point(3, 4)]).as_array()
        assert arr.shape == (2, 2)
        assert arr[1, 0] == 3.0

    def test_normalized_fits_unit_square(self):
        ds = PointDataset([Point(10, 10), Point(30, 20)]).normalized()
        box = ds.bounds()
        assert Rect.unit_square().contains_rect(box)
        # Aspect ratio preserved: x extent was 2x the y extent.
        assert box.width == pytest.approx(1.0)
        assert box.height == pytest.approx(0.5)

    def test_normalized_identical_points_raises(self):
        with pytest.raises(DatasetError):
            PointDataset([Point(1, 1), Point(1, 1)]).normalized()

    def test_sample_distinct(self):
        ds = uniform_points(50, seed=0)
        ids = ds.sample(20, np.random.default_rng(1))
        assert len(set(ids)) == 20

    def test_sample_too_many_raises(self):
        ds = uniform_points(5, seed=0)
        with pytest.raises(DatasetError):
            ds.sample(6, np.random.default_rng(0))

    def test_subset(self):
        ds = uniform_points(10, seed=0)
        sub = ds.subset([3, 7])
        assert len(sub) == 2
        assert sub[0] == ds[3]


class TestGenerators:
    def test_uniform_in_unit_square(self):
        ds = uniform_points(200, seed=4)
        assert all(0.0 <= p.x <= 1.0 and 0.0 <= p.y <= 1.0 for p in ds)

    def test_uniform_seeded_reproducible(self):
        assert list(uniform_points(20, seed=7)) == list(uniform_points(20, seed=7))

    def test_uniform_different_seeds_differ(self):
        assert list(uniform_points(20, seed=1)) != list(uniform_points(20, seed=2))

    def test_uniform_rejects_nonpositive(self):
        with pytest.raises(DatasetError):
            uniform_points(0)

    def test_grid_points_count_and_spacing(self):
        ds = grid_points(4)
        assert len(ds) == 16
        assert ds[0] == Point(0.125, 0.125)

    def test_grid_points_jitter_bounds(self):
        with pytest.raises(DatasetError):
            grid_points(3, jitter=0.5)

    def test_gaussian_clusters_clipped(self):
        ds = gaussian_clusters(300, clusters=3, spread=0.4, seed=5)
        assert all(0.0 <= p.x <= 1.0 and 0.0 <= p.y <= 1.0 for p in ds)

    def test_gaussian_rejects_bad_params(self):
        with pytest.raises(DatasetError):
            gaussian_clusters(10, clusters=0)
        with pytest.raises(DatasetError):
            gaussian_clusters(10, spread=0.0)


class TestCaliforniaLike:
    def test_count_and_range(self):
        ds = california_like_poi(5000, seed=1)
        assert len(ds) == 5000
        assert all(0.0 <= p.x <= 1.0 and 0.0 <= p.y <= 1.0 for p in ds)

    def test_reproducible(self):
        a = california_like_poi(2000, seed=9)
        b = california_like_poi(2000, seed=9)
        assert list(a) == list(b)

    def test_is_clustered_not_uniform(self):
        """The generator must be much lumpier than a uniform scatter.

        Compare cell-occupancy variance on a coarse grid: clustered data
        concentrates mass in few cells.
        """
        ds = california_like_poi(20000, seed=2)
        uni = uniform_points(20000, seed=2)

        def occupancy_variance(dataset):
            counts = np.zeros((20, 20))
            for p in dataset:
                counts[min(int(p.x * 20), 19), min(int(p.y * 20), 19)] += 1
            return counts.var()

        assert occupancy_variance(ds) > 5 * occupancy_variance(uni)

    def test_rejects_bad_params(self):
        with pytest.raises(DatasetError):
            california_like_poi(0)
        with pytest.raises(DatasetError):
            california_like_poi(100, urban_centers=1)
        with pytest.raises(DatasetError):
            california_like_poi(100, corridors=-1)

    def test_road_backbone_percolates(self):
        """The urban+corridor mass must form one dominant WPG component.

        This is the structural property the kNN-deterioration experiments
        rely on (see DESIGN.md): a giant component covering well over
        half the population at Table-I-equivalent density.
        """
        from repro.graph.build import build_wpg
        from repro.graph.components import connected_components

        n = 20000
        ds = california_like_poi(n)
        delta = 2e-3 * math.sqrt(104770 / n)
        graph = build_wpg(ds, delta, 10)
        biggest = max(len(c) for c in connected_components(graph))
        assert biggest > 0.6 * n


class TestCsvIO:
    def test_roundtrip(self, tmp_path):
        ds = uniform_points(30, seed=12)
        path = tmp_path / "points.csv"
        save_csv(ds, path)
        loaded = load_csv(path)
        assert list(loaded) == list(ds)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_csv(tmp_path / "nope.csv")

    def test_malformed_row_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\n0.1,0.2\noops\n")
        with pytest.raises(DatasetError):
            load_csv(path)

    def test_headerless_file(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("0.1,0.2\n0.3,0.4\n")
        loaded = load_csv(path)
        assert len(loaded) == 2

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("x,y\n")
        with pytest.raises(DatasetError):
            load_csv(path)
