"""Protocol robustness: backpressure, malformed frames, clean shutdown.

Three contracts from ISSUE 9, each pinned at the layer that owns it:

* **bounded admission** — when ``queue_capacity`` requests are in
  flight the next caller gets a typed
  :class:`~repro.errors.ServiceOverload` immediately; nothing hangs and
  nothing is silently dropped, and capacity freed by completions is
  usable again;
* **a worker is unkillable by input** — bad JSON, non-object JSON,
  unknown ops, mis-typed fields, unowned hosts and oversized length
  declarations all come back as typed error frames on a live loop;
  only a truncated frame (peer died mid-write) or clean EOF ends it;
* **shutdown drains** — ``close()`` lets in-flight work finish and
  answers late callers with a typed error instead of a hang.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time

import pytest

from repro.errors import ServiceError, ServiceOverload, WireFormatError
from repro.network.frames import read_frame, send_frame
from repro.service import CloakingService, ServiceSpec, build_engine
from repro.service.frontend import BackgroundFrontend
from repro.service.shards import ShardMap
from repro.service.worker import ShardServer, serve

SPEC = ServiceSpec.synthetic(
    users=120, seed=9, kind="uniform", delta=0.08, k=3, shards=1,
    queue_capacity=2,
)


# -- in-process op handler ------------------------------------------------------------


@pytest.fixture(scope="module")
def server() -> ShardServer:
    engine = build_engine(SPEC)
    return ShardServer(0, engine, ShardMap(1, SPEC.delta), range(120))


def _error_type(reply: dict) -> str:
    assert reply["status"] == "error"
    return reply["error"]["type"]


def test_unknown_op_is_a_typed_error(server):
    reply, keep = server.handle({"op": "frobnicate", "id": 3})
    assert _error_type(reply) == "WireFormatError"
    assert reply["id"] == 3
    assert keep


def test_missing_op_is_a_typed_error(server):
    reply, keep = server.handle({"id": 4})
    assert _error_type(reply) == "WireFormatError"
    assert keep


def test_mistyped_host_is_a_typed_error(server):
    for bad in ("7", None, 3.5, True, [7]):
        reply, _ = server.handle({"op": "request", "host": bad, "id": 1})
        assert _error_type(reply) == "WireFormatError", bad


def test_unowned_host_is_a_typed_error(server):
    reply, _ = server.handle({"op": "request", "host": 500, "id": 2})
    assert _error_type(reply) == "ServiceError"
    assert "not owned" in reply["error"]["message"]


def test_cloaking_failure_is_an_outcome_not_an_error():
    # A deliberately sparse world: most users sit in components smaller
    # than k, so their requests fail *as cloaking outcomes*.
    sparse = ServiceSpec.synthetic(
        users=40, seed=1, kind="uniform", delta=0.02, k=8, shards=1
    )
    engine = build_engine(sparse)
    sparse_server = ShardServer(0, engine, ShardMap(1, sparse.delta), range(40))
    failures = 0
    for host in range(40):
        reply, _ = sparse_server.handle({"op": "request", "host": host, "id": host})
        assert reply["status"] == "ok"
        outcome = reply["outcome"]
        if not outcome["ok"]:
            failures += 1
            assert outcome["error"]["type"]
            assert outcome["host"] == host
    assert failures > 0, "expected at least one under-k component"


# -- the frame loop over a real socket ------------------------------------------------

MAX_FRAME = 4096


@pytest.fixture()
def live_loop():
    engine = build_engine(SPEC)
    worker = ShardServer(0, engine, ShardMap(1, SPEC.delta), range(120))
    ours, theirs = socket.socketpair()
    thread = threading.Thread(
        target=serve, args=(theirs, worker, MAX_FRAME), daemon=True
    )
    thread.start()
    yield ours, thread
    ours.close()
    thread.join(timeout=10.0)
    assert not thread.is_alive()


def _send_raw(sock: socket.socket, body: bytes) -> None:
    sock.sendall(struct.pack(">I", len(body)) + body)


def test_bad_json_gets_a_reply_and_the_loop_survives(live_loop):
    sock, _ = live_loop
    _send_raw(sock, b"{this is not json")
    reply = read_frame(sock, MAX_FRAME)
    assert reply["status"] == "error"
    assert reply["error"]["type"] == "WireFormatError"
    # The loop is still serving:
    send_frame(sock, {"op": "ping", "id": 5}, MAX_FRAME)
    assert read_frame(sock, MAX_FRAME)["status"] == "ok"


def test_non_object_json_gets_a_reply_and_the_loop_survives(live_loop):
    sock, _ = live_loop
    _send_raw(sock, json.dumps([1, 2, 3]).encode())
    assert read_frame(sock, MAX_FRAME)["error"]["type"] == "WireFormatError"
    send_frame(sock, {"op": "ping", "id": 6}, MAX_FRAME)
    assert read_frame(sock, MAX_FRAME)["status"] == "ok"


def test_oversized_frame_resyncs_without_killing_the_worker(live_loop):
    sock, _ = live_loop
    oversized = b"x" * (MAX_FRAME + 100)
    sock.sendall(struct.pack(">I", len(oversized)) + oversized)
    reply = read_frame(sock, MAX_FRAME)
    assert reply["status"] == "error"
    assert reply["error"]["type"] == "FrameTooLarge"
    # The worker discarded the declared bytes and resynced at the next
    # frame boundary:
    send_frame(sock, {"op": "ping", "id": 7}, MAX_FRAME)
    assert read_frame(sock, MAX_FRAME)["status"] == "ok"


def test_truncated_frame_exits_the_loop_cleanly(live_loop):
    sock, thread = live_loop
    sock.sendall(struct.pack(">I", 64) + b"only ten b")
    sock.close()
    thread.join(timeout=10.0)
    assert not thread.is_alive()


def test_clean_eof_exits_the_loop(live_loop):
    sock, thread = live_loop
    send_frame(sock, {"op": "ping", "id": 1}, MAX_FRAME)
    assert read_frame(sock, MAX_FRAME)["status"] == "ok"
    sock.close()
    thread.join(timeout=10.0)
    assert not thread.is_alive()


# -- backpressure and shutdown through the real multi-process service -----------------


def test_queue_full_is_typed_overload_not_a_hang_or_drop():
    with CloakingService(SPEC) as service:
        first = service.stall(0, 0.5)
        second = service.stall(0, 0.5)
        started = time.perf_counter()
        with pytest.raises(ServiceOverload, match="admission queue full"):
            service.request(0)
        # Rejection was immediate — backpressure, not queueing.
        assert time.perf_counter() - started < 0.4
        # Nothing was dropped: the stalled work completes...
        assert first.result(timeout=10.0)["status"] == "ok"
        assert second.result(timeout=10.0)["status"] == "ok"
        # ...and freed capacity serves the retry.
        outcome = service.request(0)
        assert outcome["host"] == 0


def test_shutdown_drains_in_flight_work():
    service = CloakingService(SPEC)
    pending = service.stall(0, 0.4)
    service.close()
    # close() waited for the in-flight op instead of dropping it.
    assert pending.result(timeout=1.0)["status"] == "ok"
    with pytest.raises(ServiceError, match="closed"):
        service.request(0)


def test_close_is_idempotent():
    service = CloakingService(SPEC)
    service.close()
    service.close()


# -- the TCP front door ----------------------------------------------------------------


def _rpc(sock: socket.socket, payload: dict) -> dict:
    body = json.dumps(payload).encode()
    sock.sendall(struct.pack(">I", len(body)) + body)
    return _read_reply(sock)


def _read_reply(sock: socket.socket) -> dict:
    header = b""
    while len(header) < 4:
        chunk = sock.recv(4 - len(header))
        assert chunk, "connection closed before a reply"
        header += chunk
    (length,) = struct.unpack(">I", header)
    body = b""
    while len(body) < length:
        body += sock.recv(length - len(body))
    return json.loads(body)


def test_frontend_survives_malformed_json_and_closes_on_oversize():
    with CloakingService(SPEC) as service, BackgroundFrontend(service) as addr:
        with socket.create_connection(addr) as sock:
            # Malformed body: typed reply, connection keeps serving.
            sock.sendall(struct.pack(">I", 9) + b"not json!")
            assert _read_reply(sock)["error"]["type"] == "WireFormatError"
            reply = _rpc(sock, {"op": "request", "host": 3, "id": 1})
            assert reply["status"] == "ok"
            # Unknown op: typed reply, still serving.
            assert _rpc(sock, {"op": "nope", "id": 2})["status"] == "error"
        with socket.create_connection(addr) as sock:
            # Oversized declaration: typed reply, then the server hangs
            # up (an untrusted stream has no resync point).
            sock.sendall(struct.pack(">I", 1 << 30))
            reply = _read_reply(sock)
            assert reply["status"] == "error"
            assert reply["error"]["type"] == "WireFormatError"
            assert sock.recv(4) == b""


def test_frontend_propagates_typed_service_errors():
    with CloakingService(SPEC) as service, BackgroundFrontend(service) as addr:
        with socket.create_connection(addr) as sock:
            reply = _rpc(sock, {"op": "request", "host": 10_000, "id": 1})
            assert reply["status"] == "error"
            assert reply["error"]["type"] == "ServiceError"
