"""Seeded soak: sustained interleaved churn + requests leaves no stale state.

A small-N tier-1 version of the ``bench_churn`` workload: 200 interleaved
operations (random-waypoint move batches through ``engine.apply_moves``,
cloaking requests in between) against a single long-lived engine.  The
checks are the ones that matter operationally:

* every region still cached at the end is *valid now* — contains all of
  its cluster's members at their current positions and satisfies
  k-anonymity (``apply_moves`` must have evicted everything stale);
* the incrementally-maintained WPG equals a from-scratch rebuild over
  the final positions;
* ``clear_regions()`` drains the cache completely.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloaking.engine import CloakingEngine
from repro.config import SimulationConfig
from repro.datasets.base import PointDataset
from repro.datasets.synthetic import uniform_points
from repro.errors import ClusteringError
from repro.graph.build import build_wpg_fast
from repro.mobility.waypoint import RandomWaypointModel
from repro.verify.invariants import graph_equality_details

N = 400
OPERATIONS = 200
MOVERS_PER_TICK = 8


@pytest.fixture(scope="module")
def soaked_engine():
    dataset = uniform_points(N, seed=21)
    config = SimulationConfig(
        user_count=N, k=4, delta=0.08, max_peers=6, seed=21
    )
    graph = build_wpg_fast(dataset, config.delta, config.max_peers)
    engine = CloakingEngine(dataset, graph, config)
    walkers = RandomWaypointModel(
        dataset, min_speed=0.005, max_speed=0.03, seed=77
    )
    rng = np.random.default_rng(123)
    served = failed = moves = 0
    for op in range(OPERATIONS):
        if op % 2 == 0:
            movers = rng.choice(N, size=MOVERS_PER_TICK, replace=False)
            batch = walkers.step_subset(np.sort(movers))
            engine.apply_moves(batch)
            moves += len(batch)
        else:
            host = int(rng.integers(0, N))
            try:
                engine.request(host)
                served += 1
            except ClusteringError:
                failed += 1
    return engine, config, served, failed, moves


def test_soak_exercised_both_paths(soaked_engine):
    engine, _config, served, failed, moves = soaked_engine
    assert served + failed == OPERATIONS // 2
    assert served > 0, "soak never formed a region — workload too sparse"
    assert moves > 0
    assert engine.churn_runtime is not None


def test_no_stale_cached_regions(soaked_engine):
    engine, config, _, _, _ = soaked_engine
    points = engine.dataset.points
    cached = engine.cached_regions()
    for members, region in cached.items():
        assert region.anonymity == len(members)
        assert region.satisfies(config.k)
        for member in members:
            assert region.rect.contains(points[member]), (
                f"cached region for {sorted(members)} no longer contains "
                f"user {member} at its current position — stale entry "
                "survived apply_moves"
            )


def test_incremental_graph_matches_final_rebuild(soaked_engine):
    engine, config, _, _, _ = soaked_engine
    rebuilt = build_wpg_fast(
        PointDataset(list(engine.dataset.points)),
        config.delta,
        config.max_peers,
    )
    assert (
        graph_equality_details(engine.graph, rebuilt, "soaked", "rebuild")
        == []
    )


def test_clear_regions_drains_cache(soaked_engine):
    # Runs last in file order: mutates the module-scoped engine's cache.
    engine, config, _, _, _ = soaked_engine
    before = engine.regions_cached
    assert engine.clear_regions() == before
    assert engine.regions_cached == 0
    assert engine.cached_regions() == {}
