"""The invariant registry and its behaviour over real world runs."""

from __future__ import annotations

import pytest

from repro.verify.fuzz import run_world
from repro.verify.invariants import (
    Violation,
    WorldRun,
    _REGISTRY,
    check_world,
    invariant,
    registered_invariants,
)
from repro.verify.worlds import World

EXPECTED_INVARIANTS = {
    "wpg-fast-scalar-equal",
    "k-anonymity",
    "member-containment",
    "cloak-vs-oracle-box",
    "region-reciprocity",
    "clustering-level-scan",
    "min-mew-exhaustive",
    "isolation-theorem-4.4",
    "clean-failure-justified",
    "unexpected-errors",
    "deterministic-replay",
    "p2p-matches-analytic",
    "transcript-audit",
    "churn-incremental-equal",
    "cluster-tree-equal",
    "trace-ledger-agree",
    "snapshot-replay-equal",
    "service-shard-equal",
    "region-share-equal",
    "tuning-sound",
}


@pytest.fixture(scope="module")
def clean_run() -> WorldRun:
    """One small served world, shared by the read-only checks."""
    return run_world(World(seed=2, n=28, k=3, requests=3))


class TestRegistry:
    def test_expected_invariants_registered(self):
        assert set(registered_invariants()) == EXPECTED_INVARIANTS

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):

            @invariant("wpg-fast-scalar-equal")
            def _clash(run):
                return []

    def test_temporary_registration(self):
        @invariant("test-only-noop")
        def _noop(run):
            return []

        try:
            assert "test-only-noop" in registered_invariants()
        finally:
            del _REGISTRY["test-only-noop"]
        assert "test-only-noop" not in registered_invariants()


class TestCheckWorld:
    def test_clean_world_has_no_violations(self, clean_run):
        assert check_world(clean_run) == []

    def test_names_filter_restricts_checks(self, clean_run):
        @invariant("test-always-fails")
        def _fail(run):
            return ["synthetic failure"]

        try:
            only_k = check_world(clean_run, names=["k-anonymity"])
            assert only_k == []
            filtered = check_world(clean_run, names=["test-always-fails"])
            assert [v.invariant for v in filtered] == ["test-always-fails"]
        finally:
            del _REGISTRY["test-always-fails"]

    def test_violation_carries_replayable_world(self, clean_run):
        @invariant("test-always-fails")
        def _fail(run):
            return ["synthetic failure"]

        try:
            violations = check_world(clean_run, names=["test-always-fails"])
        finally:
            del _REGISTRY["test-always-fails"]
        assert violations == [
            Violation(
                "test-always-fails",
                "synthetic failure",
                clean_run.built.world.to_dict(),
            )
        ]
        assert World.from_dict(violations[0].world) == clean_run.built.world

    def test_crashing_invariant_becomes_a_finding(self, clean_run):
        @invariant("test-crashes")
        def _crash(run):
            raise RuntimeError("boom")

        try:
            violations = check_world(clean_run, names=["test-crashes"])
        finally:
            del _REGISTRY["test-crashes"]
        assert len(violations) == 1
        assert "invariant crashed" in violations[0].detail
        assert "boom" in violations[0].detail


class TestRunWorld:
    def test_run_world_populates_replay_records(self, clean_run):
        assert clean_run.replay_records is not None
        assert len(clean_run.replay_records) == len(clean_run.records)
        assert clean_run.p2p is None  # not a p2p world

    def test_p2p_world_carries_transcript(self):
        run = run_world(
            World(seed=4, n=40, k=3, delta=0.2, requests=3, p2p=True, policy="linear")
        )
        assert run.p2p is not None
        assert len(run.p2p.results) > 0
        assert len(run.p2p.recorder.messages) > 0
        assert check_world(run) == []

    def test_faulty_world_serves_without_unexpected_errors(self):
        run = run_world(
            World(
                seed=6,
                n=30,
                k=3,
                requests=3,
                policy="secure",
                drop_probability=0.15,
            )
        )
        assert all(r.error_kind != "unexpected" for r in run.records)
        assert check_world(run) == []
