"""The persistent bottleneck cluster tree vs the throwaway dendrogram math.

Every query the tree answers has an existing reference implementation —
``centralized_k_clustering``, the level-scan oracles, the exhaustive
isolation sweep — and each test here pins the tree to one of them, on
hand-checkable fixtures and on randomized graphs.  The churn tests drive
:meth:`ClusterTree.apply_patch` with real :class:`IncrementalWPG` patches
and compare node signatures against a from-scratch build.
"""

from __future__ import annotations

import random

import pytest

from repro.clustering.centralized import centralized_k_clustering
from repro.datasets import uniform_points
from repro.errors import GraphError
from repro.geometry.point import Point
from repro.graph.build import build_wpg_fast
from repro.graph.cluster_tree import ClusterTree
from repro.graph.incremental import IncrementalWPG
from repro.graph.wpg import WeightedProximityGraph
from repro.spatial.grid import GridIndex
from repro.verify.oracles import (
    oracle_isolation_violations,
    oracle_smallest_cluster,
)


def canonical(groups):
    """Order-free partition form (never sort sets: subset partial order)."""
    return sorted(tuple(sorted(group)) for group in groups)


def random_graph(rng: random.Random, n: int, density: float) -> WeightedProximityGraph:
    graph = WeightedProximityGraph()
    for vertex in range(n):
        graph.add_vertex(vertex)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                graph.add_edge(u, v, float(rng.randint(1, 6)))
    return graph


# -- hand-checkable fixture ----------------------------------------------------


class TestTwoBlobs:
    def test_partitions_and_lookup(self, two_blobs_graph):
        tree = ClusterTree(two_blobs_graph)
        assert tree.component_count == 1
        assert tree.vertex_count == 8
        # k=4 splits at the bridge, k=5 cannot.
        assert canonical(tree.strict_partition(4)) == [
            (0, 1, 2, 3),
            (4, 5, 6, 7),
        ]
        assert canonical(tree.strict_partition(5)) == [tuple(range(8))]
        cluster, t = tree.smallest_valid_cluster(0, 4)
        assert cluster == frozenset({0, 1, 2, 3})
        assert t == 2.0
        cluster, t = tree.smallest_valid_cluster(0, 5)
        assert cluster == frozenset(range(8))
        assert t == 9.0

    def test_node_at_tracks_t(self, two_blobs_graph):
        tree = ClusterTree(two_blobs_graph)
        assert tree.leaves(tree.node_at(0, 2.0)) == frozenset({0, 1, 2, 3})
        assert tree.leaves(tree.node_at(0, 8.9)) == frozenset({0, 1, 2, 3})
        assert tree.leaves(tree.node_at(0, 9.0)) == frozenset(range(8))
        assert tree.leaves(tree.node_at(0, 0.5)) == frozenset({0})

    def test_isolation_bits(self, two_blobs_graph):
        tree = ClusterTree(two_blobs_graph)
        # Each blob is the other's only sibling; both hold >= 4 users.
        blob = tree.smallest_valid_node(0, 4)
        assert tree.is_isolated(blob, 4)
        # At k=5 the sibling blob is undersized, so neither is isolated
        # (an outside vertex resolves through the root).
        assert not tree.is_isolated(blob, 5)
        assert tree.is_isolated(tree.root_of(0), 5)

    def test_marks_propagate_to_ancestors(self, two_blobs_graph):
        tree = ClusterTree(two_blobs_graph)
        blob_a = tree.smallest_valid_node(0, 4)
        blob_b = tree.smallest_valid_node(4, 4)
        tree.mark([0, 1])
        tree.mark([1])  # idempotent
        assert tree.marked == frozenset({0, 1})
        assert tree.marked_below(blob_a) == 2
        assert tree.marked_below(blob_b) == 0
        assert tree.marked_below(tree.root_of(0)) == 2

    def test_node_partition_rejects_undersized_node(self, two_blobs_graph):
        tree = ClusterTree(two_blobs_graph)
        leaf = tree.leaf_of(0)
        with pytest.raises(GraphError):
            tree.node_partition(leaf, 2)


# -- randomized differentials --------------------------------------------------


def test_partitions_match_centralized_on_random_graphs():
    for seed in range(40):
        rng = random.Random(seed)
        n = rng.randint(2, 36)
        graph = random_graph(rng, n, rng.uniform(0.04, 0.3))
        tree = ClusterTree(graph)
        for k in (1, 2, 3, 5):
            if k > n:
                continue
            for method in ("strict", "greedy"):
                direct = centralized_k_clustering(graph, k, method=method)
                assert canonical(
                    tree.strict_partition(k)
                    if method == "strict"
                    else tree.greedy_partition(k)
                ) == canonical(direct.all_groups()), (seed, k, method)


def test_tree_route_of_centralized_k_clustering():
    rng = random.Random(7)
    graph = random_graph(rng, 30, 0.12)
    tree = ClusterTree(graph)
    for method in ("strict", "greedy"):
        direct = centralized_k_clustering(graph, 3, method=method)
        routed = centralized_k_clustering(graph, 3, method=method, tree=tree)
        assert canonical(routed.clusters) == canonical(direct.clusters)
        assert canonical(routed.invalid) == canonical(direct.invalid)


def test_smallest_valid_cluster_matches_level_scan_oracle():
    for seed in range(30):
        rng = random.Random(100 + seed)
        n = rng.randint(2, 30)
        graph = random_graph(rng, n, rng.uniform(0.04, 0.25))
        tree = ClusterTree(graph)
        k = rng.randint(1, 5)
        for vertex in range(n):
            scan = oracle_smallest_cluster(graph, vertex, k)
            walk = tree.smallest_valid_cluster(vertex, k)
            if scan is None:
                assert walk is None, (seed, vertex)
            else:
                assert walk is not None
                assert set(walk[0]) == set(scan[0]), (seed, vertex)
                assert walk[1] == scan[1], (seed, vertex)


def test_isolation_bits_match_removal_oracle():
    for seed in range(12):
        rng = random.Random(500 + seed)
        n = rng.randint(4, 18)
        graph = random_graph(rng, n, rng.uniform(0.1, 0.35))
        tree = ClusterTree(graph)
        k = rng.randint(2, 4)
        for vertex in range(n):
            node = tree.smallest_valid_node(vertex, k)
            while node is not None:
                leaves = set(tree.leaves(node))
                violators = oracle_isolation_violations(graph, leaves, k)
                assert tree.is_isolated(node, k) == (not violators), (
                    seed,
                    sorted(leaves),
                    violators,
                )
                node = tree.parent(node)


# -- churn maintenance ---------------------------------------------------------


def _signatures(tree: ClusterTree):
    return sorted(tree.node_signatures())


def test_apply_patch_equals_fresh_build_under_churn():
    for seed in range(8):
        rng = random.Random(900 + seed)
        n = rng.randint(20, 60)
        dataset = uniform_points(n, seed=seed)
        delta, max_peers = 0.18, 5
        graph = build_wpg_fast(dataset, delta, max_peers)
        grid = GridIndex(list(dataset), cell_size=delta)
        runtime = IncrementalWPG(grid, delta, max_peers, graph=graph)
        tree = ClusterTree(graph)
        tree.mark(range(min(5, n)))
        for _batch in range(6):
            size = rng.randint(1, 4)
            moves = [
                (user, Point(rng.random(), rng.random()))
                for user in rng.sample(range(n), size)
            ]
            patch = runtime.apply_moves(moves)
            tree.apply_patch(patch)
            assert _signatures(tree) == _signatures(ClusterTree(graph)), (
                seed,
                _batch,
            )
        # Marks survive the rebuilds on every ancestor counter.
        assert tree.marked == frozenset(range(min(5, n)))
        for vertex in tree.marked:
            node = tree.leaf_of(vertex)
            while node is not None:
                assert tree.marked_below(node) >= 1
                node = tree.parent(node)


def test_apply_patch_empty_patch_is_a_noop():
    graph = WeightedProximityGraph()
    for v in range(4):
        graph.add_vertex(v)
    graph.add_edge(0, 1, 1.0)
    grid = GridIndex([Point(0.1, 0.1)] * 4, cell_size=0.2)
    runtime = IncrementalWPG(grid, 0.2, 3)
    tree = ClusterTree(graph)
    before = _signatures(tree)
    assert tree.apply_patch(runtime.apply_moves([])) == 0
    assert _signatures(tree) == before
