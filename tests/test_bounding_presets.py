"""Paper-parameter presets and the increment-policy classes themselves."""

from __future__ import annotations

import math

import pytest

from repro.bounding.distributions import UniformIncrement
from repro.bounding.costmodel import AreaRequestCost
from repro.bounding.policies import (
    ExponentialPolicy,
    LinearPolicy,
    SecurePolicy,
)
from repro.bounding.presets import (
    LINEAR_SUBDIVISIONS,
    PAPER_POLICY_NAMES,
    axis_extent,
    effective_area_cost,
    fine_step,
    initial_step,
    paper_policy,
)
from repro.config import SimulationConfig
from repro.errors import ConfigurationError


@pytest.fixture()
def config() -> SimulationConfig:
    return SimulationConfig(user_count=400, delta=0.1, max_peers=6, k=4)


class TestPresetArithmetic:
    def test_axis_extent_is_sqrt_of_expected_area(self, config):
        # N/|D| = 4/400 = 0.01 of the unit square; per-axis sqrt = 0.1.
        assert axis_extent(4, config) == pytest.approx(0.1)

    def test_initial_step_is_half_the_extent(self, config):
        assert initial_step(4, config) == pytest.approx(0.05)

    def test_fine_step_subdivides_the_initial(self, config):
        assert fine_step(4, config) == pytest.approx(0.05 / LINEAR_SUBDIVISIONS)

    def test_extent_grows_with_cluster_size(self, config):
        assert axis_extent(16, config) > axis_extent(4, config)

    def test_invalid_cluster_size_raises(self, config):
        with pytest.raises(ConfigurationError):
            axis_extent(0, config)

    def test_effective_area_cost_folds_density_in(self, config):
        cost = effective_area_cost(config)
        assert isinstance(cost, AreaRequestCost)
        # R(x) = Cr * |D| * x^2, so R(1) / R(0.5) = 4 regardless of Cr.
        assert cost.cost(1.0) == pytest.approx(4 * cost.cost(0.5))


class TestPaperPolicyFactory:
    def test_linear_uses_the_fine_step(self, config):
        policy = paper_policy("linear", 4, config)
        assert isinstance(policy, LinearPolicy)
        assert policy.step == pytest.approx(fine_step(4, config))

    def test_exponential_seeds_with_the_fine_step(self, config):
        policy = paper_policy("exponential", 4, config)
        assert isinstance(policy, ExponentialPolicy)
        assert policy.initial == pytest.approx(fine_step(4, config))

    @pytest.mark.parametrize(
        "name,expected", [("secure", "secure-approx"), ("secure-exact", "secure-exact")]
    )
    def test_secure_variants(self, config, name, expected):
        policy = paper_policy(name, 4, config)
        assert isinstance(policy, SecurePolicy)
        assert policy.name == expected
        assert policy.increment(3, 0.0) > 0.0

    def test_all_paper_names_construct(self, config):
        for name in PAPER_POLICY_NAMES:
            assert paper_policy(name, 4, config).increment(2, 0.0) > 0.0

    def test_unknown_name_raises(self, config):
        with pytest.raises(ConfigurationError):
            paper_policy("fibonacci", 4, config)


class TestPolicyClasses:
    def test_linear_is_constant(self):
        policy = LinearPolicy(0.25)
        assert policy.increment(1, 0.0) == 0.25
        assert policy.increment(50, 3.0) == 0.25
        assert policy.name == "linear"

    def test_linear_rejects_nonpositive_step(self):
        with pytest.raises(ConfigurationError):
            LinearPolicy(0.0)
        with pytest.raises(ConfigurationError):
            LinearPolicy(-1.0)

    def test_exponential_doubles_the_extent(self):
        policy = ExponentialPolicy(0.1)
        assert policy.increment(5, 0.0) == 0.1  # first iteration: seed
        assert policy.increment(5, 0.4) == 0.4  # then bound doubles
        assert policy.name == "exponential"

    def test_exponential_rejects_nonpositive_initial(self):
        with pytest.raises(ConfigurationError):
            ExponentialPolicy(0.0)

    def _secure(self, mode="approx") -> SecurePolicy:
        return SecurePolicy(
            UniformIncrement(0.1), AreaRequestCost(400.0), cb=1.0, mode=mode
        )

    def test_secure_validates_arguments(self):
        with pytest.raises(ConfigurationError):
            SecurePolicy(UniformIncrement(0.1), AreaRequestCost(400.0), cb=0.0)
        with pytest.raises(ConfigurationError):
            SecurePolicy(
                UniformIncrement(0.1), AreaRequestCost(400.0), cb=1.0, mode="magic"
            )

    def test_secure_rejects_zero_disagreeing(self):
        with pytest.raises(ConfigurationError):
            self._secure().increment(0, 0.0)

    def test_secure_increment_monotone_in_disagreeing(self):
        # More disagreeing users push the expected agreement point out, so
        # the optimal increment never shrinks as n grows (Equation 5).
        policy = self._secure()
        steps = [policy.increment(n, 0.0) for n in (1, 3, 10, 30)]
        assert all(s > 0.0 for s in steps)
        assert steps == sorted(steps)

    def test_exact_mode_stays_finite_and_positive(self):
        policy = self._secure(mode="exact")
        for disagreeing in (1, 3, 10):
            step = policy.increment(disagreeing, 0.0)
            assert 0.0 < step < math.inf
